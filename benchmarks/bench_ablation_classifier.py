"""Ablation A2: classifier choice (META vs byte detector vs oracle).

Section 3.2 of the paper discusses the trade-off between trusting the
author's META declaration and running a byte-distribution detector, and
§3's observation 3 notes mislabeled pages.  This ablation quantifies it:
the detector recognises undeclared/mislabeled target-language pages that
the charset/META classifiers miss, so a hard-focused crawl tunnels
further and covers more.
"""

from repro.experiments.ablations import classifier_sweep
from repro.experiments.report import render_table

from conftest import emit


def test_ablation_classifier_choice(benchmark, thai_bench, results_dir):
    rows = benchmark.pedantic(lambda: classifier_sweep(thai_bench), rounds=1, iterations=1)

    emit(
        results_dir,
        "ablation_classifier",
        render_table(rows, title="Ablation A2: hard-focused crawl under each classifier"),
    )

    by_mode = {row["classifier"]: row for row in rows}

    # META parsing reproduces the recorded declarations exactly.
    assert by_mode["meta"]["pages_crawled"] == by_mode["charset"]["pages_crawled"]

    # The byte detector sees through missing/mislabeled declarations and
    # therefore reaches more of the web.
    assert by_mode["detector"]["pages_crawled"] > by_mode["charset"]["pages_crawled"]
    assert (
        by_mode["detector"]["coverage_of_charset_set"]
        >= by_mode["charset"]["coverage_of_charset_set"]
    )

    # Ground truth is the upper bound on reach.
    assert by_mode["oracle"]["pages_crawled"] >= by_mode["detector"]["pages_crawled"] * 0.95

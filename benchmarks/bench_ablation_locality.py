"""Ablation A1: language-locality sweep.

The paper's method *assumes* language locality in the Web (§3) and
verifies it anecdotally on sampled pages.  This ablation makes the
assumption quantitative: sweeping the generator's locality knob on a
fixed page mix shows the focused-crawling advantage growing with
locality — and collapsing when links ignore language.
"""

from repro.experiments.ablations import locality_sweep
from repro.experiments.report import render_table
from repro.graphgen.profiles import thai_profile

from conftest import BENCH_SCALE, emit

LOCALITIES = (0.5, 0.7, 0.9)


def test_ablation_language_locality(benchmark, results_dir):
    profile = thai_profile().scaled(min(BENCH_SCALE, 0.15))
    rows = benchmark.pedantic(
        lambda: locality_sweep(profile, localities=LOCALITIES), rounds=1, iterations=1
    )

    emit(
        results_dir,
        "ablation_locality",
        render_table(
            [row.to_dict() for row in rows],
            title="Ablation A1: focused-crawling gain vs language locality (raw universe)",
        ),
    )

    gains = [row.early_harvest_hard - row.early_harvest_bfs for row in rows]
    # The gain at strong locality clearly exceeds the weak-locality gain.
    assert gains[-1] > gains[0]
    # Focused crawling never loses to breadth-first, even at low locality.
    assert all(gain > -0.02 for gain in gains)

"""Ablation A3: dataset scale sweep.

Our reproduction runs at ~1/100 of the paper's dataset sizes.  This
ablation justifies that: the qualitative shapes (focused > breadth-first
early; hard-focused coverage plateau; soft queue ≫ hard queue) hold at
every scale we can afford, so scaled-down conclusions transfer.
"""

from repro.experiments.ablations import scale_sweep
from repro.experiments.report import render_table
from repro.graphgen.profiles import thai_profile

from conftest import BENCH_SCALE, emit

SCALES = (0.08, 0.15, BENCH_SCALE)


def test_ablation_scale_stability(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: scale_sweep(thai_profile(), scales=SCALES), rounds=1, iterations=1
    )

    emit(
        results_dir,
        "ablation_scale",
        render_table(
            [row.to_dict() for row in rows],
            title="Ablation A3: shape stability across dataset scales (Thai)",
        ),
    )

    for row in rows:
        # Focused beats breadth-first early at every scale.
        assert row.early_harvest_hard > row.early_harvest_bfs
        # Hard-focused always plateaus below full coverage.
        assert 0.4 < row.coverage_hard < 0.95
        # The soft queue is always substantial.
        assert row.max_queue_soft > 0

"""Survival gates for the adversary layer and its engine defenses.

Two claims are pinned here, both numeric:

1. **Survival matrix** — on the golden-scale Thai web, every named
   adversarial scenario measurably degrades defenseless coverage for
   the simple strategies, and the standard defense preset recovers at
   least half the lost coverage under the traps / aliases / combined
   scenarios.  Coverage (explicit recall), not harvest rate, is the
   survival metric: alias fetches keep the canonical record, so harvest
   barely moves while recall collapses.
2. **Clean-path overhead** — threading a crawl through the inert seams
   (an empty :class:`~repro.adversary.AdversaryModel` wrapper plus a
   disabled :class:`~repro.adversary.DefenseConfig`) must stay within
   5% of the bare engine.  Correctness of the seams is pinned by the
   golden differential (``tests/golden/test_golden_adversary.py``:
   byte-identical traces); this pins the cost.

Writes ``benchmarks/results/BENCH_adversarial_survival.json``.
"""

from __future__ import annotations

import json
import time

from repro.adversary import AdversaryModel, DefenseConfig
from repro.core.strategies import (
    BacklinkCountStrategy,
    BreadthFirstStrategy,
    DistilledSoftStrategy,
    SimpleStrategy,
)
from repro.experiments.adversweep import adversarial_sweep
from repro.experiments.datasets import load_or_build_dataset
from repro.experiments.runner import run_strategies
from repro.graphgen.profiles import thai_profile

from conftest import BENCH_SCALE

#: The survival matrix runs at golden scale: the scenario rates are
#: tuned to dent a ~1.6k-page web within the golden page cap, and the
#: matrix (3 strategies × 7 scenarios × 2 seeds × 2 arms) stays cheap.
MATRIX_SCALE = 0.02
MATRIX_MAX_PAGES = 1100

#: Strategies held to the half-gap recovery bar, and the scenarios that
#: must both hurt (defenses off) and heal (defenses on).
GATED_STRATEGIES = ("breadth-first", "soft-focused")
GATED_SCENARIOS = ("traps", "aliases", "combined")
MIN_GAP = 0.01
MIN_RECOVERY_RATIO = 0.5

TRIALS = 3
MAX_OVERHEAD_RATIO = 1.05


def test_survival_matrix_and_overhead(results_dir):
    # Time the seams before the matrix floods the process with cache and
    # GC state — both timing arms must see the same interpreter history.
    overhead = _clean_path_overhead()

    dataset = load_or_build_dataset(thai_profile().scaled(MATRIX_SCALE))
    payload = adversarial_sweep(dataset, max_pages=MATRIX_MAX_PAGES)

    summary = {
        (row["strategy"], row["scenario"]): row for row in payload["summary"]
    }
    gate_rows = []
    for strategy in GATED_STRATEGIES:
        for scenario in GATED_SCENARIOS:
            row = summary[(strategy, scenario)]
            gate_rows.append(row)
            assert row["gap"] >= MIN_GAP, (
                f"{scenario} barely hurts {strategy} with defenses off "
                f"(coverage gap {row['gap']:.4f} < {MIN_GAP}) — the scenario "
                "rates no longer produce a measurable attack"
            )
            assert row["recovery_ratio"] >= MIN_RECOVERY_RATIO, (
                f"standard defenses recover only {row['recovery_ratio']:.2f} "
                f"of the {scenario} coverage gap for {strategy} "
                f"(need >= {MIN_RECOVERY_RATIO})"
            )

    lines = [
        "Adversarial survival (coverage, seed-averaged)",
        f"  dataset: {payload['dataset']}  max_pages: {MATRIX_MAX_PAGES}",
        f"  {'strategy':14s} {'scenario':10s} {'clean':>7s} {'off':>7s} {'on':>7s} {'ratio':>6s}",
    ]
    for row in payload["summary"]:
        ratio = row["recovery_ratio"]
        lines.append(
            f"  {row['strategy']:14s} {row['scenario']:10s}"
            f" {row['clean_coverage']:7.4f} {row['off_coverage']:7.4f}"
            f" {row['on_coverage']:7.4f} {ratio if ratio is not None else '—':>6}"
        )
    lines.append(
        f"  clean-path seam overhead: {overhead['overhead_ratio']:.3f}x"
        f" (gate {MAX_OVERHEAD_RATIO}x, scale {BENCH_SCALE})"
    )
    text = "\n".join(lines)

    data = {
        "matrix": payload,
        "gates": {
            "min_gap": MIN_GAP,
            "min_recovery_ratio": MIN_RECOVERY_RATIO,
            "gated_strategies": list(GATED_STRATEGIES),
            "gated_scenarios": list(GATED_SCENARIOS),
            "gated_rows": gate_rows,
            "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        },
        "overhead": overhead,
    }
    print()
    print(text)
    (results_dir / "adversarial_survival.txt").write_text(text)
    (results_dir / "BENCH_adversarial_survival.json").write_text(
        json.dumps(
            {"name": "adversarial_survival", "scale": BENCH_SCALE, "data": data},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    assert overhead["overhead_ratio"] < MAX_OVERHEAD_RATIO, (
        f"inert adversary/defense seams cost {overhead['overhead_ratio']:.3f}x "
        f"(gate {MAX_OVERHEAD_RATIO}x; bare best {overhead['bare_best_s']}s, "
        f"seamed best {overhead['seamed_best_s']}s)"
    )


def _sweep_strategies():
    return [
        BreadthFirstStrategy(),
        SimpleStrategy(mode="soft"),
        DistilledSoftStrategy(),
        BacklinkCountStrategy(),
    ]


def _time_sweep(dataset, trials: int = TRIALS, **kwargs) -> list[float]:
    timings = []
    for _ in range(trials):
        start = time.perf_counter()
        run_strategies(dataset, _sweep_strategies(), **kwargs)
        timings.append(round(time.perf_counter() - start, 3))
    return timings


def _clean_path_overhead() -> dict:
    dataset = load_or_build_dataset(thai_profile().scaled(BENCH_SCALE))
    # Warm-up pays dataset/web construction for both variants; discard.
    _time_sweep(dataset, trials=1)
    bare = _time_sweep(dataset)
    seamed = _time_sweep(
        dataset, adversary=AdversaryModel(), defenses=DefenseConfig()
    )
    return {
        "method": (
            f"best of {TRIALS} back-to-back trials of run_strategies() over "
            "[breadth-first, soft-focused, distilled-soft, backlink-count], "
            "warm dataset cache, same machine and session for both loops; "
            "seamed variant wraps the web in an empty-profile AdversaryModel "
            "and passes an all-default (disabled) DefenseConfig"
        ),
        "bare_trials_s": bare,
        "bare_best_s": min(bare),
        "seamed_trials_s": seamed,
        "seamed_best_s": min(seamed),
        "overhead_ratio": round(min(seamed) / min(bare), 4),
    }

"""Overhead gate for the unified crawl engine.

This PR collapsed the three crawl loops (plain, instrumented,
resilient) into one stage-pipeline engine whose observers attach as
hooks.  Correctness is pinned by the golden differential suite (all
seven fixtures replay byte-identically through the engine); this
benchmark pins the *cost* of the unification: the PR-2 strategy sweep
run through the hooked engine — a live hook observing every step plus
no-op hooks on the stack — must stay within 5% of the bare engine,
same machine, same session, best of three.

The bare engine is itself the PR-2 fast path (hook dispatch compiles to
``None`` when nobody listens), so this gate protects the PR-2 speedup
baseline end to end.

Writes ``benchmarks/results/BENCH_engine_unification.json``.
"""

from __future__ import annotations

import json
import time

from repro.core.engine import EngineHook, EngineStep
from repro.experiments.runner import run_strategies

from conftest import BENCH_SCALE

TRIALS = 3
MAX_OVERHEAD_RATIO = 1.05

# The PR-2 optimisation baseline this gate protects (see
# BENCH_speedup_strategies.json): hook dispatch must not claw back what
# that PR won.
REFERENCE = {"commit": "68a02c0", "optimised_best_s": 2.656}

SWEEP = ["breadth-first", "soft-focused", "distilled-soft", "backlink-count"]


class _CountingHook(EngineHook):
    """A live observer: one dispatched callback per crawled page."""

    def __init__(self) -> None:
        self.steps = 0

    def on_step(self, step: EngineStep) -> None:
        self.steps += 1


class _NoOpHook(EngineHook):
    """Overrides nothing — must compile out of the dispatch entirely."""


def _time_sweep(dataset, trials: int = TRIALS, **kwargs) -> list[float]:
    timings = []
    for _ in range(trials):
        start = time.perf_counter()
        run_strategies(dataset, SWEEP, **kwargs)
        timings.append(round(time.perf_counter() - start, 3))
    return timings


def test_hooked_engine_within_five_percent_of_fast_path(thai_bench, results_dir):
    # Warm-up: the first sweep pays dataset/web construction and cache
    # population for both variants alike; discard it.
    _time_sweep(thai_bench, trials=1)

    bare = _time_sweep(thai_bench)
    counting = _CountingHook()
    hooked = _time_sweep(thai_bench, hooks=(_NoOpHook(), counting, _NoOpHook()))
    assert counting.steps > 0, "the hook stack never fired — wiring is broken"

    ratio = round(min(hooked) / min(bare), 4)
    payload = {
        "name": "engine_unification",
        "benchmark": (
            "bench_engine_unification.py::"
            "test_hooked_engine_within_five_percent_of_fast_path (sweep body)"
        ),
        "scale": BENCH_SCALE,
        "dataset": thai_bench.name,
        "pages": len(thai_bench.crawl_log),
        "method": (
            f"best of {TRIALS} back-to-back trials of run_strategies() over "
            f"{SWEEP}, warm dataset cache, same machine and session for both "
            "variants; hooked variant attaches two no-op hooks plus a live "
            "per-step counting hook to every engine"
        ),
        "baseline_commit": REFERENCE["commit"],
        "baseline_optimised_best_s": REFERENCE["optimised_best_s"],
        "bare_trials_s": bare,
        "bare_best_s": min(bare),
        "hooked_trials_s": hooked,
        "hooked_best_s": min(hooked),
        "hooked_steps_observed": counting.steps,
        "overhead_ratio": ratio,
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "equivalence": (
            "unified engine replays all 7 golden fixtures byte-identically "
            "(tests/golden/), and a no-op hook stack reproduces the unhooked "
            "trace (tests/test_core_engine.py)"
        ),
    }
    (results_dir / "BENCH_engine_unification.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert ratio < MAX_OVERHEAD_RATIO, (
        f"hooked engine overhead {ratio:.3f}x exceeds {MAX_OVERHEAD_RATIO}x "
        f"(bare best {min(bare)}s, hooked best {min(hooked)}s)"
    )

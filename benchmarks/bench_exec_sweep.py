"""Wall-clock and determinism gate for the multiprocess sweep executor.

The executor's promise is twofold: fanning a sweep out to worker
processes (a) never changes a byte of the results and (b) buys
wall-clock on multi-core machines.  This benchmark measures a standard
strategy sweep serially and at ``workers=2`` / ``workers=4``, hashes
each variant's canonical results to pin (a), and records the speedups
for (b).

The speedup gate (>= 1.8x at ``workers=4``) is only *asserted* when the
machine actually has >= 4 CPUs — on fewer cores a process pool cannot
beat serial and pretending otherwise would gate CI on the shape of the
runner, not the code.  ``cpu_count`` is recorded in the payload either
way, so the JSON artifact is honest about what was measured where.

Writes ``benchmarks/results/BENCH_exec_sweep.json``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time

from repro.experiments.runner import run_strategies

from conftest import BENCH_SCALE

TRIALS = 3
MIN_SPEEDUP_W4 = 1.8

SWEEP = [
    "breadth-first",
    "hard-focused",
    "soft-focused",
    ("limited-distance", {"n": 2}),
]


def _canonical_hash(results: dict) -> str:
    canonical = json.dumps(
        {
            name: {
                "series": result.series.to_dict(),
                "summary": dataclasses.asdict(result.summary),
                "resilience": result.resilience,
            }
            for name, result in results.items()
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def _time_sweep(dataset, workers: int) -> tuple[list[float], str]:
    timings = []
    digest = None
    for _ in range(TRIALS):
        start = time.perf_counter()
        results = run_strategies(dataset, SWEEP, workers=workers)
        timings.append(round(time.perf_counter() - start, 3))
        digest = _canonical_hash(results)
    assert digest is not None
    return timings, digest


def test_worker_sweep_is_identical_and_scales(thai_bench, results_dir):
    # Warm-up: pay dataset/web construction and the disk-cache write the
    # workers will read, outside the timed region.
    run_strategies(thai_bench, SWEEP[:1])
    run_strategies(thai_bench, SWEEP[:1], workers=2)

    cpu_count = os.cpu_count() or 1
    serial_trials, serial_hash = _time_sweep(thai_bench, workers=0)
    w2_trials, w2_hash = _time_sweep(thai_bench, workers=2)
    w4_trials, w4_hash = _time_sweep(thai_bench, workers=4)

    speedup_w2 = round(min(serial_trials) / min(w2_trials), 3)
    speedup_w4 = round(min(serial_trials) / min(w4_trials), 3)
    gate_enforced = cpu_count >= 4

    payload = {
        "name": "exec_sweep",
        "benchmark": "bench_exec_sweep.py::test_worker_sweep_is_identical_and_scales",
        "scale": BENCH_SCALE,
        "dataset": thai_bench.name,
        "pages": len(thai_bench.crawl_log),
        "cpu_count": cpu_count,
        "method": (
            f"best of {TRIALS} trials of run_strategies() over {len(SWEEP)} "
            "strategies, warm dataset cache; workers>0 fans runs out over a "
            "ProcessPoolExecutor (repro.exec.SweepExecutor) and merges in "
            "submission order"
        ),
        "serial_trials_s": serial_trials,
        "serial_best_s": min(serial_trials),
        "workers2_trials_s": w2_trials,
        "workers2_best_s": min(w2_trials),
        "workers4_trials_s": w4_trials,
        "workers4_best_s": min(w4_trials),
        "speedup_workers2": speedup_w2,
        "speedup_workers4": speedup_w4,
        "min_speedup_workers4": MIN_SPEEDUP_W4,
        "speedup_gate_enforced": gate_enforced,
        "determinism_sha256": serial_hash,
        "determinism": (
            "sha256 over the sorted-JSON results (series + summary + "
            "resilience; wall_seconds excluded) of every variant"
        ),
    }
    (results_dir / "BENCH_exec_sweep.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert serial_hash == w2_hash == w4_hash, (
        "worker sweep diverged from serial: "
        f"serial={serial_hash} w2={w2_hash} w4={w4_hash}"
    )
    if gate_enforced:
        assert speedup_w4 >= MIN_SPEEDUP_W4, (
            f"workers=4 speedup {speedup_w4}x under the {MIN_SPEEDUP_W4}x "
            f"floor on a {cpu_count}-CPU machine "
            f"(serial best {min(serial_trials)}s, w4 best {min(w4_trials)}s)"
        )

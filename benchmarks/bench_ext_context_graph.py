"""Extension E5: context focused crawler vs limited distance (paper §2.2).

The paper chose limited distance over the existing tunneling solution —
the context focused crawler — because the CFC "requires reverse links of
the seed sets to exist at a known search engine".  This benchmark stages
that §2.2 argument as an experiment: a simplified CFC (context graph
built from our LinkDB playing the search engine; host-level layer
model) against the prioritized limited-distance strategy.

Expected shape: the CFC focuses comparably to the referrer-based
strategies — tunneling by layered ordering works — but only because it
was handed the reverse-link oracle; limited distance matches its
coverage with no offline index at all, which is the paper's point.
"""

from repro.core.strategies import (
    BreadthFirstStrategy,
    ContextGraphStrategy,
    LimitedDistanceStrategy,
    SimpleStrategy,
)
from repro.experiments.report import render_table
from repro.experiments.runner import run_strategies
from repro.webspace.linkdb import LinkDB

from conftest import emit


def test_ext_context_graph_vs_limited_distance(benchmark, thai_bench, results_dir):
    def compare():
        # The CFC's offline phase: the user supplies example URLs of the
        # target class (Diligenti et al. seed with *many* examples, not
        # just crawl seeds) and a search engine supplies their reverse
        # links.  We hand it a deterministic 500-page sample of the
        # relevant set plus our LinkDB as the reverse-link oracle.
        relevant = sorted(thai_bench.relevant_urls())
        step = max(1, len(relevant) // 500)
        examples = relevant[::step][:500]
        linkdb = LinkDB(thai_bench.crawl_log)
        cfc = ContextGraphStrategy(linkdb, examples, layers=3)
        strategies = [
            BreadthFirstStrategy(),
            cfc,
            LimitedDistanceStrategy(n=3, prioritized=True),
            SimpleStrategy(mode="soft"),
        ]
        return run_strategies(thai_bench, strategies), cfc

    results, cfc = benchmark.pedantic(compare, rounds=1, iterations=1)

    early = len(thai_bench.crawl_log) // 5
    rows = []
    for name, result in results.items():
        rows.append(
            {
                "strategy": name,
                "needs_reverse_index": "yes" if name.startswith("context-graph") else "no",
                "early_harvest": round(result.series.harvest_at(early), 3),
                "final_coverage": round(result.final_coverage, 3),
                "max_queue": result.summary.max_queue_size,
            }
        )
    text = render_table(rows, title="Extension E5: context focused crawler vs limited distance")
    text += f"\ncontext graph layer sizes: {cfc.context_sizes}\n"
    emit(results_dir, "ext_context_graph", text)

    by_name = {row["strategy"]: row for row in rows}
    cfc_row = by_name[cfc.name]
    limited_row = by_name["prioritized-limited-distance(N=3)"]
    bfs_row = by_name["breadth-first"]

    # The CFC tunnels: it beats breadth-first on early harvest.
    assert cfc_row["early_harvest"] > bfs_row["early_harvest"]
    # ...and, like soft-focused, it never discards, so coverage is full.
    assert cfc_row["final_coverage"] > 0.999
    # Limited distance reaches comparable coverage with NO reverse-link
    # oracle — the §2.2 argument for the paper's strategy.
    assert limited_row["final_coverage"] > cfc_row["final_coverage"] - 0.05

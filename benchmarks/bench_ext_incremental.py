"""Extension E7: incremental recrawl of an evolving archive.

The research group's own next step after this paper was an incremental
crawler for large-scale web archives (Tamura & Kitsuregawa, DEWS 2007).
This benchmark stages the core question on synthetic churn: when the
web space evolves (pages die, new pages appear, links change), how does
a **cold recrawl** (from the original seeds) compare to an
**incremental recrawl** that seeds from the previous archive's known
relevant pages?

Expected shape: the incremental crawl reaches high coverage of the new
snapshot in far fewer fetches — the archive *is* a giant seed list —
while the dead fraction of the old archive bounds what any strategy can
retain.
"""

from repro.charset.languages import Language
from repro.core.strategies import SimpleStrategy
from repro.experiments.datasets import Dataset
from repro.experiments.report import render_table
from repro.experiments.runner import run_strategy
from repro.graphgen.evolution import ChurnSpec, evolve_log
from repro.webspace.stats import relevant_url_set

from conftest import emit

CHURN = ChurnSpec(death_rate=0.08, birth_rate=0.10, relink_rate=0.10)
TARGET_COVERAGE = 0.95


def _pages_to_coverage(result, target: float) -> int:
    for pages, coverage in zip(result.series.pages, result.series.coverage):
        if coverage >= target:
            return pages
    return result.pages_crawled


def test_ext_incremental_recrawl(benchmark, thai_bench, results_dir):
    def experiment():
        old_relevant = thai_bench.relevant_urls()
        new_log = evolve_log(thai_bench.crawl_log, CHURN, seed=99)
        new_relevant = relevant_url_set(new_log, Language.THAI)

        # Archive staleness: how much of the old archive died or changed.
        still_alive = old_relevant & new_relevant

        def dataset_with_seeds(seeds):
            return Dataset(
                name="thai-evolved",
                profile=thai_bench.profile,
                crawl_log=new_log,
                seed_urls=tuple(seeds),
                capture_kind=thai_bench.capture_kind,
                capture_n=thai_bench.capture_n,
            )

        cold_dataset = dataset_with_seeds(thai_bench.seed_urls)
        cold = run_strategy(cold_dataset, SimpleStrategy(mode="soft"))

        # The incremental crawler seeds from every relevant page the
        # archive already holds (that still resolves).
        incremental_dataset = dataset_with_seeds(sorted(still_alive))
        incremental = run_strategy(incremental_dataset, SimpleStrategy(mode="soft"))

        return {
            "old_relevant": len(old_relevant),
            "new_relevant": len(new_relevant),
            "still_alive": len(still_alive),
            "cold": cold,
            "incremental": incremental,
        }

    data = benchmark.pedantic(experiment, rounds=1, iterations=1)
    cold, incremental = data["cold"], data["incremental"]

    rows = [
        {
            "recrawl": "cold (original seeds)",
            "final_coverage": round(cold.final_coverage, 3),
            f"pages_to_{int(TARGET_COVERAGE * 100)}%": _pages_to_coverage(cold, TARGET_COVERAGE),
            "pages_total": cold.pages_crawled,
        },
        {
            "recrawl": "incremental (archive-seeded)",
            "final_coverage": round(incremental.final_coverage, 3),
            f"pages_to_{int(TARGET_COVERAGE * 100)}%": _pages_to_coverage(
                incremental, TARGET_COVERAGE
            ),
            "pages_total": incremental.pages_crawled,
        },
    ]
    staleness = 1 - data["still_alive"] / data["old_relevant"]
    text = render_table(rows, title="Extension E7: recrawling an evolved snapshot")
    text += (
        f"\nchurn: {CHURN.death_rate:.0%} deaths, {CHURN.birth_rate:.0%} births, "
        f"{CHURN.relink_rate:.0%} relinks -> archive staleness {staleness:.1%} "
        f"({data['still_alive']} of {data['old_relevant']} archived pages still relevant)\n"
    )
    emit(results_dir, "ext_incremental", text)

    # Both reach essentially full coverage of the new snapshot...
    assert cold.final_coverage > 0.95
    assert incremental.final_coverage > 0.99
    # ...but the archive-seeded crawl gets to 95% dramatically sooner.
    cold_cost = _pages_to_coverage(cold, TARGET_COVERAGE)
    incremental_cost = _pages_to_coverage(incremental, TARGET_COVERAGE)
    assert incremental_cost < 0.5 * cold_cost
    # Churn really happened.
    assert 0.02 < staleness < 0.3

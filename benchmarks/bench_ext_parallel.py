"""Extension E6: partitioned (parallel) crawling of a national web.

A national archive crawl eventually outgrows one machine.  This
benchmark runs the standard parallel-crawler design space (host-hash
partitioning; firewall vs exchange coordination) over the Thai dataset
and measures the classic trade-off:

- **firewall** needs zero coordination but loses every page whose
  inlinks all cross partitions — coverage decays as partitions grow;
- **exchange** keeps full coverage, paying one message per
  cross-partition link delivery — communication grows with partitions.
"""

from repro.api import run_crawl
from repro.core.parallel import ParallelConfig, PartitionMode
from repro.core.strategies import BreadthFirstStrategy
from repro.experiments.report import render_table

from conftest import emit

PARTITION_SWEEP = (1, 2, 4, 8)


def test_ext_parallel_crawling(benchmark, thai_bench, results_dir):
    def sweep():
        rows = []
        for mode in (PartitionMode.FIREWALL, PartitionMode.EXCHANGE):
            for partitions in PARTITION_SWEEP:
                result = run_crawl(
                    dataset=thai_bench,
                    strategy=BreadthFirstStrategy,
                    config=ParallelConfig(partitions=partitions, mode=mode),
                )
                rows.append(
                    {
                        "mode": mode.value,
                        "partitions": partitions,
                        "coverage": round(result.coverage, 3),
                        "messages": result.messages_exchanged,
                        "dropped_links": result.dropped_foreign_links,
                        "balance": round(result.balance, 2),
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        results_dir,
        "ext_parallel",
        render_table(rows, title="Extension E6: partitioned crawling (firewall vs exchange)"),
        data=rows,
    )

    firewall = [row for row in rows if row["mode"] == "firewall"]
    exchange = [row for row in rows if row["mode"] == "exchange"]

    # Firewall: coverage non-increasing in partitions, real loss by P=8.
    coverages = [row["coverage"] for row in firewall]
    assert all(a >= b - 1e-9 for a, b in zip(coverages, coverages[1:]))
    assert coverages[0] == 1.0 and coverages[-1] < 0.9
    # Exchange: full coverage at every partition count...
    assert all(row["coverage"] > 0.999 for row in exchange)
    # ...with communication growing in partitions.
    messages = [row["messages"] for row in exchange]
    assert messages[0] == 0  # single crawler exchanges nothing
    assert all(a <= b for a, b in zip(messages, messages[1:]))

"""Extension E3: per-server queues (paper §4's other omitted detail).

"The first version of the crawling simulator ... has been implemented
with the omission of details such as elapsed time and per-server queue
typically found in a real-world web crawler."  This benchmark adds the
per-server queue and measures what the polite rotation *costs*: request
burstiness against individual sites (mean consecutive same-site run)
collapses to ~1 while coverage is unchanged and the harvest rate moves
only modestly.
"""

from repro.charset.languages import Language
from repro.core.classifier import Classifier
from repro.core.politeness import PoliteOrderingStrategy, mean_same_site_run
from repro.core.simulator import SimulationConfig, Simulator
from repro.core.strategies import BreadthFirstStrategy, SimpleStrategy
from repro.experiments.report import render_table

from conftest import emit


def _crawl(dataset, strategy, max_pages=None):
    urls = []
    result = Simulator(
        web=dataset.web(),
        strategy=strategy,
        classifier=Classifier(Language.THAI),
        seed_urls=list(dataset.seed_urls),
        relevant_urls=dataset.relevant_urls(),
        config=SimulationConfig(sample_interval=1000, max_pages=max_pages),
        on_fetch=lambda event: urls.append(event.url),
    ).run()
    return result, urls


def test_ext_per_server_queue(benchmark, thai_bench, results_dir):
    def compare():
        rows = []
        for factory in (BreadthFirstStrategy, lambda: SimpleStrategy(mode="hard")):
            plain_result, plain_urls = _crawl(thai_bench, factory())
            polite_result, polite_urls = _crawl(
                thai_bench, PoliteOrderingStrategy(factory())
            )
            rows.append(
                {
                    "strategy": factory().name,
                    "mean_burst_plain": round(mean_same_site_run(plain_urls), 2),
                    "mean_burst_polite": round(mean_same_site_run(polite_urls), 2),
                    "coverage_plain": round(plain_result.final_coverage, 3),
                    "coverage_polite": round(polite_result.final_coverage, 3),
                    "harvest_plain": round(plain_result.final_harvest_rate, 3),
                    "harvest_polite": round(polite_result.final_harvest_rate, 3),
                }
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)

    emit(
        results_dir,
        "ext_politeness",
        render_table(rows, title="Extension E3: per-server queue (polite rotation)"),
    )

    for row in rows:
        # Polite rotation interleaves sites: mean same-site run ≈ 1.
        assert row["mean_burst_polite"] < row["mean_burst_plain"]
        assert row["mean_burst_polite"] < 1.5
        # Coverage is order-insensitive for these strategies' kept sets
        # (breadth-first exactly; hard-focused may shift slightly since
        # its discard rule is path-dependent).
        assert abs(row["coverage_polite"] - row["coverage_plain"]) < 0.1

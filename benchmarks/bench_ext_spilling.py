"""Extension E4: disk-spilling URL queue.

The soft-focused strategy's fatal flaw is queue memory ("we would end up
with the exhaustion of physical space for the URL queue", §5.2.1); the
paper's answer is to *discard* URLs (limited distance).  This benchmark
evaluates the engineering alternative a production crawler uses —
spilling the cold tail of the queue to disk — and compares both cures:

- spilling keeps soft-focused's exact coverage at a tiny resident set,
  paying in disk traffic and batch-FIFO ordering of cold URLs;
- limited distance keeps everything in memory but gives up tail coverage.
"""

from repro.core.spilling import SpillingStrategy
from repro.core.strategies import LimitedDistanceStrategy, SimpleStrategy
from repro.experiments.report import render_table
from repro.experiments.runner import run_strategy

from conftest import emit

MEMORY_LIMIT = 500


def test_ext_spilling_frontier(benchmark, thai_bench, results_dir):
    def compare():
        plain = run_strategy(thai_bench, SimpleStrategy(mode="soft"))
        spiller = SpillingStrategy(SimpleStrategy(mode="soft"), memory_limit=MEMORY_LIMIT)
        spilled = run_strategy(thai_bench, spiller)
        limited = run_strategy(thai_bench, LimitedDistanceStrategy(n=1, prioritized=True))
        return plain, spiller, spilled, limited

    plain, spiller, spilled, limited = benchmark.pedantic(compare, rounds=1, iterations=1)
    stats = spiller.last_stats
    assert stats is not None

    rows = [
        {
            "approach": "soft-focused (all in memory)",
            "resident_peak": plain.summary.max_queue_size,
            "spilled_urls": 0,
            "coverage": round(plain.final_coverage, 3),
        },
        {
            "approach": f"soft-focused + spilling (mem={MEMORY_LIMIT})",
            "resident_peak": stats.peak_resident,
            "spilled_urls": stats.spilled,
            "coverage": round(spilled.final_coverage, 3),
        },
        {
            "approach": "prioritized limited distance (N=1)",
            "resident_peak": limited.summary.max_queue_size,
            "spilled_urls": 0,
            "coverage": round(limited.final_coverage, 3),
        },
    ]
    emit(
        results_dir,
        "ext_spilling",
        render_table(rows, title="Extension E4: two cures for URL-queue memory exhaustion"),
    )

    # Spilling: same coverage as plain soft at a fraction of the memory.
    assert spilled.final_coverage == plain.final_coverage
    assert stats.peak_resident < plain.summary.max_queue_size / 10
    assert stats.spilled > 0
    # Limited distance trades coverage for memory instead.
    assert limited.final_coverage < plain.final_coverage

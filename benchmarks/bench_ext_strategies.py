"""Extension E2: a wider range of crawling strategies (paper §6).

"For the future works, we will conduct more simulations ... with a wider
range of crawling strategies."  This benchmark runs that comparison on
the Thai dataset:

- **distilled-soft** — soft-focused completed with the focused-crawling
  *distiller* the paper's first version omitted (§2.1): intermittent
  relevance-weighted HITS raises queued priorities of hub neighbors;
- **backlink-count** — the importance-driven ordering of the paper's
  reference [3] (Cho et al.), as the strongest *language-blind* baseline.

Expected shape: focused strategies (soft, distilled) dominate early
harvest; backlink-count — despite being the classic "good" ordering for
general crawling — is *worse than breadth-first* on a language-specific
task, because global popularity concentrates in the non-target web.
That contrast is the sharpest argument for language-specific focusing.
"""

from repro.core.strategies import (
    BacklinkCountStrategy,
    BreadthFirstStrategy,
    DistilledSoftStrategy,
    SimpleStrategy,
)
from repro.experiments.report import render_table
from repro.experiments.runner import run_strategies

from conftest import emit


def test_ext_wider_strategy_range(benchmark, thai_bench, results_dir):
    def compare():
        return run_strategies(
            thai_bench,
            [
                BreadthFirstStrategy(),
                SimpleStrategy(mode="soft"),
                DistilledSoftStrategy(),
                BacklinkCountStrategy(),
            ],
        )

    results = benchmark.pedantic(compare, rounds=1, iterations=1)

    early = len(thai_bench.crawl_log) // 5
    rows = []
    for name, result in results.items():
        rows.append(
            {
                "strategy": name,
                "early_harvest": round(result.series.harvest_at(early), 3),
                "final_coverage": round(result.final_coverage, 3),
                "max_queue": result.summary.max_queue_size,
            }
        )
    emit(
        results_dir,
        "ext_strategies",
        render_table(rows, title="Extension E2: wider strategy range (Thai dataset)"),
        data=rows,
    )

    early_of = {row["strategy"]: row["early_harvest"] for row in rows}
    coverage_of = {row["strategy"]: row["final_coverage"] for row in rows}

    # Focused strategies dominate early harvest.
    assert early_of["soft-focused"] > 1.5 * early_of["breadth-first"]
    assert early_of["distilled-soft"] > 1.5 * early_of["breadth-first"]
    # The distiller must not hurt the focused crawl.
    assert early_of["distilled-soft"] >= early_of["soft-focused"] - 0.03
    # Language-blind importance ordering loses even to breadth-first.
    assert early_of["backlink-count"] < early_of["breadth-first"]
    # Everyone eventually covers the whole reachable set.
    assert all(value > 0.999 for value in coverage_of.values())

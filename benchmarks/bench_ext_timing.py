"""Extension E1: the timing model (paper §6 future work).

"We also would like to enhance our crawling simulator by incorporating
transfer delays and access intervals in the simulation."  This benchmark
runs that enhancement: the same crawl with and without per-server
politeness, reporting simulated wall-clock and asserting that access
intervals — not transfer time — dominate crawl duration, for every
strategy.  (Both breadth-first and focused crawls slow down by well over
an order of magnitude at a 1-second per-site interval; which one suffers
more depends on how bursty its per-host request pattern is, so no
direction is asserted between them.)
"""

from repro.core.strategies import BreadthFirstStrategy, SimpleStrategy
from repro.core.timing import TimingModel
from repro.experiments.report import render_table
from repro.experiments.runner import run_strategy

from conftest import emit

MAX_PAGES = 6000


def _timed_run(dataset, strategy, politeness: float):
    timing = TimingModel(politeness_interval_s=politeness, connections=32)
    result = run_strategy(dataset, strategy, timing=timing, max_pages=MAX_PAGES)
    return result.summary.simulated_seconds


def test_ext_timing_model(benchmark, thai_bench, results_dir):
    def sweep():
        rows = []
        for strategy_factory in (BreadthFirstStrategy, lambda: SimpleStrategy(mode="hard")):
            strategy = strategy_factory()
            fast = _timed_run(thai_bench, strategy, politeness=0.0)
            polite = _timed_run(thai_bench, strategy_factory(), politeness=1.0)
            rows.append(
                {
                    "strategy": strategy.name,
                    "sim_seconds_no_politeness": round(fast, 1),
                    "sim_seconds_polite_1s": round(polite, 1),
                    "slowdown": round(polite / fast, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit(
        results_dir,
        "ext_timing",
        render_table(rows, title=f"Extension E1: simulated crawl time, first {MAX_PAGES} pages"),
    )

    for row in rows:
        # Politeness can only slow a crawl down — and at a 1s per-site
        # interval it dominates transfer time by a wide margin.
        assert row["sim_seconds_polite_1s"] >= row["sim_seconds_no_politeness"]
        assert row["slowdown"] > 5.0

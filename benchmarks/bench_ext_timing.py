"""Extension E1: the timing model (paper §6 future work).

"We also would like to enhance our crawling simulator by incorporating
transfer delays and access intervals in the simulation."  This benchmark
runs that enhancement: the same crawl with and without per-server
politeness, reporting simulated wall-clock and asserting that access
intervals — not transfer time — dominate crawl duration, for every
strategy.  (Both breadth-first and focused crawls slow down by well over
an order of magnitude at a 1-second per-site interval; which one suffers
more depends on how bursty its per-host request pattern is, so no
direction is asserted between them.)

The politeness variants go through ``run_strategies(timing_spec=...)``
so each point of the sweep builds a fresh clock, and the whole sweep
fans out over :class:`~repro.exec.SweepExecutor` workers — with a
sha256 gate pinning the worker results to the serial ones.
"""

from repro.exec import TimingSpec
from repro.experiments.report import render_table
from repro.experiments.runner import run_strategies

from conftest import canonical_hash, emit

MAX_PAGES = 6000
STRATEGIES = ["breadth-first", "hard-focused"]


def _sweep(dataset, politeness: float, workers: int = 0):
    return run_strategies(
        dataset,
        STRATEGIES,
        timing_spec=TimingSpec(politeness_interval_s=politeness, connections=32),
        max_pages=MAX_PAGES,
        workers=workers,
    )


def test_ext_timing_model(benchmark, thai_bench, results_dir):
    def sweep():
        return _sweep(thai_bench, politeness=0.0), _sweep(thai_bench, politeness=1.0)

    fast_results, polite_results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Timed sweeps fanned out to worker processes must not move a byte:
    # the TimingSpec recipe rebuilds a fresh clock per run on both paths.
    fast_digest = canonical_hash(fast_results)
    polite_digest = canonical_hash(polite_results)
    assert canonical_hash(_sweep(thai_bench, politeness=0.0, workers=2)) == fast_digest
    assert canonical_hash(_sweep(thai_bench, politeness=1.0, workers=2)) == polite_digest

    rows = []
    for name in fast_results:
        fast = fast_results[name].summary.simulated_seconds
        polite = polite_results[name].summary.simulated_seconds
        rows.append(
            {
                "strategy": name,
                "sim_seconds_no_politeness": round(fast, 1),
                "sim_seconds_polite_1s": round(polite, 1),
                "slowdown": round(polite / fast, 2),
            }
        )

    text = render_table(
        rows, title=f"Extension E1: simulated crawl time, first {MAX_PAGES} pages"
    )
    text += f"\nsweep sha256 (serial == workers=2): {fast_digest} / {polite_digest}"
    emit(results_dir, "ext_timing", text)

    for row in rows:
        # Politeness can only slow a crawl down — and at a 1s per-site
        # interval it dominates transfer time by a wide margin.
        assert row["sim_seconds_polite_1s"] >= row["sim_seconds_no_politeness"]
        assert row["slowdown"] > 5.0

"""Overhead gate for the resilience layer.

The resilient crawl loop (retry, circuit breakers, requeue accounting)
exists for crawls that *meet faults*; a healthy crawl must not pay for
it.  Correctness of that claim is pinned by the golden differential
(`tests/golden/test_golden_resilience.py`: byte-identical traces); this
benchmark pins the *cost*: the PR-2 strategy sweep with the full
resilience configuration attached — breakers armed, zero faults
injected — must stay within 5% of the clean engine, same machine, same
session, best of three.

Writes ``benchmarks/results/BENCH_fault_overhead.json`` echoing the
PR-2 speedup baseline it protects.
"""

from __future__ import annotations

import json
import time

from repro.core.strategies import (
    BacklinkCountStrategy,
    BreadthFirstStrategy,
    DistilledSoftStrategy,
    SimpleStrategy,
)
from repro.experiments.runner import run_strategies
from repro.faults import ResilienceConfig

from conftest import BENCH_SCALE

TRIALS = 3
MAX_OVERHEAD_RATIO = 1.05

# The PR-2 optimisation baseline this gate protects (see
# BENCH_speedup_strategies.json): the resilient loop must not claw back
# what that PR won.
REFERENCE = {"commit": "68a02c0", "optimised_best_s": 2.656}


def _sweep_strategies():
    return [
        BreadthFirstStrategy(),
        SimpleStrategy(mode="soft"),
        DistilledSoftStrategy(),
        BacklinkCountStrategy(),
    ]


def _time_sweep(dataset, trials: int = TRIALS, **kwargs) -> list[float]:
    timings = []
    for _ in range(trials):
        start = time.perf_counter()
        run_strategies(dataset, _sweep_strategies(), **kwargs)
        timings.append(round(time.perf_counter() - start, 3))
    return timings


def test_fault_overhead_under_five_percent(thai_bench, results_dir):
    # Warm-up: first sweep pays dataset/web construction and cache
    # population for both variants alike; discard it.
    _time_sweep(thai_bench, trials=1)

    clean = _time_sweep(thai_bench)
    resilient = _time_sweep(thai_bench, resilience=ResilienceConfig())

    ratio = round(min(resilient) / min(clean), 4)
    payload = {
        "name": "fault_overhead",
        "benchmark": "bench_fault_overhead.py::test_fault_overhead_under_five_percent (sweep body)",
        "scale": BENCH_SCALE,
        "dataset": thai_bench.name,
        "pages": len(thai_bench.crawl_log),
        "method": (
            f"best of {TRIALS} back-to-back trials of run_strategies() over "
            "[breadth-first, soft-focused, distilled-soft, backlink-count], "
            "warm dataset cache, same machine and session for both loops; "
            "resilient variant runs ResilienceConfig() (retry + breakers armed) "
            "with zero faults configured"
        ),
        "baseline_commit": REFERENCE["commit"],
        "baseline_optimised_best_s": REFERENCE["optimised_best_s"],
        "clean_trials_s": clean,
        "clean_best_s": min(clean),
        "resilient_trials_s": resilient,
        "resilient_best_s": min(resilient),
        "overhead_ratio": ratio,
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "equivalence": (
            "resilient no-fault replay is byte-identical to all 7 golden "
            "fixtures (tests/golden/test_golden_resilience.py)"
        ),
    }
    (results_dir / "BENCH_fault_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert ratio < MAX_OVERHEAD_RATIO, (
        f"resilient loop overhead {ratio:.3f}x exceeds {MAX_OVERHEAD_RATIO}x "
        f"(clean best {min(clean)}s, resilient best {min(resilient)}s)"
    )

"""Figure 3: the simple strategy on the Thai dataset.

Shape criteria (paper §5.2.1):

- (a) harvest rate: hard- and soft-focused clearly beat breadth-first
  over the early crawl (paper: ~60% during the first 2M of 14M pages);
- (b) coverage: soft-focused reaches 100%; hard-focused stops early and
  plateaus well below (paper: ~70%).
"""

from repro.experiments.figures import figure3
from repro.experiments.report import render_ascii_chart, render_figure

from conftest import emit


def test_fig3_simple_strategy_thai(benchmark, thai_bench, results_dir):
    figure = benchmark.pedantic(lambda: figure3(thai_bench), rounds=1, iterations=1)

    text = render_figure(figure)
    for metric in figure.panels:
        text += "\n" + render_ascii_chart(figure, metric)
    emit(results_dir, "fig3", text)

    early = len(thai_bench.crawl_log) // 7  # ≈ the paper's "first 2M of 14M"
    bfs = figure.results["breadth-first"]
    hard = figure.results["hard-focused"]
    soft = figure.results["soft-focused"]

    # (a) focused strategies beat breadth-first early, by a wide margin.
    assert hard.series.harvest_at(early) > 1.3 * bfs.series.harvest_at(early)
    assert soft.series.harvest_at(early) > 1.3 * bfs.series.harvest_at(early)
    # Hard and soft track each other early (paper: both ≈60%).
    assert abs(hard.series.harvest_at(early) - soft.series.harvest_at(early)) < 0.1

    # (b) coverage endpoints.
    assert soft.final_coverage > 0.999  # "reach 100% coverage"
    assert 0.5 < hard.final_coverage < 0.9  # "obtains only about 70%"
    # Hard-focused stops crawling much earlier than soft.
    assert hard.pages_crawled < 0.8 * soft.pages_crawled

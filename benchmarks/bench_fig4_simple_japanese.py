"""Figure 4: the simple strategy on the Japanese dataset.

Shape criteria (paper §5.2.1): results are *consistent* with Figure 3
but "harvest rates of all strategies are too high (even the
breadth-first strategy yields >70% harvest rate)" because the dataset is
already highly language specific — which is why the paper moves to the
Thai dataset for the remaining experiments.
"""

from repro.experiments.figures import figure4
from repro.experiments.report import render_ascii_chart, render_figure

from conftest import emit


def test_fig4_simple_strategy_japanese(benchmark, japanese_bench, results_dir):
    figure = benchmark.pedantic(lambda: figure4(japanese_bench), rounds=1, iterations=1)

    text = render_figure(figure)
    for metric in figure.panels:
        text += "\n" + render_ascii_chart(figure, metric)
    emit(results_dir, "fig4", text)

    early = len(japanese_bench.crawl_log) // 7
    bfs = figure.results["breadth-first"]
    hard = figure.results["hard-focused"]
    soft = figure.results["soft-focused"]

    # Even breadth-first harvests >70% early (paper's headline for Fig 4
    # — we allow a slightly wider band at reduced scale).
    assert bfs.series.harvest_at(early) > 0.6

    # Consistency with Figure 3: the focused orderings still hold...
    assert hard.series.harvest_at(early) >= bfs.series.harvest_at(early)
    assert soft.final_coverage > 0.999
    assert hard.final_coverage < soft.final_coverage

    # ...but the separation is small: "it seems to be difficult to
    # significantly improve the crawl performance on Japanese dataset".
    gain = hard.series.harvest_at(early) - bfs.series.harvest_at(early)
    assert gain < 0.25

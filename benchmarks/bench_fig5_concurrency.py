"""Figure 5 under the virtual-time scheduler: queue dynamics vs K.

The sweep re-plots the paper's Figure 5 (URL queue size, hard- vs
soft-focused, Thai) on the event-driven engine at K ∈ {1, 8, 64, 256}
fetch slots, and gates three properties:

- **Order-stability of the paper's claim** — the soft-focused queue
  dominates the hard-focused one at *every* concurrency level: overlap
  changes frontier order, not the memory-cost argument.
- **Throughput scaling** — pages per virtual second rise with K until
  the per-site politeness interval saturates the ladder (the hard-focused
  crawl, confined to relevant hosts, saturates earlier than the
  soft-focused one).
- **K=1 overhead** — the event loop's bookkeeping (heap, reservations)
  over the round-based engine at the same K=1 workload stays within
  ``OVERHEAD_GATE``.  Byte-identity of the *output* is tier-1
  (``tests/golden/test_golden_sched.py``); this gates the *cost*.
  Wall-clock gates flake on noisy runners, so the assert only fires
  when the round-based trials themselves were quiet
  (max/min < ``NOISE_CEILING``); the JSON artifact records the ratio
  either way.

Writes ``benchmarks/results/BENCH_fig5_concurrency.json``.
"""

from __future__ import annotations

import time

from repro.exec import TimingSpec
from repro.experiments.concurrency import DEFAULT_KS, concurrency_sweep
from repro.experiments.report import render_table
from repro.experiments.runner import run_strategy

from conftest import emit

TRIALS = 5
OVERHEAD_GATE = 1.05
NOISE_CEILING = 1.10
STRATEGIES = ("hard-focused", "soft-focused")


def _overhead_measurement(dataset) -> dict:
    """Best-of-``TRIALS`` wall time: round-based vs event-driven K=1.

    Pooled across both strategies (one ratio, less variance than two).
    """
    spec = TimingSpec()

    def run(strategy: str, concurrency: int | None) -> float:
        best = float("inf")
        for _ in range(TRIALS):
            start = time.perf_counter()
            run_strategy(dataset, strategy, timing=spec.build(), concurrency=concurrency)
            best = min(best, time.perf_counter() - start)
        return best

    round_based = {name: run(name, None) for name in STRATEGIES}
    event_k1 = {name: run(name, 1) for name in STRATEGIES}

    # Noise of the round-based side, re-measured: one extra trial set to
    # judge whether the box is quiet enough to enforce a 5% wall gate.
    noise_probe = {name: run(name, None) for name in STRATEGIES}
    pooled_rb = sum(round_based.values())
    pooled_probe = sum(noise_probe.values())
    noise = max(pooled_rb, pooled_probe) / min(pooled_rb, pooled_probe)

    pooled_rb = min(pooled_rb, pooled_probe)
    ratio = sum(event_k1.values()) / pooled_rb
    return {
        "trials": TRIALS,
        "round_based_best_s": {name: round(value, 4) for name, value in round_based.items()},
        "event_k1_best_s": {name: round(value, 4) for name, value in event_k1.items()},
        "overhead_ratio": round(ratio, 4),
        "overhead_gate": OVERHEAD_GATE,
        "noise": round(noise, 4),
        "noise_ceiling": NOISE_CEILING,
        "gate_enforced": noise < NOISE_CEILING,
    }


def test_fig5_concurrency(benchmark, thai_bench, results_dir):
    payload = benchmark.pedantic(
        lambda: concurrency_sweep(thai_bench), rounds=1, iterations=1
    )

    # Determinism: the whole sweep re-run must reproduce its digest.
    assert concurrency_sweep(thai_bench)["digest_sha256"] == payload["digest_sha256"]

    overhead = _overhead_measurement(thai_bench)
    payload["overhead_k1"] = overhead

    table_rows = [
        {
            key: row[key]
            for key in (
                "strategy",
                "concurrency",
                "pages",
                "max_queue_size",
                "sim_seconds",
                "pages_per_virtual_second",
            )
        }
        for row in payload["rows"]
    ]
    text = render_table(
        table_rows,
        title="Figure 5 × concurrency: URL queue size and virtual-time throughput",
    )
    text += (
        f"\nK=1 event-loop overhead vs round-based: "
        f"{overhead['overhead_ratio']}x (gate {OVERHEAD_GATE}x, "
        f"enforced={overhead['gate_enforced']})"
    )
    emit(results_dir, "fig5_concurrency", text, data=payload)

    by_cell = {(row["strategy"], row["concurrency"]): row for row in payload["rows"]}
    ks = payload["ks"]
    assert tuple(ks) == DEFAULT_KS

    for strategy in STRATEGIES:
        ladder = [by_cell[(strategy, k)] for k in ks]
        # Concurrency reorders the crawl; it must not change what gets
        # crawled — every K reaches the same page count and drains.
        assert len({row["pages"] for row in ladder}) == 1
        for row in ladder:
            assert row["final_queue_size"] == 0
        # Virtual time falls (weakly) as K rises, strictly from 1 to 8.
        sims = [row["sim_seconds"] for row in ladder]
        assert all(a >= b for a, b in zip(sims, sims[1:]))
        assert sims[0] > 1.5 * sims[1]
        # Throughput rises until politeness saturates the ladder.
        pps = [row["pages_per_virtual_second"] for row in ladder]
        assert all(a <= b + 1e-9 for a, b in zip(pps, pps[1:]))

    # The paper's Figure-5 gap survives concurrency: the soft-focused
    # queue peak dominates the hard-focused one at every K.
    for k in ks:
        assert (
            by_cell[("soft-focused", k)]["max_queue_size"]
            > 3 * by_cell[("hard-focused", k)]["max_queue_size"]
        )

    if overhead["gate_enforced"]:
        assert overhead["overhead_ratio"] <= OVERHEAD_GATE, (
            f"K=1 event loop costs {overhead['overhead_ratio']}x the "
            f"round-based engine (gate {OVERHEAD_GATE}x)"
        )

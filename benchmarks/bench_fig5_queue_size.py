"""Figure 5: URL queue size while running the simple strategy (Thai).

Shape criteria (paper §5.2.1): the soft-focused queue peaks at several
times the hard-focused one (paper: ~8M vs ~1M URLs on the 14M-URL
dataset), which is the memory-cost argument motivating the limited
distance strategy.
"""

from repro.experiments.figures import figure5
from repro.experiments.report import render_ascii_chart, render_figure

from conftest import canonical_hash, emit


def test_fig5_url_queue_size(benchmark, thai_bench, results_dir):
    figure = benchmark.pedantic(lambda: figure5(thai_bench), rounds=1, iterations=1)

    # The sweep fanned out over worker processes must not move a byte.
    digest = canonical_hash(figure.results)
    assert canonical_hash(figure5(thai_bench, workers=2).results) == digest

    text = render_figure(figure)
    text += "\n" + render_ascii_chart(figure, "queue_size")
    text += f"\nsweep sha256 (serial == workers=2): {digest}"
    emit(results_dir, "fig5", text)

    soft_queue = figure.results["soft-focused"].summary.max_queue_size
    hard_queue = figure.results["hard-focused"].summary.max_queue_size

    # Paper: ~8x at full scale; require the gap to be unmistakable.
    assert soft_queue > 3 * hard_queue

    # The soft queue holds a large share of the whole URL universe at
    # its peak (paper: 8M of 14M).
    assert soft_queue > 0.2 * len(thai_bench.crawl_log)

    # Queues drain to zero by the end of each crawl.
    for result in figure.results.values():
        assert result.series.queue_size[-1] == 0

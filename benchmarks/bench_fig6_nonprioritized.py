"""Figure 6: the non-prioritized limited distance strategy, N = 1..4.

Shape criteria (paper §5.2.2):

- (a) the URL queue's size is controlled by N — larger N, larger queue;
- (c) coverage also increases with N;
- (b) but the harvest rate *decreases* as N grows — "setting too high
  value of N is not beneficial to the crawl performance".
"""

from repro.experiments.figures import LIMITED_DISTANCE_NS, figure6
from repro.experiments.report import render_ascii_chart, render_figure

from conftest import canonical_hash, emit


def test_fig6_nonprioritized_limited_distance(benchmark, thai_bench, results_dir):
    figure = benchmark.pedantic(lambda: figure6(thai_bench), rounds=1, iterations=1)

    # The N sweep fanned out over worker processes must not move a byte.
    digest = canonical_hash(figure.results)
    assert canonical_hash(figure6(thai_bench, workers=2).results) == digest

    text = render_figure(figure)
    for metric in figure.panels:
        text += "\n" + render_ascii_chart(figure, metric)
    text += f"\nsweep sha256 (serial == workers=2): {digest}"
    emit(results_dir, "fig6", text)

    results = list(figure.results.values())
    assert len(results) == len(LIMITED_DISTANCE_NS)

    queues = [result.summary.max_queue_size for result in results]
    coverages = [result.final_coverage for result in results]
    harvests = [result.final_harvest_rate for result in results]

    # (a) queue size strictly increasing in N.
    assert all(a < b for a, b in zip(queues, queues[1:]))
    # (c) coverage non-decreasing in N, with a real spread.
    assert all(a <= b + 1e-9 for a, b in zip(coverages, coverages[1:]))
    assert coverages[-1] - coverages[0] > 0.02
    # (b) harvest rate decreasing in N.
    assert all(a >= b - 1e-9 for a, b in zip(harvests, harvests[1:]))
    assert harvests[0] - harvests[-1] > 0.02

"""Figure 7: the prioritized limited distance strategy, N = 1..4.

Shape criteria (paper §5.2.2): "the URL queue size can be controlled by
specifying an appropriate value of the parameter N.  However, this time,
both the crawl coverage and the harvest rate do not vary by the value of
N" — prioritisation repairs the harvest-rate regression of Figure 6.
"""

from repro.experiments.figures import figure6, figure7
from repro.experiments.report import render_ascii_chart, render_figure

from conftest import canonical_hash, emit


def test_fig7_prioritized_limited_distance(benchmark, thai_bench, results_dir):
    figure = benchmark.pedantic(lambda: figure7(thai_bench), rounds=1, iterations=1)

    # The N sweep fanned out over worker processes must not move a byte.
    digest = canonical_hash(figure.results)
    assert canonical_hash(figure7(thai_bench, workers=2).results) == digest

    text = render_figure(figure)
    for metric in figure.panels:
        text += "\n" + render_ascii_chart(figure, metric)
    text += f"\nsweep sha256 (serial == workers=2): {digest}"
    emit(results_dir, "fig7", text)

    results = list(figure.results.values())
    early = len(thai_bench.crawl_log) // 5

    queues = [result.summary.max_queue_size for result in results]
    early_harvests = [result.series.harvest_at(early) for result in results]

    # Queue size still controlled by N (monotone up to saturation).
    assert queues[0] < queues[-1]
    assert all(a <= b + 1e-9 for a, b in zip(queues, queues[1:]))

    # Harvest rate invariant in N over the crawl body — the fix over
    # Figure 6(b).
    assert max(early_harvests) - min(early_harvests) < 0.05

    # Cross-figure claim: prioritized N=1 matches non-prioritized N=1 on
    # coverage (same pruning rule) while harvesting at least as well.
    non_prioritized = figure6(thai_bench, ns=(1,))
    np1 = next(iter(non_prioritized.results.values()))
    p1 = results[0]
    assert abs(p1.final_coverage - np1.final_coverage) < 0.05
    assert p1.series.harvest_at(early) >= np1.series.harvest_at(early) - 0.02

"""Micro-benchmarks of the load-bearing components.

Where the macro benchmarks time whole experiments, these time the inner
loops a user would size a deployment around: frontier throughput,
charset detection bandwidth, HTML synthesis, and raw simulator page
rate.  They run with pytest-benchmark's full statistics (many rounds),
unlike the single-shot experiment benches.
"""

import numpy as np

from repro.charset.detector import detect_charset
from repro.charset.languages import Language
from repro.core.classifier import Classifier
from repro.core.frontier import Candidate, FIFOFrontier, PriorityFrontier
from repro.core.simulator import SimulationConfig, Simulator
from repro.core.strategies import SimpleStrategy
from repro.graphgen.htmlsynth import HtmlSynthesizer
from repro.graphgen.textgen import TextGenerator
from repro.webspace.page import PageRecord

N_OPS = 2_000


def test_micro_fifo_frontier(benchmark):
    candidates = [Candidate(url=f"http://p{index}.example/") for index in range(N_OPS)]

    def churn():
        frontier = FIFOFrontier()
        for item in candidates:
            frontier.push(item)
        while frontier:
            frontier.pop()

    benchmark(churn)


def test_micro_priority_frontier(benchmark):
    candidates = [
        Candidate(url=f"http://p{index}.example/", priority=index % 7) for index in range(N_OPS)
    ]

    def churn():
        frontier = PriorityFrontier()
        for item in candidates:
            frontier.push(item)
        while frontier:
            frontier.pop()

    benchmark(churn)


def test_micro_detector_japanese(benchmark):
    text = TextGenerator("japanese", np.random.default_rng(1)).paragraph(60)
    data = text.encode("euc_jp")

    result = benchmark(lambda: detect_charset(data))
    assert result.language is Language.JAPANESE
    benchmark.extra_info["document_bytes"] = len(data)


def test_micro_detector_thai(benchmark):
    text = TextGenerator("thai", np.random.default_rng(1)).paragraph(60)
    data = text.encode("tis_620")

    result = benchmark(lambda: detect_charset(data))
    assert result.language is Language.THAI
    benchmark.extra_info["document_bytes"] = len(data)


def test_micro_html_synthesis(benchmark):
    synthesizer = HtmlSynthesizer()
    record = PageRecord(
        url="http://bench.co.th/page.html",
        charset="TIS-620",
        true_language=Language.THAI,
        outlinks=tuple(f"http://l{index}.example/" for index in range(12)),
        size=8_000,
    )
    body = benchmark(lambda: synthesizer(record))
    assert body.startswith(b"<!DOCTYPE html>")


def test_micro_simulator_page_rate(benchmark, thai_bench):
    """End-to-end pages/second of the simulator core (charset mode)."""
    pages = 3_000

    def crawl():
        return Simulator(
            web=thai_bench.web(),
            strategy=SimpleStrategy(mode="soft"),
            classifier=Classifier(Language.THAI),
            seed_urls=list(thai_bench.seed_urls),
            relevant_urls=thai_bench.relevant_urls(),
            config=SimulationConfig(sample_interval=1000, max_pages=pages),
        ).run()

    result = benchmark.pedantic(crawl, rounds=3, iterations=1)
    assert result.pages_crawled == pages
    benchmark.extra_info["pages_per_round"] = pages

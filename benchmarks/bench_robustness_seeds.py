"""Seed robustness: the headline shapes are not a one-universe accident.

Re-runs the Figure 3/5 measurements on three independently seeded Thai
universes and asserts the paper's orderings for *every* seed: focused
beats breadth-first early, soft reaches full coverage while hard
plateaus, and the soft queue dwarfs the hard queue.
"""

from repro.experiments.report import render_table
from repro.experiments.robustness import seed_sweep, sweep_summary
from repro.graphgen.profiles import thai_profile

from conftest import BENCH_SCALE, emit

SEEDS = (11, 23, 47)


def test_seed_robustness(benchmark, results_dir):
    profile = thai_profile().scaled(min(BENCH_SCALE, 0.12))
    runs = benchmark.pedantic(lambda: seed_sweep(profile, seeds=SEEDS), rounds=1, iterations=1)

    summary = sweep_summary(runs)
    text = render_table(
        [run.to_dict() for run in runs], title="Headline metrics per seed (Thai profile)"
    )
    text += "\n" + render_table(
        [dict(metric=name, **values) for name, values in summary.items()],
        title="Across-seed summary",
    )
    emit(results_dir, "robustness_seeds", text)

    for run in runs:
        assert run.early_harvest_hard > 1.3 * run.early_harvest_bfs, run.seed
        assert run.coverage_soft > 0.999, run.seed
        assert 0.4 < run.coverage_hard < 0.95, run.seed
        assert run.queue_ratio_soft_over_hard > 2.0, run.seed
        # The relevance ratio itself has wide seed variance at reduced
        # scale (host sizes are heavy-tailed, so a handful of large
        # foreign portals can swing the page mix); the point of this
        # bench is that the strategy orderings above hold regardless.
        assert 0.1 < run.relevance_ratio < 0.55, run.seed

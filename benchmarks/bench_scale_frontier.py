"""Out-of-core scale gates: the columnar store vs the in-memory backend.

Runs the full :func:`repro.experiments.scalefrontier.scale_frontier_sweep`
ladder plus the 10⁶-page point and pins the tentpole's two claims:

1. **Identity** — at every measured scale the store-backed crawl's
   report digest equals the in-memory backend's (the golden byte-identity
   bar, applied far past golden scale).
2. **Footprint** — peak RSS of the million-page store crawl stays at or
   under :data:`~repro.experiments.scalefrontier.MAX_RSS_RATIO` of the
   in-memory backend's extrapolated footprint at 10⁶ pages.

Every build and measurement runs in its own subprocess (the sweep fans
them out itself), so this pytest process never holds a dataset and the
``ru_maxrss`` numbers are uncontaminated.

Writes ``benchmarks/results/BENCH_scale_frontier.json`` — the raw sweep
payload, the same format ``python -m repro.experiments.scalefrontier
--output`` produces, so CI trend tracking reads one schema from either
entry point.
"""

from __future__ import annotations

import json

from repro.experiments.scalefrontier import (
    DEFAULT_SCALES,
    MAX_RSS_RATIO,
    MILLION_PAGES,
    scale_frontier_sweep,
)

MAX_PAGES = 1500
MILLION_MAX_PAGES = 50_000
SPILL_LIMIT = 50_000


def _render(payload: dict) -> str:
    lines = [
        "Scale frontier: columnar store vs in-memory backend",
        f"  crawl budget {MAX_PAGES} pages/point; million point "
        f"{MILLION_MAX_PAGES} pages, spill limit {SPILL_LIMIT}",
        "",
        f"  {'n_pages':>10}  {'store KB':>10}  {'memory KB':>10}  digests",
    ]
    for row in payload["rows"]:
        lines.append(
            f"  {row['n_pages']:>10,}  {row['store']['ru_maxrss_kb']:>10,}  "
            f"{row['memory']['ru_maxrss_kb']:>10,}  "
            f"{'equal' if row['digests_equal'] else 'DIVERGED'}"
        )
    gate = payload["rss_gate"]
    million = payload["million"]
    lines += [
        f"  {million['n_pages']:>10,}  {million['store']['ru_maxrss_kb']:>10,}  "
        f"{gate['extrapolated_memory_rss_kb']:>10,.0f}  (extrapolated)",
        "",
        f"  RSS gate: ratio {gate['ratio']} <= {gate['max_ratio']} -> "
        f"{'PASS' if gate['pass'] else 'FAIL'}",
        f"  sweep digest {payload['digest_sha256'][:16]}",
    ]
    return "\n".join(lines)


def test_scale_frontier_gates(results_dir):
    payload = scale_frontier_sweep(
        scales=DEFAULT_SCALES,
        max_pages=MAX_PAGES,
        million=True,
        million_max_pages=MILLION_MAX_PAGES,
        spill_limit=SPILL_LIMIT,
        progress=print,
    )

    text = _render(payload)
    print()
    print(text)
    (results_dir / "scale_frontier.txt").write_text(text)
    (results_dir / "BENCH_scale_frontier.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # Identity: every measured scale, both backends, one report digest.
    assert all(row["digests_equal"] for row in payload["rows"])
    # The headline point really is the million-page web.
    assert payload["million"]["n_pages"] == MILLION_PAGES
    assert payload["million"]["store_build"]["n_pages"] == MILLION_PAGES
    # Footprint: flat out-of-core RSS against the linearly-growing fit.
    gate = payload["rss_gate"]
    assert gate["pass"], (
        f"store RSS {gate['store_rss_kb']} KB exceeds {MAX_RSS_RATIO:.0%} of the "
        f"extrapolated in-memory {gate['extrapolated_memory_rss_kb']} KB"
    )
    # The spilling frontier actually engaged at the million point.
    spill = payload["million"]["store"]["spill"]
    assert spill is not None and spill["spilled"] > 0

"""Section 3 evidence: language locality in the (synthetic) Web.

The paper grounds its approach in three observations made by sampling
pages from the Thai dataset.  This benchmark measures them exhaustively
on our datasets and asserts all three — so the premise the strategies
rely on demonstrably holds in the web spaces the figures are produced
from, and the contrast with the Japanese dataset (§5.1's "language
specificity") shows up in the same numbers.
"""

from repro.analysis import degree_stats, locality_evidence
from repro.charset.languages import Language
from repro.experiments.report import render_table

from conftest import emit


def test_sec3_language_locality_evidence(benchmark, thai_bench, japanese_bench, results_dir):
    def measure():
        return {
            "thai": locality_evidence(thai_bench.crawl_log, Language.THAI),
            "japanese": locality_evidence(japanese_bench.crawl_log, Language.JAPANESE),
        }

    evidence = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [dict(dataset=name, **item.to_dict()) for name, item in evidence.items()]
    degrees = degree_stats(thai_bench.crawl_log)
    degree_rows = [dict(direction=key, **stats.to_dict()) for key, stats in degrees.items()]
    emit(
        results_dir,
        "sec3_evidence",
        render_table(rows, title="Section 3 evidence: language locality, measured")
        + "\n"
        + render_table(degree_rows, title="Thai dataset degree structure"),
    )

    thai = evidence["thai"]
    # Observation 1: Thai pages are linked by other Thai pages — far
    # above the blind-chance rate.
    assert thai.same_language_inlink_fraction > thai.relevance_ratio
    assert thai.locality_lift > 1.5
    # Observation 2: some Thai pages are reachable only through non-Thai
    # pages (no relevant inlink at all) — present but a minority.
    assert 0.01 < thai.relevant_without_relevant_inlink < 0.6
    # Observation 3: some Thai pages are mislabeled.
    assert 0.02 < thai.mislabel_rate < 0.3

    # The Japanese dataset shows the same locality structure at a much
    # higher base rate — its "high degree of language specificity".
    japanese = evidence["japanese"]
    assert japanese.relevance_ratio > thai.relevance_ratio
    assert japanese.same_language_inlink_fraction > japanese.relevance_ratio

    # And the synthetic web has real-web degree structure: heavy-tailed
    # in-degree with hub concentration.
    assert degrees["in"].top_percent_share > 0.05
    assert degrees["in"].tail_exponent is not None and degrees["in"].tail_exponent < -0.5

"""Tournament gates for the strategy zoo on cue-annotated Thai webs.

Three claims are pinned here:

1. **Determinism** — the tournament fanned out over ``workers=2`` is
   byte-identical to the serial run: equal ``sweep_digest`` over the
   full payload (rows, ranking, everything but wall time, which the
   digest excludes by construction).
2. **Context pays** — at strictly equal page budget on the same cued
   Thai web, at least one of the context-aware hybrids (``pdd-hybrid``,
   ``pal-content-link``, ``infospiders``) beats plain ``soft-focused``
   on mean final harvest rate.  This is the whole point of plumbing
   anchor-text link context through the pipeline: if reading anchors
   does not buy harvest, the hand-off is dead weight.
3. **Full zoo ranked** — every registered strategy appears exactly once
   in the ranking, with contiguous ranks from 1.

Writes ``benchmarks/results/BENCH_strategy_tournament.json``.
"""

from __future__ import annotations

from repro.experiments.tournament import FULL_ZOO, tournament_sweep

from conftest import emit

#: The tournament runs at golden scale with two universe seeds: an
#: 11-strategy × 2-seed grid at 0.02 stays cheap while still averaging
#: over independent web layouts.
TOURNAMENT_SCALE = 0.02
TOURNAMENT_MAX_PAGES = 1100

CONTEXT_STRATEGIES = ("pdd-hybrid", "pal-content-link", "infospiders")
BASELINE = "soft-focused"


def test_strategy_tournament(results_dir):
    payload = tournament_sweep(
        scales=(TOURNAMENT_SCALE,),
        max_pages=TOURNAMENT_MAX_PAGES,
        workers=2,
    )
    serial = tournament_sweep(
        scales=(TOURNAMENT_SCALE,),
        max_pages=TOURNAMENT_MAX_PAGES,
        workers=0,
    )
    assert payload["digest_sha256"] == serial["digest_sha256"], (
        "tournament is not deterministic across worker counts: "
        f"workers=2 digest {payload['digest_sha256']} != "
        f"serial digest {serial['digest_sha256']}"
    )

    ranking = {entry["strategy"]: entry for entry in payload["summary"]}
    assert set(ranking) == set(FULL_ZOO), (
        f"ranking does not cover the full zoo: missing "
        f"{sorted(set(FULL_ZOO) - set(ranking))}, extra "
        f"{sorted(set(ranking) - set(FULL_ZOO))}"
    )
    assert [entry["rank"] for entry in payload["summary"]] == list(
        range(1, len(FULL_ZOO) + 1)
    )

    baseline_harvest = ranking[BASELINE]["mean_harvest_rate"]
    winners = [
        name
        for name in CONTEXT_STRATEGIES
        if ranking[name]["mean_harvest_rate"] > baseline_harvest
    ]
    assert winners, (
        f"no context-aware strategy beats {BASELINE} on mean harvest rate "
        f"({baseline_harvest:.4f}) at equal budget — link context is not "
        "paying for itself; hybrids: "
        + ", ".join(
            f"{name}={ranking[name]['mean_harvest_rate']:.4f}"
            for name in CONTEXT_STRATEGIES
        )
    )

    lines = [
        "Strategy tournament (cued Thai web, Fig. 3 axes)",
        f"  scale: {TOURNAMENT_SCALE}  seeds: {payload['seeds']}"
        f"  max_pages: {TOURNAMENT_MAX_PAGES}",
        f"  cues: anchor={payload['anchor_cue_probability']}"
        f" around={payload['around_cue_probability']}",
        f"  {'rank':>4s}  {'strategy':18s} {'harvest':>8s} {'coverage':>9s}",
    ]
    for entry in payload["summary"]:
        marker = " *" if entry["strategy"] in winners else ""
        lines.append(
            f"  {entry['rank']:>4d}  {entry['strategy']:18s}"
            f" {entry['mean_harvest_rate']:8.4f} {entry['mean_coverage']:9.4f}{marker}"
        )
    lines.append(f"  * context-aware and above {BASELINE} on harvest")
    lines.append(f"  digest: {payload['digest_sha256']}")

    emit(
        results_dir,
        "strategy_tournament",
        "\n".join(lines),
        data={
            "tournament": payload,
            "gates": {
                "baseline": BASELINE,
                "baseline_mean_harvest_rate": baseline_harvest,
                "context_strategies": list(CONTEXT_STRATEGIES),
                "context_winners": winners,
                "serial_digest": serial["digest_sha256"],
            },
        },
    )

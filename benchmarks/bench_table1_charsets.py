"""Table 1: languages and their corresponding character encoding schemes.

The table itself is static; the benchmark times what stands behind it —
the composite detector classifying real encoded documents of every
charset in the table — and asserts the detector agrees with the mapping.
"""

import numpy as np

from repro.charset.detector import detect_charset
from repro.charset.languages import PYTHON_CODECS, Language, language_of_charset
from repro.experiments.report import render_table
from repro.experiments.tables import table1
from repro.graphgen.textgen import TextGenerator, flavor_for

from conftest import emit

#: One sample document per Table 1 charset.
_TABLE1_CHARSETS = {
    "EUC-JP": Language.JAPANESE,
    "SHIFT_JIS": Language.JAPANESE,
    "ISO-2022-JP": Language.JAPANESE,
    "TIS-620": Language.THAI,
    "WINDOWS-874": Language.THAI,
}


def _sample_documents() -> dict[str, bytes]:
    documents = {}
    for charset, language in _TABLE1_CHARSETS.items():
        text = TextGenerator(flavor_for(language), np.random.default_rng(42)).paragraph(20)
        documents[charset] = text.encode(PYTHON_CODECS[charset])
    return documents


def test_table1_charset_language_map(benchmark, results_dir):
    documents = _sample_documents()

    def detect_all():
        return {charset: detect_charset(data) for charset, data in documents.items()}

    results = benchmark(detect_all)

    rows = table1()
    emit(results_dir, "table1", render_table(rows, title="Table 1: Languages and charsets"))

    for charset, expected_language in _TABLE1_CHARSETS.items():
        detected = results[charset]
        assert detected.language is expected_language, charset
        assert language_of_charset(detected.charset) is expected_language

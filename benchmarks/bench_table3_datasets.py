"""Table 3: characteristics of the experimental datasets.

Regenerates the dataset-characteristics table and asserts the calibrated
relevance ratios: ≈0.35 for Thai (low language specificity) and ≈0.7 for
Japanese (high specificity) — the property §5.1 builds its argument on.
The benchmark times the end-to-end dataset construction (generation +
capture crawl) at a reduced scale.
"""

from repro.experiments.datasets import build_dataset
from repro.experiments.report import render_table
from repro.experiments.tables import table3
from repro.graphgen.profiles import thai_profile

from conftest import emit


def test_table3_dataset_characteristics(benchmark, thai_bench, japanese_bench, results_dir):
    # Time a fresh (smaller) build so the benchmark measures pipeline
    # cost; the asserted table uses the full bench-scale datasets.
    benchmark.pedantic(
        lambda: build_dataset(thai_profile().scaled(0.05)), rounds=1, iterations=1
    )

    rows = table3([thai_bench, japanese_bench])
    emit(
        results_dir,
        "table3",
        render_table(rows, title="Table 3: Characteristics of experimental datasets (OK pages)"),
    )

    thai_row, japanese_row = rows
    # Paper: Thai 1,467,643 / 3,886,944 ≈ 0.35.
    assert 0.25 < thai_row["relevance_ratio"] < 0.45
    # Paper: Japanese 67,983,623 / 95,183,978 ≈ 0.71.
    assert 0.55 < japanese_row["relevance_ratio"] < 0.85
    # The ordering that drives the paper's §5.2 decision to evaluate the
    # later strategies on Thai only.
    assert thai_row["relevance_ratio"] < japanese_row["relevance_ratio"]
    # Structural sanity of the table itself.
    for row in rows:
        assert row["total_html_pages"] == (
            row["relevant_html_pages"] + row["irrelevant_html_pages"]
        )

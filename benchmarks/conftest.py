"""Shared benchmark fixtures.

Benchmarks run the paper's experiments at ``REPRO_LSWC_SCALE`` (default
0.25 → ~35k-URL Thai universe, ~27k Japanese).  Datasets are built once
per session and cached on disk, so re-running the suite only pays the
simulation cost, not generation.

Every benchmark writes its rendered tables/series under
``benchmarks/results/`` so the paper-shaped output survives the run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.datasets import load_or_build_dataset
from repro.graphgen.profiles import japanese_profile, thai_profile

BENCH_SCALE = float(os.environ.get("REPRO_LSWC_SCALE", "0.25"))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def thai_bench():
    """The Thai dataset at benchmark scale (cached)."""
    return load_or_build_dataset(thai_profile().scaled(BENCH_SCALE))


@pytest.fixture(scope="session")
def japanese_bench():
    """The Japanese dataset at benchmark scale (cached)."""
    return load_or_build_dataset(japanese_profile().scaled(BENCH_SCALE))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a rendered report and persist it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text)

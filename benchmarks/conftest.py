"""Shared benchmark fixtures.

Benchmarks run the paper's experiments at ``REPRO_LSWC_SCALE`` (default
0.25 → ~35k-URL Thai universe, ~27k Japanese).  Datasets are built once
per session and cached on disk, so re-running the suite only pays the
simulation cost, not generation.

Every benchmark writes its rendered tables/series under
``benchmarks/results/`` so the paper-shaped output survives the run —
both human-readable (``<name>.txt``) and machine-readable
(``BENCH_<name>.json``) for CI trend tracking.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

import pytest

from repro.experiments.datasets import load_or_build_dataset
from repro.graphgen.profiles import japanese_profile, thai_profile

BENCH_SCALE = float(os.environ.get("REPRO_LSWC_SCALE", "0.25"))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def thai_bench():
    """The Thai dataset at benchmark scale (cached)."""
    return load_or_build_dataset(thai_profile().scaled(BENCH_SCALE))


@pytest.fixture(scope="session")
def japanese_bench():
    """The Japanese dataset at benchmark scale (cached)."""
    return load_or_build_dataset(japanese_profile().scaled(BENCH_SCALE))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def canonical_hash(results: dict) -> str:
    """sha256 over a sweep's deterministic content (wall time excluded).

    The executor's contract — ``workers=N`` is byte-identical to serial —
    is assertable as digest equality; every bench that fans a sweep out
    pins it with this one definition of "the results".
    """
    canonical = json.dumps(
        {
            name: {
                "series": result.series.to_dict(),
                "summary": dataclasses.asdict(result.summary),
                "resilience": result.resilience,
            }
            for name, result in results.items()
        },
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def emit(results_dir: Path, name: str, text: str, data: dict | list | None = None) -> None:
    """Print a rendered report and persist it under benchmarks/results/.

    Writes ``<name>.txt`` (the rendered report) and a machine-readable
    ``BENCH_<name>.json`` companion: ``data`` when the caller provides
    structured results, otherwise the text wrapped in a one-key dict so
    every benchmark run leaves a parseable artifact either way.
    """
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text)
    payload = {
        "name": name,
        "scale": BENCH_SCALE,
        "data": data if data is not None else {"text": text},
    }
    (results_dir / f"BENCH_{name}.json").write_text(json.dumps(payload, indent=2, sort_keys=True))

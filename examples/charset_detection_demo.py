"""Language identification demo: META declarations vs byte detection.

Run:  python examples/charset_detection_demo.py

Renders real HTML pages in every encoding of the paper's Table 1 (plus
the mislabel cases §3 observes), then identifies each page's language
two ways — parsing the META declaration, and running the composite
byte-distribution detector — and prints the comparison.  The punchline
is the paper's observation 3: META lies (or is absent) on a visible
fraction of pages, and only the detector recovers those.
"""

from repro import HtmlSynthesizer, Language, PageRecord, detect_charset, parse_meta_charset
from repro.charset.languages import language_of_charset
from repro.experiments.report import render_table

#: (description, declared charset, true content language)
CASES = [
    ("Japanese page declaring EUC-JP", "EUC-JP", Language.JAPANESE),
    ("Japanese page declaring Shift_JIS", "SHIFT_JIS", Language.JAPANESE),
    ("Japanese page declaring ISO-2022-JP", "ISO-2022-JP", Language.JAPANESE),
    ("Thai page declaring TIS-620", "TIS-620", Language.THAI),
    ("Thai page declaring WINDOWS-874", "WINDOWS-874", Language.THAI),
    ("English page declaring ISO-8859-1", "ISO-8859-1", Language.OTHER),
    # The paper's mislabel cases:
    ("Thai page declaring UTF-8 (mislabeled)", "UTF-8", Language.THAI),
    ("Thai page with NO declaration", None, Language.THAI),
    ("Japanese page with NO declaration", None, Language.JAPANESE),
]


def main() -> None:
    synthesizer = HtmlSynthesizer()
    rows = []
    meta_correct = 0
    detector_correct = 0

    for index, (description, charset, language) in enumerate(CASES):
        record = PageRecord(
            url=f"http://demo{index}.example/",
            charset=charset,
            true_language=language,
            size=3000,
        )
        body = synthesizer(record)

        meta_label = parse_meta_charset(body)
        meta_language = language_of_charset(meta_label)
        detection = detect_charset(body)

        meta_ok = meta_language is language
        detector_ok = detection.language is language
        meta_correct += meta_ok
        detector_correct += detector_ok

        rows.append(
            {
                "page": description,
                "META says": meta_label or "(none)",
                "META language": f"{meta_language}{' ✓' if meta_ok else ' ✗'}",
                "detector says": detection.charset,
                "detector language": f"{detection.language}{' ✓' if detector_ok else ' ✗'}",
            }
        )

    print(render_table(rows, title="Language identification: META declaration vs byte detector"))
    print(f"META correct:     {meta_correct}/{len(CASES)}")
    print(f"Detector correct: {detector_correct}/{len(CASES)}")
    print(
        "\nNote the two asymmetries the paper discusses (§3.2):\n"
        " - pages with missing META can still be identified from bytes;\n"
        " - a UTF-8 page is honestly UTF-8 at the byte level, so *neither*\n"
        "   method recovers its language from the encoding alone — the\n"
        "   inherent blind spot of charset-based classification."
    )


if __name__ == "__main__":
    main()

"""Writing your own crawl strategy against the public API.

Run:  python examples/custom_strategy.py

The paper's future work calls for "a wider range of crawling strategies".
The framework makes that a ~30-line exercise: subclass ``CrawlStrategy``,
choose a frontier, and implement ``expand``.  Shown here: a *referrer-
history* strategy that scores each URL by the fraction of relevant pages
among everything crawled so far on its host — a simple learned prior the
original simple strategy lacks — compared against the paper's built-ins.
"""

from collections import defaultdict
from collections.abc import Iterable

from repro import (
    BreadthFirstStrategy,
    SimpleStrategy,
    CrawlRequest,
    SessionConfig,
    build_dataset,
    run_crawl,
    thai_profile,
)
from repro.core.classifier import Judgment
from repro.core.frontier import Candidate, Frontier, PriorityFrontier
from repro.core.strategies.base import CrawlStrategy
from repro.experiments.report import render_table
from repro.urlkit import url_host
from repro.webspace.virtualweb import FetchResponse


class HostReputationStrategy(CrawlStrategy):
    """Priority = observed relevance rate of the target URL's host.

    Hosts start optimistic (prior of one relevant observation), so new
    hosts are explored; hosts that keep yielding off-language pages sink
    down the queue instead of being discarded outright.
    """

    name = "host-reputation"

    #: priority bands: reputation quantised to 0..SCALE
    SCALE = 10

    def __init__(self) -> None:
        self._relevant: dict[str, int] = defaultdict(lambda: 1)  # optimistic prior
        self._seen: dict[str, int] = defaultdict(lambda: 1)

    def make_frontier(self) -> Frontier:
        return PriorityFrontier()

    def max_priority(self) -> int:
        return self.SCALE

    def expand(
        self,
        parent: Candidate,
        response: FetchResponse,
        judgment: Judgment,
        outlinks: Iterable[str],
    ) -> list[Candidate]:
        host = url_host(parent.url)
        self._seen[host] += 1
        if judgment.relevant:
            self._relevant[host] += 1

        children = []
        for url in outlinks:
            target_host = url_host(url)
            reputation = self._relevant[target_host] / self._seen[target_host]
            children.append(
                Candidate(url=url, priority=int(reputation * self.SCALE), referrer=parent.url)
            )
        return children


def main() -> None:
    print("Building the Thai dataset (1/8 scale)...\n")
    dataset = build_dataset(thai_profile().scaled(0.125))
    early = len(dataset.crawl_log) // 5

    config = SessionConfig(sample_interval=max(1, len(dataset.crawl_log) // 200))
    results = {
        strategy.name: run_crawl(CrawlRequest(dataset=dataset, strategy=strategy), config=config)
        for strategy in (
            BreadthFirstStrategy(),
            SimpleStrategy(mode="soft"),
            HostReputationStrategy(),
        )
    }

    rows = []
    for name, result in results.items():
        rows.append(
            {
                "strategy": name,
                "early harvest": f"{result.series.harvest_at(early):.1%}",
                "coverage": f"{result.final_coverage:.1%}",
                "peak queue": result.summary.max_queue_size,
            }
        )
    print(render_table(rows, title="Custom strategy vs the paper's built-ins"))
    print(
        "host-reputation keeps soft-focused's full coverage while using\n"
        "per-host history instead of only the immediate referrer — one\n"
        "of the 'wider range of strategies' the paper leaves as future work."
    )


if __name__ == "__main__":
    main()

"""Scaling the archive out: partitioned crawling of a national web.

Run:  python examples/distributed_archive.py

When a national archive outgrows one crawler, the URL space is
partitioned by host across machines.  This example sizes that decision
on the Thai dataset: how much coverage does coordination-free
("firewall") partitioning cost, and how much traffic does full
coordination ("exchange") need — then slices the resulting archive by
language using the crawl-log query API.
"""

from repro import (
    BreadthFirstStrategy,
    Language,
    ParallelConfig,
    PartitionMode,
    build_dataset,
    CrawlRequest,
    run_crawl,
    thai_profile,
)
from repro.experiments.report import render_table
from repro.webspace.query import by_language, filter_log, ok_html


def main() -> None:
    print("Building the Thai dataset (1/8 scale)...\n")
    dataset = build_dataset(thai_profile().scaled(0.125))

    rows = []
    for mode in (PartitionMode.FIREWALL, PartitionMode.EXCHANGE):
        for partitions in (2, 4, 8):
            result = run_crawl(
                CrawlRequest(dataset=dataset, strategy=BreadthFirstStrategy),
                config=ParallelConfig(partitions=partitions, mode=mode),
            )
            rows.append(
                {
                    "mode": mode.value,
                    "crawlers": partitions,
                    "coverage": f"{result.coverage:.0%}",
                    "messages": result.messages_exchanged,
                    "dropped links": result.dropped_foreign_links,
                    "load balance": f"{result.balance:.2f}",
                }
            )
    print(render_table(rows, title="Partitioned crawl of the Thai web"))

    print(
        "Reading the table: firewall crawlers never talk, but partitions\n"
        "holding no seed stay empty and cross-partition-only pages are\n"
        "lost; exchange keeps 100% coverage for a bounded message volume.\n"
    )

    # Post-crawl, the archive curator slices the collection:
    thai_pages = filter_log(
        dataset.crawl_log, lambda r: ok_html()(r) and by_language(Language.THAI)(r)
    )
    print(
        f"Archive slice: {len(thai_pages)} Thai HTML pages of "
        f"{len(dataset.crawl_log)} captured URLs "
        f"({dataset.stats().relevance_ratio:.0%} relevance ratio)."
    )


if __name__ == "__main__":
    main()

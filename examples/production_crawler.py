"""Simulating a production-grade polite crawler with bounded memory.

Run:  python examples/production_crawler.py

The paper's simulator deliberately omits "details such as elapsed time
and per-server queue typically found in a real-world web crawler" (§4)
— and its §5.2.1 warns that the soft-focused queue would exhaust
physical memory at Web scale.  This example composes the three
extensions that close those gaps around one soft-focused crawl:

- :class:`SpillingStrategy` — bounded resident URL queue, cold tail on
  disk;
- :class:`PoliteOrderingStrategy` — per-server round-robin, no bursts;
- :class:`TimingModel` — transfer delays + per-site access intervals.

The punchline: full archive coverage with a ~500-URL resident queue, a
mean same-site burst of ~1, and a realistic simulated wall-clock.
"""

from repro import (
    SimpleStrategy,
    CrawlRequest,
    SessionConfig,
    TimingModel,
    build_dataset,
    run_crawl,
    thai_profile,
)
from repro.core.politeness import PoliteOrderingStrategy, mean_same_site_run
from repro.core.spilling import SpillingStrategy

MEMORY_LIMIT = 500


def crawl(dataset, strategy, timing=None):
    urls = []
    result = run_crawl(
        CrawlRequest(dataset=dataset, strategy=strategy),
        config=SessionConfig(
            sample_interval=500,
            timing=timing,
            on_fetch=lambda event: urls.append(event.url),
        ),
    )
    return result, urls


def main() -> None:
    print("Building the Thai dataset (1/8 scale)...\n")
    dataset = build_dataset(thai_profile().scaled(0.125))

    print("1. Plain soft-focused crawl (the paper's §5.2.1 baseline):")
    plain, plain_urls = crawl(dataset, SimpleStrategy(mode="soft"))
    print(f"   coverage {plain.final_coverage:.0%}, peak queue "
          f"{plain.summary.max_queue_size} URLs all in memory, "
          f"mean same-site burst {mean_same_site_run(plain_urls):.2f}\n")

    print("2. Production configuration (spilling + politeness + timing):")
    # The two wrappers each replace the queue discipline, so they are
    # shown separately — one cost at a time.  First spilling:
    spiller = SpillingStrategy(SimpleStrategy(mode="soft"), memory_limit=MEMORY_LIMIT)
    spilled, _ = crawl(dataset, spiller)
    stats = spiller.last_stats
    print(f"   [spilling]  coverage {spilled.final_coverage:.0%} with only "
          f"{stats.peak_resident} URLs resident ({stats.spilled} spilled to disk)")

    polite, polite_urls = crawl(
        dataset,
        PoliteOrderingStrategy(SimpleStrategy(mode="soft")),
        timing=TimingModel(politeness_interval_s=1.0, connections=32),
    )
    print(f"   [politeness] coverage {polite.final_coverage:.0%}, mean same-site "
          f"burst {mean_same_site_run(polite_urls):.2f}, simulated duration "
          f"{polite.summary.simulated_seconds / 3600:.1f} h at 1 req/site/s\n")

    print(
        "Together these are the gaps the paper lists between its simulator\n"
        "and a real crawler — closed, measured, and still reproducing the\n"
        "same coverage. See benchmarks/bench_ext_*.py for the assertions."
    )


if __name__ == "__main__":
    main()

"""The queue-memory / coverage trade-off: picking N.

Run:  python examples/queue_memory_tradeoff.py

Sweeps the limited-distance parameter N in both priority modes and
prints the coverage-vs-peak-queue frontier — the practical dial the
paper's §5.2.2 is about.  With the non-prioritized mode you buy coverage
with memory *and* pay in harvest rate; prioritization removes the
harvest penalty, so the frontier becomes a pure memory/coverage dial.
"""

from repro import (
    LimitedDistanceStrategy,
    SimpleStrategy,
    CrawlRequest,
    SessionConfig,
    build_dataset,
    run_crawl,
    thai_profile,
)
from repro.experiments.report import render_table

NS = (1, 2, 3, 4)


def _config(dataset) -> SessionConfig:
    return SessionConfig(sample_interval=max(1, len(dataset.crawl_log) // 200))


def sweep(dataset, prioritized: bool) -> list[dict]:
    early = len(dataset.crawl_log) // 5
    rows = []
    for n in NS:
        result = run_crawl(
            CrawlRequest(
                dataset=dataset,
                strategy=LimitedDistanceStrategy(n=n, prioritized=prioritized),
            ),
            config=_config(dataset),
        )
        rows.append(
            {
                "N": n,
                "coverage": f"{result.final_coverage:.1%}",
                "early harvest": f"{result.series.harvest_at(early):.1%}",
                "peak queue": result.summary.max_queue_size,
            }
        )
    return rows


def main() -> None:
    print("Building the Thai dataset (1/8 scale)...\n")
    dataset = build_dataset(thai_profile().scaled(0.125))

    soft = run_crawl(
        CrawlRequest(dataset=dataset, strategy=SimpleStrategy(mode="soft")),
        config=_config(dataset),
    )
    print(
        f"Reference (soft-focused, unbounded queue): coverage "
        f"{soft.final_coverage:.1%}, peak queue {soft.summary.max_queue_size} URLs\n"
    )

    print(render_table(sweep(dataset, prioritized=False), title="Non-prioritized limited distance (paper Fig. 6)"))
    print("-> more N buys coverage but harvest rate decays.\n")

    print(render_table(sweep(dataset, prioritized=True), title="Prioritized limited distance (paper Fig. 7)"))
    print(
        "-> harvest rate is flat in N: the queue bound is now a pure\n"
        "   memory/coverage dial. Pick the largest N whose peak queue\n"
        "   fits your crawler's memory budget."
    )


if __name__ == "__main__":
    main()

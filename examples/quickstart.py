"""Quickstart: build a dataset, crawl it two ways, compare.

Run:  python examples/quickstart.py

This builds a small synthetic Thai web space (the paper's Thai dataset
at 1/10 scale), replays a breadth-first crawl and a soft-focused
language-specific crawl over it, and prints the paper's three metrics
for each: harvest rate, coverage, and peak URL-queue size.
"""

from repro import (
    BreadthFirstStrategy,
    SimpleStrategy,
    CrawlRequest,
    SessionConfig,
    build_dataset,
    run_crawl,
    thai_profile,
)


def main() -> None:
    print("Building the Thai dataset at 1/10 scale (one-time cost)...")
    dataset = build_dataset(thai_profile().scaled(0.1))
    stats = dataset.stats()
    print(
        f"  {stats.total_urls} URLs captured, "
        f"{stats.total_html_pages} OK HTML pages, "
        f"{stats.relevant_html_pages} Thai "
        f"(relevance ratio {stats.relevance_ratio:.0%})\n"
    )

    config = SessionConfig(sample_interval=max(1, len(dataset.crawl_log) // 200))
    for strategy in (BreadthFirstStrategy(), SimpleStrategy(mode="soft")):
        result = run_crawl(CrawlRequest(dataset=dataset, strategy=strategy), config=config)
        early = len(dataset.crawl_log) // 5
        print(f"{strategy.name}")
        print(f"  pages crawled        {result.pages_crawled}")
        print(f"  early harvest rate   {result.series.harvest_at(early):.0%} (first 20% of crawl)")
        print(f"  final coverage       {result.final_coverage:.0%} of Thai pages found")
        print(f"  peak URL queue       {result.summary.max_queue_size} URLs\n")

    print(
        "The focused crawl finds Thai pages several times faster than\n"
        "breadth-first while reaching the same final coverage — the\n"
        "paper's core result, on your laptop."
    )


if __name__ == "__main__":
    main()

"""National web-archiving scenario: choosing a crawl strategy for a
Thai web archive.

Run:  python examples/thai_archive_simulation.py

The paper's motivating application is a national/language-specific web
archive: an institution with bounded crawler memory wants the largest
possible share of the national web, found as early as possible.  This
example plays that decision out — it evaluates every strategy family of
the paper on the Thai dataset and prints a recommendation table an
archive operator could act on.
"""

from repro import (
    BreadthFirstStrategy,
    LimitedDistanceStrategy,
    SimpleStrategy,
    CrawlRequest,
    SessionConfig,
    build_dataset,
    run_crawl,
    thai_profile,
)
from repro.experiments.report import render_table


def main() -> None:
    print("Building the Thai web snapshot (1/8 scale)...\n")
    dataset = build_dataset(thai_profile().scaled(0.125))
    early = len(dataset.crawl_log) // 5

    strategies = [
        BreadthFirstStrategy(),
        SimpleStrategy(mode="hard"),
        SimpleStrategy(mode="soft"),
        LimitedDistanceStrategy(n=1, prioritized=True),
        LimitedDistanceStrategy(n=2, prioritized=True),
        LimitedDistanceStrategy(n=3, prioritized=True),
    ]
    config = SessionConfig(sample_interval=max(1, len(dataset.crawl_log) // 200))
    results = {
        strategy.name: run_crawl(CrawlRequest(dataset=dataset, strategy=strategy), config=config)
        for strategy in strategies
    }

    rows = []
    for name, result in results.items():
        rows.append(
            {
                "strategy": name,
                "early harvest": f"{result.series.harvest_at(early):.0%}",
                "coverage": f"{result.final_coverage:.0%}",
                "peak queue (URLs)": result.summary.max_queue_size,
                "pages fetched": result.pages_crawled,
            }
        )
    print(render_table(rows, title="Thai web-archive crawl: strategy comparison"))

    # The operator's trade-off, stated the way the paper concludes it.
    soft = results["soft-focused"]
    best = None
    for name, result in results.items():
        if result.final_coverage > 0.95 * soft.final_coverage:
            if best is None or result.summary.max_queue_size < best[1].summary.max_queue_size:
                best = (name, result)
    assert best is not None
    name, result = best
    saved = 1 - result.summary.max_queue_size / soft.summary.max_queue_size
    print(
        f"Recommendation: '{name}' — within 5% of soft-focused coverage\n"
        f"({result.final_coverage:.0%} vs {soft.final_coverage:.0%}) while using "
        f"{saved:.0%} less queue memory at peak.\n"
        "This is the paper's conclusion: prioritized limited-distance\n"
        "crawling keeps the URL queue compact at nearly full coverage."
    )


if __name__ == "__main__":
    main()

"""repro — reproduction of "Simulation Study of Language Specific Web
Crawling" (Somboonviwat, Tamura, Kitsuregawa; DEWS/ICDE 2005).

The package implements the paper's full stack from scratch:

- a composite charset detector and META parsing for language
  identification (:mod:`repro.charset`),
- a trace-driven web crawling simulator (:mod:`repro.core`,
  :mod:`repro.webspace`),
- the crawl strategies under study — breadth-first, hard/soft-focused,
  and (non-)prioritized limited-distance (:mod:`repro.core.strategies`),
- a synthetic web-space generator replacing the unavailable 2004 crawl
  logs (:mod:`repro.graphgen`),
- and the experiment harness regenerating every table and figure of the
  paper's evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro import build_dataset, thai_profile, run_strategy
    from repro.core.strategies import SimpleStrategy

    dataset = build_dataset(thai_profile().scaled(0.1))
    result = run_strategy(dataset, SimpleStrategy(mode="soft"))
    print(result.final_coverage, result.summary.max_queue_size)
"""

from repro.charset import (
    CompositeCharsetDetector,
    DetectionResult,
    Language,
    detect_charset,
    language_of_charset,
    parse_meta_charset,
)
from repro.core import (
    BreadthFirstStrategy,
    Classifier,
    ClassifierMode,
    CrawlResult,
    LimitedDistanceStrategy,
    SimpleStrategy,
    SimulationConfig,
    Simulator,
    TimingModel,
    strategy_by_name,
)
from repro.experiments import (
    Dataset,
    build_dataset,
    load_or_build_dataset,
    run_strategies,
    run_strategy,
)
from repro.graphgen import (
    DatasetProfile,
    HtmlSynthesizer,
    generate_universe,
    japanese_profile,
    profile_by_name,
    thai_profile,
)
from repro.webspace import CrawlLog, LinkDB, PageRecord, VirtualWebSpace

__version__ = "1.0.0"

__all__ = [
    # charset
    "Language",
    "detect_charset",
    "DetectionResult",
    "CompositeCharsetDetector",
    "parse_meta_charset",
    "language_of_charset",
    # webspace
    "PageRecord",
    "CrawlLog",
    "LinkDB",
    "VirtualWebSpace",
    # graphgen
    "DatasetProfile",
    "thai_profile",
    "japanese_profile",
    "profile_by_name",
    "generate_universe",
    "HtmlSynthesizer",
    # core
    "Simulator",
    "SimulationConfig",
    "CrawlResult",
    "Classifier",
    "ClassifierMode",
    "TimingModel",
    "BreadthFirstStrategy",
    "SimpleStrategy",
    "LimitedDistanceStrategy",
    "strategy_by_name",
    # experiments
    "Dataset",
    "build_dataset",
    "load_or_build_dataset",
    "run_strategy",
    "run_strategies",
    "__version__",
]

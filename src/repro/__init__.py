"""repro — reproduction of "Simulation Study of Language Specific Web
Crawling" (Somboonviwat, Tamura, Kitsuregawa; DEWS/ICDE 2005).

The package implements the paper's full stack from scratch:

- a composite charset detector and META parsing for language
  identification (:mod:`repro.charset`),
- a trace-driven web crawling simulator (:mod:`repro.core`,
  :mod:`repro.webspace`),
- the crawl strategies under study — breadth-first, hard/soft-focused,
  and (non-)prioritized limited-distance (:mod:`repro.core.strategies`),
- a synthetic web-space generator replacing the unavailable 2004 crawl
  logs (:mod:`repro.graphgen`),
- and the experiment harness regenerating every table and figure of the
  paper's evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro import CrawlRequest, build_dataset, run_crawl, thai_profile

    dataset = build_dataset(thai_profile().scaled(0.1))
    result = run_crawl(CrawlRequest(dataset=dataset, strategy="soft-focused"))
    print(result.coverage, result.summary.max_queue_size)

``run_crawl`` is the session API: a :class:`CrawlRequest` names the
workload, a :class:`SessionConfig` shapes the run, and the same pair
drives the sequential and the partitioned engines alike
(:mod:`repro.api`), with optional telemetry from :mod:`repro.obs`.
Long-lived, budget-stepped crawls use :class:`CrawlSession` directly or
the session server in :mod:`repro.serve`.
"""

from repro.adversary import (
    AdversarialWebSpace,
    AdversaryModel,
    AdversaryProfile,
    DefenseConfig,
    load_adversary_model,
)
from repro.api import run_crawl
from repro.charset import (
    CompositeCharsetDetector,
    DetectionResult,
    Language,
    detect_charset,
    language_of_charset,
    parse_meta_charset,
)
from repro.core import (
    BreadthFirstStrategy,
    Classifier,
    ClassifierMode,
    CrawlEngine,
    CrawlReport,
    CrawlRequest,
    CrawlResult,
    CrawlSession,
    EngineHook,
    EngineStage,
    LimitedDistanceStrategy,
    ParallelConfig,
    ParallelCrawlSimulator,
    ParallelResult,
    PartitionMode,
    SessionConfig,
    SessionStatus,
    SimpleStrategy,
    SimulationConfig,
    Simulator,
    TimingModel,
    report_payload,
    available_strategies,
    get_strategy,
    register_strategy,
    strategy_by_name,
)
from repro.exec import DatasetSpec, RunSpec, SweepExecutor
from repro.experiments import (
    Dataset,
    build_dataset,
    load_or_build_dataset,
    run_strategies,
    run_strategy,
)
from repro.faults import (
    BreakerPolicy,
    FaultModel,
    FaultProfile,
    HostOutage,
    ResilienceConfig,
    RetryPolicy,
    load_fault_model,
)
from repro.graphgen import (
    DatasetProfile,
    HtmlSynthesizer,
    generate_universe,
    japanese_profile,
    profile_by_name,
    thai_profile,
)
from repro.obs import (
    EventBus,
    Instrumentation,
    JsonlTraceWriter,
    MetricsRegistry,
    SpanEvent,
    read_trace,
)
from repro.webspace import CrawlLog, LinkDB, PageRecord, VirtualWebSpace

__version__ = "1.0.0"

__all__ = [
    # charset
    "Language",
    "detect_charset",
    "DetectionResult",
    "CompositeCharsetDetector",
    "parse_meta_charset",
    "language_of_charset",
    # webspace
    "PageRecord",
    "CrawlLog",
    "LinkDB",
    "VirtualWebSpace",
    # graphgen
    "DatasetProfile",
    "thai_profile",
    "japanese_profile",
    "profile_by_name",
    "generate_universe",
    "HtmlSynthesizer",
    # session API
    "run_crawl",
    "CrawlRequest",
    "CrawlSession",
    "SessionConfig",
    "SessionStatus",
    "report_payload",
    # core
    "Simulator",
    "SimulationConfig",
    "CrawlResult",
    "CrawlReport",
    "ParallelCrawlSimulator",
    "ParallelConfig",
    "ParallelResult",
    "PartitionMode",
    "Classifier",
    "ClassifierMode",
    "TimingModel",
    "BreadthFirstStrategy",
    "SimpleStrategy",
    "LimitedDistanceStrategy",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "strategy_by_name",
    "CrawlEngine",
    "EngineHook",
    "EngineStage",
    # adversary + defenses
    "AdversaryProfile",
    "AdversaryModel",
    "AdversarialWebSpace",
    "DefenseConfig",
    "load_adversary_model",
    # faults + resilience
    "FaultProfile",
    "FaultModel",
    "HostOutage",
    "load_fault_model",
    "RetryPolicy",
    "BreakerPolicy",
    "ResilienceConfig",
    # observability
    "Instrumentation",
    "MetricsRegistry",
    "EventBus",
    "SpanEvent",
    "JsonlTraceWriter",
    "read_trace",
    # sweep executor
    "SweepExecutor",
    "DatasetSpec",
    "RunSpec",
    # experiments
    "Dataset",
    "build_dataset",
    "load_or_build_dataset",
    "run_strategy",
    "run_strategies",
    "__version__",
]

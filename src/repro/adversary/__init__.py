"""Content-level adversaries over the virtual web space.

``repro.faults`` models *infrastructure* failure — hosts that 503, time
out or disappear.  This package models the web itself misbehaving:
spider traps that sprout unbounded synthetic subtrees, 301 chains (some
of them loops), soft-404s that answer 200 with boilerplate, hostile
hosts that churn session-id aliases for the same content, and pages
whose declared charset lies about their bytes.

The layering mirrors :class:`~repro.faults.FaultyWebSpace`:
:class:`AdversarialWebSpace` wraps a
:class:`~repro.webspace.virtualweb.VirtualWebSpace` behind the unmodified
``fetch`` interface, and every decision is a keyed hash of a stable
token, so the same seed replays the same adversarial web and survives
checkpoint/resume.

The matching engine-side countermeasures live in
:mod:`repro.adversary.defense` (:class:`DefenseConfig` /
:class:`DefensePolicy`) and plug into the gate/extract stages of
:class:`~repro.core.engine.CrawlEngine`.
"""

from repro.adversary.defense import DefenseConfig, DefensePolicy, shingle_hash
from repro.adversary.model import (
    AdversaryModel,
    AdversaryProfile,
    load_adversary_model,
)
from repro.adversary.web import AdversarialWebSpace

__all__ = [
    "AdversarialWebSpace",
    "AdversaryModel",
    "AdversaryProfile",
    "DefenseConfig",
    "DefensePolicy",
    "load_adversary_model",
    "shingle_hash",
]

"""Engine-side countermeasures against adversarial webs.

:class:`DefenseConfig` is the typed, frozen knob set that rides on
:class:`~repro.core.session.SessionConfig`; :class:`DefensePolicy` is
the per-run mutable state the engine consults:

* **Trap containment** — ``max_url_depth`` drops absurdly deep URLs at
  the gate stage; ``host_page_budget`` stops fetching a host after it
  has served that many *consecutive* irrelevant pages (a relevant page
  resets the streak).  Both target the defining trap property (one
  host, an unbounded off-topic stream) without needing to *recognise*
  traps.
* **Alias canonicalization** — ``strip_session_ids`` rewrites
  ``?sid=…``-style URLs to their base at the gate, so a churning-alias
  host costs one fetch per distinct page instead of one per alias.
* **Redirect discipline** — ``max_redirect_hops`` caps chain following
  and arms loop detection.  Unset, the engine follows naively up to a
  large safety cap with no loop memory (the defenses-off baseline).
* **Duplicate collapsing** — ``fingerprint_dupes`` fingerprints each
  page (a cheap min-hash over byte shingles when bodies exist, the
  record identity otherwise) and suppresses the outlinks of any page
  whose content was already seen — session aliases stop multiplying.
* **Soft-404 down-weighting** — once a host has served
  ``soft404_threshold`` irrelevant pages with repeating fingerprints,
  further such pages stop contributing links.

All decisions are pure functions of crawl-visible state, so a resumed
crawl behaves identically once :meth:`DefensePolicy.restore` reloads the
fingerprint set and per-host counters from a checkpoint.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigError
from repro.webspace.virtualweb import FetchResponse

#: Chain-following cap when no defense limit is configured: generous
#: enough that every honest chain resolves, small enough that a loop
#: cannot wedge the engine — it just burns 25 fetches, which is the
#: defenses-off degradation the survival sweep measures.
NAIVE_REDIRECT_CAP = 25

_SHINGLE_WINDOW = 32
_SHINGLE_STRIDE = 16

#: Query keys a canonicalizing gate treats as session identifiers.  The
#: classic crawler defense against churning-alias hosts: the content is
#: keyed by the path, so the query is noise and the URL is rewritten to
#: its base before scheduling dedup.
SESSION_QUERY_KEYS = frozenset({"sid", "sessionid", "session", "phpsessid", "jsessionid"})


def shingle_hash(body: bytes) -> str:
    """A cheap shingle fingerprint of ``body``.

    Four-bucket min-hash over CRC32s of overlapping 32-byte windows:
    bodies differing only by small insertions (a title, a session id
    echoed into the page) usually keep 3–4 minima and collide, while
    genuinely different pages do not.  Costs one CRC per 16 bytes.
    """
    if len(body) <= _SHINGLE_WINDOW:
        return f"s:{zlib.crc32(body):08x}"
    minima = [0xFFFFFFFF] * 4
    for start in range(0, len(body) - _SHINGLE_WINDOW + 1, _SHINGLE_STRIDE):
        value = zlib.crc32(body[start : start + _SHINGLE_WINDOW])
        bucket = value & 3
        if value < minima[bucket]:
            minima[bucket] = value
    return "s:" + ".".join(f"{m:08x}" for m in minima)


def url_depth(url: str) -> int:
    """Path-segment depth of an absolute URL (``http://h/a/b`` → 2)."""
    depth = url.count("/") - 2
    return depth if depth > 0 else 0


@dataclass(frozen=True, slots=True)
class DefenseConfig:
    """Engine defense knobs, all off by default.

    An all-default config is inert: the engine builds no policy for it
    and the gate/extract stages stay byte-identical to a defenseless
    run (pinned by the golden suite).
    """

    max_url_depth: int | None = None
    #: Per-host budget of *consecutive* pages judged irrelevant: once a
    #: host serves this many in an unbroken run, it is refused at the
    #: gate.  A relevant page resets its host's streak, which is what
    #: makes the budget trap containment rather than collateral damage —
    #: a trap subtree or boilerplate mill is an unbounded irrelevant
    #: stream, while an honest mixed-language host keeps resetting.
    host_page_budget: int | None = None
    max_redirect_hops: int | None = None
    fingerprint_dupes: bool = False
    soft404_threshold: int | None = None
    #: Rewrite session-id query URLs (``?sid=…``) to their base at the
    #: gate, before the fetch: aliases of an already-crawled page are
    #: skipped outright, and the first alias of a page is crawled under
    #: its canonical URL.
    strip_session_ids: bool = False

    def __post_init__(self) -> None:
        for name in ("max_url_depth", "host_page_budget", "max_redirect_hops"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigError(f"DefenseConfig.{name} must be >= 1, got {value!r}")
        if self.soft404_threshold is not None and self.soft404_threshold < 1:
            raise ConfigError(
                f"DefenseConfig.soft404_threshold must be >= 1, got {self.soft404_threshold!r}"
            )

    @property
    def enabled(self) -> bool:
        """True when any knob is armed (the engine builds a policy)."""
        return (
            self.max_url_depth is not None
            or self.host_page_budget is not None
            or self.max_redirect_hops is not None
            or self.fingerprint_dupes
            or self.soft404_threshold is not None
            or self.strip_session_ids
        )

    @classmethod
    def standard(cls) -> "DefenseConfig":
        """The defenses-on preset of the survival sweep and CLI."""
        return cls(
            max_url_depth=4,
            host_page_budget=25,
            max_redirect_hops=5,
            fingerprint_dupes=True,
            soft404_threshold=3,
            strip_session_ids=True,
        )

    def to_json_dict(self) -> dict:
        return {
            "max_url_depth": self.max_url_depth,
            "host_page_budget": self.host_page_budget,
            "max_redirect_hops": self.max_redirect_hops,
            "fingerprint_dupes": self.fingerprint_dupes,
            "soft404_threshold": self.soft404_threshold,
            "strip_session_ids": self.strip_session_ids,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "DefenseConfig":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown defense config keys: {sorted(unknown)}")
        return cls(**dict(data))


class DefensePolicy:
    """Mutable defense state consulted by the engine's hot loop.

    One instance per run.  The engine calls :meth:`admit` at the gate
    stage (before spending a fetch), :meth:`suppress_links` +
    :meth:`note_page` after classification.  Everything is
    checkpointable: :meth:`snapshot` captures the fingerprint set and
    per-host counters so a resumed crawl makes identical decisions.
    """

    def __init__(self, config: DefenseConfig) -> None:
        self.config = config
        self._host_pages: dict[str, int] = {}
        self._fingerprints: set[str] = set()
        self._boiler: dict[str, int] = {}
        self.stats: dict[str, int] = {
            "depth_skips": 0,
            "host_budget_skips": 0,
            "duplicates_collapsed": 0,
            "soft404_link_drops": 0,
            "alias_skips": 0,
        }
        self._needs_fingerprint = config.fingerprint_dupes or (
            config.soft404_threshold is not None
        )

    # -- gate stage ----------------------------------------------------------

    def canonicalize(self, url: str) -> str | None:
        """The session-stripped form of ``url``, or None if unchanged.

        Only fires on URLs whose query leads with a known session key
        (:data:`SESSION_QUERY_KEYS`); organic URLs carry no query, so
        the clean path never pays more than one ``"?" in url`` check.
        """
        if not self.config.strip_session_ids or "?" not in url:
            return None
        base, _, query = url.partition("?")
        if query.split("=", 1)[0].lower() not in SESSION_QUERY_KEYS:
            return None
        return base

    def admit(self, url: str, host: str) -> bool:
        """Whether the engine should spend a fetch on ``url`` at all."""
        config = self.config
        if config.max_url_depth is not None and url_depth(url) > config.max_url_depth:
            self.stats["depth_skips"] += 1
            return False
        if (
            config.host_page_budget is not None
            and self._host_pages.get(host, 0) >= config.host_page_budget
        ):
            self.stats["host_budget_skips"] += 1
            return False
        return True

    # -- post-classify stage -------------------------------------------------

    @staticmethod
    def fingerprint(response: FetchResponse) -> str:
        """Content identity of a response, cheapest faithful signal first."""
        if response.body is not None:
            return shingle_hash(response.body)
        if response.record is not None:
            return f"r:{response.record.url}"
        return f"m:{response.status}:{response.charset}:{response.size}"

    def suppress_links(self, response: FetchResponse, host: str, relevant: bool) -> bool:
        """Whether this page's outlinks should be discarded.

        Also maintains the fingerprint set and per-host boilerplate
        counts, so it must be called exactly once per recorded step.
        """
        if not self._needs_fingerprint:
            return False
        fingerprint = self.fingerprint(response)
        duplicate = fingerprint in self._fingerprints
        if duplicate:
            self._boiler[host] = self._boiler.get(host, 0) + 1
        else:
            self._fingerprints.add(fingerprint)
        suppress = False
        if duplicate and self.config.fingerprint_dupes:
            self.stats["duplicates_collapsed"] += 1
            suppress = True
        threshold = self.config.soft404_threshold
        if (
            threshold is not None
            and not relevant
            and duplicate
            and self._boiler.get(host, 0) >= threshold
        ):
            self.stats["soft404_link_drops"] += 1
            suppress = True
        return suppress

    def note_page(self, host: str, relevant: bool) -> None:
        """Advance a host's consecutive-irrelevant streak.

        A relevant page resets the streak to zero (see
        :attr:`DefenseConfig.host_page_budget`): a trap subtree or
        boilerplate mill is an unbroken irrelevant stream and trips the
        budget fast; an honest mixed host keeps resetting it.
        """
        if relevant:
            if host in self._host_pages:
                self._host_pages[host] = 0
        else:
            self._host_pages[host] = self._host_pages.get(host, 0) + 1

    # -- checkpoint support --------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "host_pages": dict(self._host_pages),
            "fingerprints": sorted(self._fingerprints),
            "boiler": dict(self._boiler),
            "stats": dict(self.stats),
        }

    def restore(self, state: Mapping) -> None:
        self._host_pages = dict(state["host_pages"])
        self._fingerprints = set(state["fingerprints"])
        self._boiler = dict(state["boiler"])
        self.stats.update(state.get("stats", {}))

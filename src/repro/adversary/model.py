"""Seeded adversary decisions: which hosts trap, which URLs lie.

Follows the :class:`~repro.faults.FaultModel` design exactly: every
decision is a pure function of ``(seed, kind, token)`` via a keyed
blake2b draw, so two models with the same seed agree on every trap
host, redirect chain and charset lie they would ever produce, in any
query order.  The model keeps observability tallies (``injected``) but
those never feed back into decisions — the only mutable adversary state
lives in :class:`~repro.adversary.web.AdversarialWebSpace` (the global
fetch index and the redirect-chain target map), which the checkpoint
layer snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path
from typing import Mapping

from repro.charset.languages import canonical_charset
from repro.errors import ConfigError

#: Declared-charset swaps of the mislabelling scenario: each Thai
#: charset lies as a Japanese one and vice versa (paper §3 — the exact
#: confusion a charset-trusting classifier cannot see through, while a
#: byte-level detector can).
MISLABEL_MAP: dict[str, str] = {
    "TIS-620": "EUC-JP",
    "EUC-JP": "TIS-620",
    "WINDOWS-874": "SHIFT_JIS",
    "SHIFT_JIS": "WINDOWS-874",
    "ISO-8859-11": "ISO-2022-JP",
    "ISO-2022-JP": "ISO-8859-11",
}

_RATE_FIELDS = (
    "trap_host_rate",
    "redirect_rate",
    "redirect_loop_rate",
    "soft404_rate",
    "alias_host_rate",
    "mislabel_rate",
)


def _bare_host(site: str) -> str:
    """Strip the port from a site key (profiles name hosts portless)."""
    return site.rsplit(":", 1)[0] if ":" in site else site


@dataclass(frozen=True, slots=True)
class AdversaryProfile:
    """Knobs of one adversarial web, all off by default.

    An all-default profile is *empty*: :class:`AdversarialWebSpace`
    passes every fetch through untouched, which is the clean-path
    byte-identity guarantee the golden suite pins.

    Attributes:
        trap_host_rate: fraction of hosts that are spider traps — their
            pages link into an unbounded synthetic ``/cal/`` subtree.
        trap_hosts: explicitly trapped hosts (bare names, no port),
            unioned with the seeded draw.
        trap_fanout: synthetic child links per trap page.
        redirect_rate: fraction of known URLs served as the head of a
            301 chain instead of their content.
        redirect_hops: interior hops per chain (the content arrives
            after ``redirect_hops + 1`` fetches — or never, for loops).
        redirect_loop_rate: fraction of chains that loop back to their
            first hop instead of terminating.
        soft404_rate: fraction of dead URLs answered with a 200-OK
            boilerplate page (plus a few equally dead outlinks) instead
            of an honest 404.
        soft404_fanout: synthetic outlinks per soft-404 page.
        alias_host_rate: fraction of hosts that are crawler-hostile —
            links *into* them are rewritten with churning per-referrer
            ``?sid=`` session aliases of the same content.
        alias_hosts: explicitly hostile hosts, unioned with the draw.
        mislabel_rate: fraction of charset-declaring pages whose
            declaration is swapped per :data:`MISLABEL_MAP` while the
            body bytes keep the true encoding.
    """

    trap_host_rate: float = 0.0
    trap_hosts: tuple[str, ...] = ()
    trap_fanout: int = 3
    redirect_rate: float = 0.0
    redirect_hops: int = 3
    redirect_loop_rate: float = 0.0
    soft404_rate: float = 0.0
    soft404_fanout: int = 2
    alias_host_rate: float = 0.0
    alias_hosts: tuple[str, ...] = ()
    mislabel_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"AdversaryProfile.{name} must be in [0, 1], got {value!r}")
        if self.trap_fanout < 1:
            raise ConfigError("trap_fanout must be >= 1")
        if self.soft404_fanout < 0:
            raise ConfigError("soft404_fanout must be >= 0")
        if self.redirect_hops < 1:
            raise ConfigError("redirect_hops must be >= 1")

    @property
    def is_empty(self) -> bool:
        """True when no scenario can ever fire."""
        return (
            all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)
            and not self.trap_hosts
            and not self.alias_hosts
        )

    def to_json_dict(self) -> dict:
        return {
            "trap_host_rate": self.trap_host_rate,
            "trap_hosts": list(self.trap_hosts),
            "trap_fanout": self.trap_fanout,
            "redirect_rate": self.redirect_rate,
            "redirect_hops": self.redirect_hops,
            "redirect_loop_rate": self.redirect_loop_rate,
            "soft404_rate": self.soft404_rate,
            "soft404_fanout": self.soft404_fanout,
            "alias_host_rate": self.alias_host_rate,
            "alias_hosts": list(self.alias_hosts),
            "mislabel_rate": self.mislabel_rate,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "AdversaryProfile":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown adversary profile keys: {sorted(unknown)}")
        kwargs = dict(data)
        for name in ("trap_hosts", "alias_hosts"):
            if name in kwargs:
                kwargs[name] = tuple(kwargs[name])
        return cls(**kwargs)


class AdversaryModel:
    """Seeded, stateless-by-construction adversary decisions.

    Args:
        profile: the :class:`AdversaryProfile` in force.
        seed: hash key; same seed ⇒ identical adversarial web.
    """

    def __init__(self, profile: AdversaryProfile | None = None, seed: int = 0) -> None:
        self.profile = profile or AdversaryProfile()
        self.seed = seed
        self._key = blake2b(f"lswc-adversary:{seed}".encode(), digest_size=16).digest()
        self._trap_hosts = frozenset(self.profile.trap_hosts)
        self._alias_hosts = frozenset(self.profile.alias_hosts)
        self.injected: dict[str, int] = {
            "trap_pages": 0,
            "trap_links": 0,
            "redirects": 0,
            "soft404": 0,
            "alias": 0,
            "mislabel": 0,
        }

    # -- derived randomness --------------------------------------------------

    def _unit(self, kind: str, token: str) -> float:
        """A deterministic uniform draw in [0, 1) for (seed, kind, token)."""
        digest = blake2b(f"{kind}:{token}".encode(), digest_size=8, key=self._key).digest()
        return int.from_bytes(digest, "big") / 2**64

    def token_hex(self, kind: str, token: str, length: int = 8) -> str:
        """A deterministic hex token for minting synthetic URLs."""
        digest = blake2b(f"{kind}:{token}".encode(), digest_size=8, key=self._key)
        return digest.hexdigest()[:length]

    # -- decisions -----------------------------------------------------------

    def is_trap_host(self, host: str) -> bool:
        bare = _bare_host(host)
        if bare in self._trap_hosts:
            return True
        rate = self.profile.trap_host_rate
        return bool(rate) and self._unit("traphost", bare) < rate

    def is_alias_host(self, host: str) -> bool:
        bare = _bare_host(host)
        if bare in self._alias_hosts:
            return True
        rate = self.profile.alias_host_rate
        return bool(rate) and self._unit("aliashost", bare) < rate

    def redirects(self, url: str) -> bool:
        rate = self.profile.redirect_rate
        return bool(rate) and self._unit("redirect", url) < rate

    def chain_loops(self, token: str) -> bool:
        rate = self.profile.redirect_loop_rate
        return bool(rate) and self._unit("rloop", token) < rate

    def soft404(self, url: str) -> bool:
        rate = self.profile.soft404_rate
        return bool(rate) and self._unit("soft404", url) < rate

    def mislabels(self, url: str) -> bool:
        rate = self.profile.mislabel_rate
        return bool(rate) and self._unit("mislabel", url) < rate

    @staticmethod
    def mislabel_for(charset: str) -> str | None:
        """The lying declaration for ``charset``, or None if unmapped."""
        canonical = canonical_charset(charset)
        if canonical is None:
            return None
        return MISLABEL_MAP.get(canonical)

    def trap_size(self, url: str) -> int:
        """Deterministic byte size of a synthetic trap page."""
        return 1200 + int(self._unit("trapsize", url) * 2800)

    # -- serialisation -------------------------------------------------------

    def to_json_dict(self) -> dict:
        return {"seed": self.seed, "profile": self.profile.to_json_dict()}

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "AdversaryModel":
        unknown = set(data) - {"seed", "profile"}
        if unknown:
            raise ConfigError(f"unknown adversary model keys: {sorted(unknown)}")
        return cls(
            profile=AdversaryProfile.from_json_dict(data.get("profile", {})),
            seed=data.get("seed", 0),
        )


def load_adversary_model(path: str | Path) -> AdversaryModel:
    """Read an adversary profile JSON file (the ``--adversary`` payload).

    Accepts either the full model shape (``{"seed": ..., "profile":
    {...}}``) or a bare profile object.
    """
    import json

    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigError(f"cannot read adversary profile {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigError(f"{path}: adversary profile must be a JSON object")
    if "profile" in data or data.keys() <= {"seed", "profile"}:
        return AdversaryModel.from_json_dict(data)
    return AdversaryModel(profile=AdversaryProfile.from_json_dict(data))

"""The adversarial web space: a lying layer over the virtual web.

:class:`AdversarialWebSpace` wraps a
:class:`~repro.webspace.virtualweb.VirtualWebSpace` (mirroring
:class:`~repro.faults.FaultyWebSpace`) and rewrites traffic according to
an :class:`~repro.adversary.model.AdversaryModel`:

* **Spider traps** — pages on a trap host gain entry links into a
  synthetic ``/cal/…`` subtree; every trap page answers 200-OK with
  ``trap_fanout`` deeper trap children, so the subtree is unbounded and
  only engine policy (URL depth, host budget) can contain it.
* **Redirect chains** — a seeded fraction of known URLs answer 301 into
  a ``/r/<token>/<i>`` hop chain; the content arrives at the end of the
  chain, or never for looping chains.
* **Soft-404s** — a seeded fraction of dead URLs answer 200-OK with
  per-host boilerplate and a few more dead links, instead of an honest
  404.
* **Session-id aliases** — outlinks into a hostile host are rewritten
  with a per-referrer ``?sid=`` alias; fetching an alias serves the
  canonical page's content under the alias URL.
* **Charset mislabelling** — a seeded fraction of charset-declaring
  pages swap their declaration (TIS-620 ⇄ EUC-JP, …) while the body
  bytes keep the true encoding.

Reserved namespaces cannot collide with organic URLs: the generator only
mints ``/`` and ``/p/<n>.html`` paths and never query strings, so
``/cal/``, ``/r/`` and ``?sid=`` are unambiguous adversary territory.

Determinism: every minted URL, chain length and lie is a keyed hash of
stable tokens.  The only mutable state is the fetch index, the
redirect-chain target map (hop tokens are hashes, not inverses) and the
tallies — all snapshot/restored through the checkpoint layer.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from repro.adversary.model import AdversaryModel
from repro.errors import ConfigError
from repro.urlkit.normalize import url_site_key
from repro.urlkit.parse import parse_url
from repro.webspace.page import HTML_CONTENT_TYPE
from repro.webspace.virtualweb import FetchResponse, VirtualWebSpace

#: Reserved first path segment of synthetic trap-subtree URLs.
TRAP_PREFIX = "/cal/"

#: Reserved first path segment of redirect-chain hop URLs.
HOP_PREFIX = "/r/"

#: Query prefix of a session-id alias.
ALIAS_QUERY = "sid="

#: Fixed size of a soft-404 response: constant so that even body-less
#: runs can fingerprint the boilerplate (status, charset, size) and
#: collapse it.
SOFT404_SIZE = 2048

#: Entry links planted per organic page of a trap host.
TRAP_ENTRY_LINKS = 2


def _soft404_body(host: str) -> bytes:
    """The per-host boilerplate body: identical for every dead URL of a
    host, which is exactly what makes soft-404s fingerprintable."""
    return (
        "<html><head><title>Page not found</title></head><body>"
        f"<h1>Sorry!</h1><p>The page you requested on {host} has moved or "
        "no longer exists. Please visit our homepage to find what you are "
        "looking for.</p></body></html>"
    ).encode("ascii")


def _trap_body(url: str, outlinks: tuple[str, ...]) -> bytes:
    anchors = "".join(f'<a href="{link}">archive</a> ' for link in outlinks)
    return (
        f"<html><head><title>Calendar</title></head><body><h1>{url}</h1>"
        f"{anchors}</body></html>"
    ).encode("ascii")


def _site_root(url: str) -> str:
    """``http://host`` of an absolute URL (cheap, no full parse)."""
    end = url.find("/", url.find("://") + 3)
    return url if end < 0 else url[:end]


class AdversarialWebSpace:
    """A :class:`VirtualWebSpace` with an :class:`AdversaryModel` in front.

    Drop-in for every place the engine touches a web space (``fetch``,
    ``crawl_log``, ``fetch_count``, ``in``).  With an empty profile the
    wrapper forwards every fetch untouched — byte-identity with the bare
    web space is pinned by the golden differential and the property
    suite.

    ``journal`` (opt-in) records every adversarial intervention as
    ``(fetch_index, url, scenario)`` tuples for the determinism tests.
    """

    def __init__(
        self,
        web: VirtualWebSpace,
        model: AdversaryModel,
        record_journal: bool = False,
    ) -> None:
        self._web = web
        self.model = model
        self.fetch_index = 0
        self._empty = model.profile.is_empty
        #: hop token -> the URL whose content the chain eventually serves.
        self._redirect_targets: dict[str, str] = {}
        self.journal: list[tuple[int, str, str]] | None = [] if record_journal else None

    @property
    def web(self) -> VirtualWebSpace:
        return self._web

    @property
    def crawl_log(self):
        return self._web.crawl_log

    @property
    def fetch_count(self) -> int:
        return self._web.fetch_count

    @property
    def synthesizes_bodies(self) -> bool:
        return getattr(self._web, "synthesizes_bodies", False)

    def __contains__(self, url: str) -> bool:
        return url in self._web

    # -- fetch ---------------------------------------------------------------

    def fetch(self, url: str) -> FetchResponse:
        """Fetch through the adversary; never raises for adversarial URLs."""
        self.fetch_index += 1
        if self._empty:
            return self._web.fetch(url)
        split = parse_url(url)
        host = split.site_key
        path = split.path
        if path.startswith(HOP_PREFIX):
            return self._fetch_hop(url, split.scheme, host, path)
        if split.query.startswith(ALIAS_QUERY) and self.model.is_alias_host(host):
            return self._fetch_alias(url, split)
        if path.startswith(TRAP_PREFIX) and self.model.is_trap_host(host):
            return self._fetch_trap(url)
        if self.model.redirects(url) and url in self._web:
            return self._start_chain(url, host)
        return self._serve(url, host)

    def _resolve(self, url: str, host: str) -> FetchResponse:
        """Serve ``url`` without re-entering chain/alias dispatch — used
        when a chain or alias bottoms out on a canonical URL (which may
        itself be a trap page)."""
        path_start = url.find("/", url.find("://") + 3)
        path = url[path_start:] if path_start >= 0 else "/"
        if path.startswith(TRAP_PREFIX) and self.model.is_trap_host(host):
            return self._fetch_trap(url)
        return self._serve(url, host)

    # -- redirect chains -----------------------------------------------------

    def _hop_url(self, origin: str, token: str, hop: int) -> str:
        return f"{_site_root(origin)}{HOP_PREFIX}{token}/{hop}"

    def _start_chain(self, url: str, host: str) -> FetchResponse:
        token = self.model.token_hex("rchain", url, 12)
        self._redirect_targets[token] = url
        self.model.injected["redirects"] += 1
        self._journal(url, "redirect")
        return FetchResponse(
            url=url,
            status=301,
            content_type=HTML_CONTENT_TYPE,
            charset=None,
            outlinks=(),
            size=0,
            redirect_to=self._hop_url(url, token, 1),
            adversary="redirect",
        )

    def _fetch_hop(self, url: str, scheme: str, host: str, path: str) -> FetchResponse:
        segments = path.split("/")  # ["", "r", token, hop]
        token = segments[2] if len(segments) > 2 else ""
        origin = self._redirect_targets.get(token)
        if origin is None or len(segments) != 4 or not segments[3].isdigit():
            # Not a chain this run minted (or a mangled hop): a dead URL.
            return self._web.fetch(url)
        hop = int(segments[3])
        if hop < self.model.profile.redirect_hops:
            target = self._hop_url(origin, token, hop + 1)
        elif self.model.chain_loops(token):
            target = self._hop_url(origin, token, 1)
        else:
            # End of the chain: the content finally arrives, served under
            # the canonical URL (what a live crawler's final GET sees).
            return self._resolve(origin, url_site_key(origin))
        return FetchResponse(
            url=url,
            status=301,
            content_type=HTML_CONTENT_TYPE,
            charset=None,
            outlinks=(),
            size=0,
            redirect_to=target,
            adversary="redirect",
        )

    # -- aliases -------------------------------------------------------------

    def _fetch_alias(self, url: str, split) -> FetchResponse:
        canonical = url.partition("?")[0]
        response = self._resolve(canonical, split.site_key)
        self.model.injected["alias"] += 1
        self._journal(url, "alias")
        # Same content, different URL — the defining property of a
        # session alias.  The record stays the canonical page's, which is
        # what content fingerprinting keys on.
        return replace(response, url=url, adversary="alias")

    # -- spider traps --------------------------------------------------------

    def _fetch_trap(self, url: str) -> FetchResponse:
        fanout = self.model.profile.trap_fanout
        base = url.rstrip("/")
        children = tuple(
            f"{base}/{self.model.token_hex('trapchild', f'{url}#{k}')}" for k in range(fanout)
        )
        self.model.injected["trap_pages"] += 1
        self.model.injected["trap_links"] += fanout
        self._journal(url, "trap")
        body = _trap_body(url, children) if self.synthesizes_bodies else None
        return FetchResponse(
            url=url,
            status=200,
            content_type=HTML_CONTENT_TYPE,
            charset=None,
            outlinks=children,
            size=self.model.trap_size(url),
            body=body,
            adversary="trap",
        )

    def _trap_entries(self, url: str) -> tuple[str, ...]:
        root = _site_root(url)
        count = min(TRAP_ENTRY_LINKS, self.model.profile.trap_fanout)
        return tuple(
            f"{root}{TRAP_PREFIX}{self.model.token_hex('traproot', f'{url}#{k}')}"
            for k in range(count)
        )

    # -- soft 404s -----------------------------------------------------------

    def _soft404(self, url: str, host: str) -> FetchResponse:
        fanout = self.model.profile.soft404_fanout
        base = url.rstrip("/")
        outlinks = tuple(
            f"{base}/{self.model.token_hex('soft404link', f'{url}#{k}')}.html"
            for k in range(fanout)
        )
        self.model.injected["soft404"] += 1
        self._journal(url, "soft404")
        body = _soft404_body(host) if self.synthesizes_bodies else None
        return FetchResponse(
            url=url,
            status=200,
            content_type=HTML_CONTENT_TYPE,
            charset=None,
            outlinks=outlinks,
            size=SOFT404_SIZE,
            body=body,
            adversary="soft404",
        )

    # -- organic pages -------------------------------------------------------

    def _serve(self, url: str, host: str) -> FetchResponse:
        """The (possibly rewritten) organic response for ``url``."""
        response = self._web.fetch(url)
        if not (response.ok and response.is_html):
            if response.record is None and self.model.soft404(url):
                return self._soft404(url, host)
            return response
        model = self.model
        outlinks = response.outlinks
        changed: dict[str, object] = {}
        if model.is_trap_host(host):
            entries = self._trap_entries(url)
            model.injected["trap_links"] += len(entries)
            self._journal(url, "trap-entry")
            changed["outlinks"] = outlinks + entries
            outlinks = changed["outlinks"]  # type: ignore[assignment]
        if outlinks and (model.profile.alias_host_rate or model.profile.alias_hosts):
            rewritten = self._alias_links(url, outlinks)
            if rewritten is not None:
                changed["outlinks"] = rewritten
        if response.charset is not None and model.mislabels(url):
            lie = model.mislabel_for(response.charset)
            if lie is not None:
                changed["charset"] = lie
                if response.body is not None:
                    changed["body"] = response.body.replace(
                        f"charset={response.charset}".encode("ascii"),
                        f"charset={lie}".encode("ascii"),
                    )
                model.injected["mislabel"] += 1
                self._journal(url, "mislabel")
                changed["adversary"] = "mislabel"
        if not changed:
            return response
        return replace(response, **changed)  # type: ignore[arg-type]

    def _alias_links(self, referrer: str, outlinks: tuple[str, ...]) -> tuple[str, ...] | None:
        """Rewrite hostile-host links with per-referrer session aliases."""
        model = self.model
        rewritten = None
        for index, link in enumerate(outlinks):
            if "?" in link or not model.is_alias_host(url_site_key(link)):
                continue
            if rewritten is None:
                rewritten = list(outlinks)
            sid = model.token_hex("alias", f"{referrer}->{link}", 12)
            rewritten[index] = f"{link}?{ALIAS_QUERY}{sid}"
        return None if rewritten is None else tuple(rewritten)

    def _journal(self, url: str, scenario: str) -> None:
        if self.journal is not None:
            self.journal.append((self.fetch_index, url, scenario))

    # -- checkpoint support --------------------------------------------------

    def snapshot(self) -> dict:
        """Adversary state: enough to replay the identical lying web."""
        return {
            "seed": self.model.seed,
            "fetch_index": self.fetch_index,
            "redirects": dict(self._redirect_targets),
            "injected": dict(self.model.injected),
        }

    def restore(self, state: Mapping) -> None:
        if state.get("seed") != self.model.seed:
            raise ConfigError(
                f"checkpoint adversary seed {state.get('seed')!r} does not match "
                f"the configured model seed {self.model.seed!r}"
            )
        self.fetch_index = state["fetch_index"]
        self._redirect_targets = dict(state["redirects"])
        self.model.injected.update(state.get("injected", {}))

"""Crawl-log analysis: the paper's §3 evidence, made quantitative.

Before adapting focused crawling, the paper samples pages from the Thai
dataset and reports three observations supporting language locality.
This subpackage measures them on any crawl log:

- :func:`~repro.analysis.locality.locality_evidence` — observation 1
  ("Thai pages are linked by other Thai pages"), observation 2 ("some
  Thai pages are reachable only through non-Thai pages") and
  observation 3 ("some Thai pages are mislabeled"), as numbers.
- :func:`~repro.analysis.degrees.degree_stats` — in/out-degree structure
  of the web space (heavy tails, hub concentration).
"""

from repro.analysis.degrees import DegreeStats, degree_stats
from repro.analysis.locality import LocalityEvidence, locality_evidence

__all__ = [
    "LocalityEvidence",
    "locality_evidence",
    "DegreeStats",
    "degree_stats",
]

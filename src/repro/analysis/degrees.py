"""Degree-structure statistics of a web space.

Used to check that synthetic universes have real-web-like link structure
(heavy-tailed in-degree, hub concentration) and by the structure-report
example.  The tail exponent is estimated as the negative slope of the
log-log complementary CDF over the upper tail — a deliberately simple
estimator; it distinguishes "power-law-ish" from "uniform-ish", which is
all the tests need.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.webspace.crawllog import CrawlLog
from repro.webspace.linkdb import LinkDB


@dataclass(frozen=True, slots=True)
class DegreeStats:
    """Summary of one degree distribution (in or out)."""

    count: int
    mean: float
    median: float
    max: int
    #: share of all endpoints held by the top 1% highest-degree pages
    top_percent_share: float
    #: log-log CCDF slope over the tail; more negative = lighter tail
    tail_exponent: float | None

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": round(self.mean, 2),
            "median": self.median,
            "max": self.max,
            "top_percent_share": round(self.top_percent_share, 3),
            "tail_exponent": None if self.tail_exponent is None else round(self.tail_exponent, 2),
        }


def _stats(degrees: np.ndarray) -> DegreeStats:
    if len(degrees) == 0:
        return DegreeStats(count=0, mean=0.0, median=0.0, max=0, top_percent_share=0.0, tail_exponent=None)
    total = degrees.sum()
    ranked = np.sort(degrees)[::-1]
    top = max(1, len(degrees) // 100)
    top_share = float(ranked[:top].sum() / total) if total else 0.0
    return DegreeStats(
        count=int(len(degrees)),
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        max=int(degrees.max()),
        top_percent_share=top_share,
        tail_exponent=_tail_exponent(degrees),
    )


def _tail_exponent(degrees: np.ndarray) -> float | None:
    """Slope of log CCDF vs log degree over degrees >= median positive."""
    positive = degrees[degrees > 0]
    if len(positive) < 20:
        return None
    counts = Counter(int(degree) for degree in positive)
    values = np.array(sorted(counts))
    ccdf = np.cumsum([counts[int(v)] for v in values][::-1])[::-1] / len(positive)
    tail = values >= np.median(positive)
    if tail.sum() < 3:
        return None
    slope, _intercept = np.polyfit(np.log(values[tail]), np.log(ccdf[tail]), 1)
    return float(slope)


def degree_stats(crawl_log: CrawlLog) -> dict[str, DegreeStats]:
    """``{"in": ..., "out": ...}`` degree statistics of a crawl log.

    Out-degrees cover OK HTML pages (the link emitters); in-degrees
    cover every URL that appears as a link target.
    """
    db = LinkDB(crawl_log)
    out_degrees = np.array(
        [len(record.outlinks) for record in crawl_log if record.ok and record.is_html],
        dtype=np.int64,
    )
    in_counter: Counter[str] = Counter()
    for _source, target in db.edges():
        in_counter[target] += 1
    in_degrees = np.array(list(in_counter.values()), dtype=np.int64)
    return {"in": _stats(in_degrees), "out": _stats(out_degrees)}

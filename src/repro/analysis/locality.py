"""Language-locality evidence (paper §3, observations 1-3).

The paper's premise check was anecdotal ("We sampled a number of web
pages from Thai dataset. The key observations are as follows...").
:func:`locality_evidence` computes the same three observations
exhaustively over a crawl log:

1. *"In most cases, Thai web pages are linked by other Thai web pages."*
   → ``same_language_inlink_fraction``: among inlinks of relevant pages,
   the share originating from relevant pages.  Locality exists when this
   clearly exceeds the baseline rate ``relevance_ratio`` (what a
   language-blind web would show).
2. *"In some cases, Thai web pages are reachable only through non-Thai
   web pages."* → ``relevant_without_relevant_inlink``: the fraction of
   relevant pages none of whose inlinks come from a relevant page.  This
   is exactly the population a hard-focused crawl cannot reach.
3. *"In some cases, Thai web pages are mislabeled as non-Thai web
   pages."* → ``mislabel_rate``: the share of true-target-language pages
   whose declared charset does not map back to the target language
   (requires generator ground truth; NaN-free 0.0 on logs without it).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.charset.languages import Language
from repro.webspace.crawllog import CrawlLog
from repro.webspace.linkdb import LinkDB


@dataclass(frozen=True, slots=True)
class LocalityEvidence:
    """The §3 observations, measured."""

    target_language: Language
    relevance_ratio: float
    #: observation 1: P(source relevant | target relevant), over inlinks.
    same_language_inlink_fraction: float
    #: observation 1, link view: P(target relevant | source relevant).
    same_language_outlink_fraction: float
    #: observation 2: relevant pages with no relevant inlink at all.
    relevant_without_relevant_inlink: float
    #: observation 3: true-target pages declaring a non-target charset.
    mislabel_rate: float

    @property
    def locality_lift(self) -> float:
        """How much likelier a relevant page's link hits a relevant page
        than blind chance: > 1 means language locality exists."""
        if self.relevance_ratio == 0.0:
            return 0.0
        return self.same_language_outlink_fraction / self.relevance_ratio

    def to_dict(self) -> dict:
        return {
            "target_language": self.target_language.value,
            "relevance_ratio": round(self.relevance_ratio, 4),
            "same_language_inlink_fraction": round(self.same_language_inlink_fraction, 4),
            "same_language_outlink_fraction": round(self.same_language_outlink_fraction, 4),
            "locality_lift": round(self.locality_lift, 2),
            "relevant_without_relevant_inlink": round(self.relevant_without_relevant_inlink, 4),
            "mislabel_rate": round(self.mislabel_rate, 4),
        }


def locality_evidence(crawl_log: CrawlLog, target_language: Language) -> LocalityEvidence:
    """Measure the §3 observations on ``crawl_log``.

    Relevance is charset-declared, matching how the paper's classifier
    (and its sampling) judged pages.
    """
    relevant: set[str] = set()
    ok_html = 0
    true_target = 0
    mislabeled = 0
    for record in crawl_log:
        if not record.ok or not record.is_html:
            continue
        ok_html += 1
        if record.declared_language is target_language:
            relevant.add(record.url)
        if record.true_language is target_language:
            true_target += 1
            if record.declared_language is not target_language:
                mislabeled += 1

    db = LinkDB(crawl_log)

    from_relevant = 0
    from_relevant_to_relevant = 0
    into_relevant = 0
    into_relevant_from_relevant = 0
    for source, target in db.edges():
        source_relevant = source in relevant
        target_relevant = target in relevant
        if source_relevant:
            from_relevant += 1
            if target_relevant:
                from_relevant_to_relevant += 1
        if target_relevant:
            into_relevant += 1
            if source_relevant:
                into_relevant_from_relevant += 1

    orphaned = 0
    for url in relevant:
        if not any(source in relevant for source in db.backward(url)):
            orphaned += 1

    return LocalityEvidence(
        target_language=target_language,
        relevance_ratio=len(relevant) / ok_html if ok_html else 0.0,
        same_language_inlink_fraction=(
            into_relevant_from_relevant / into_relevant if into_relevant else 0.0
        ),
        same_language_outlink_fraction=(
            from_relevant_to_relevant / from_relevant if from_relevant else 0.0
        ),
        relevant_without_relevant_inlink=orphaned / len(relevant) if relevant else 0.0,
        mislabel_rate=mislabeled / true_target if true_target else 0.0,
    )

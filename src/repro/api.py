"""The unified crawl-session API: one entry point for every workload.

``run_crawl`` is the documented public way to run a simulation.  A call
names **what** to crawl with a :class:`~repro.core.session.CrawlRequest`
and **how** to run it with a :class:`~repro.core.session.SessionConfig`
— the same two objects the serving layer (:mod:`repro.serve`) speaks
over the wire — and drives both engines: the sequential
:class:`~repro.core.session.CrawlSession` and the partitioned
:class:`~repro.core.parallel.ParallelCrawlSimulator`, selected by the
``config``::

    from repro import CrawlRequest, run_crawl

    # sequential, from a built dataset
    result = run_crawl(CrawlRequest(dataset=dataset, strategy="soft-focused"))

    # partitioned: a ParallelConfig selects the parallel engine
    from repro import ParallelConfig, PartitionMode
    result = run_crawl(
        CrawlRequest(dataset=dataset, strategy="breadth-first"),
        config=ParallelConfig(partitions=4, mode=PartitionMode.EXCHANGE),
    )

Both calls return an object satisfying the
:class:`~repro.core.summary.CrawlReport` protocol, so downstream report
code does not care which engine ran.

The pre-session keyword surface (``run_crawl(web=..., strategy=...,
timing=..., ...)``) still works but is deprecated: it emits a
:class:`DeprecationWarning` and is folded into a request/config pair
internally, so both spellings produce identical reports.
"""

from __future__ import annotations

import warnings
from typing import Any

from repro.core.parallel import (
    ParallelConfig,
    ParallelCrawlSimulator,
    ParallelResult,
)
from repro.core.session import (
    CrawlRequest,
    CrawlResult,
    CrawlSession,
    SessionConfig,
    SimulationConfig,
)
from repro.errors import ConfigError

__all__ = ["run_crawl"]

#: The legacy keywords that name the *workload* (CrawlRequest fields).
_REQUEST_KEYS = ("strategy", "web", "dataset", "classifier", "seeds", "relevant_urls")
#: The legacy keywords that name the *run shape* (SessionConfig fields).
_CONFIG_KEYS = (
    "timing",
    "on_fetch",
    "instrumentation",
    "faults",
    "resilience",
    "resume_from",
    "hooks",
    "record_fault_journal",
)


def _from_legacy_kwargs(
    config: SessionConfig | SimulationConfig | ParallelConfig | None,
    legacy: dict[str, Any],
) -> tuple[CrawlRequest, SessionConfig | SimulationConfig | ParallelConfig | None]:
    """Fold the deprecated loose-keyword surface into a request/config pair."""
    unknown = set(legacy) - set(_REQUEST_KEYS) - set(_CONFIG_KEYS)
    if unknown:
        raise TypeError(
            f"run_crawl() got unexpected keyword arguments: {sorted(unknown)}"
        )
    if "strategy" not in legacy:
        raise ConfigError("run_crawl needs a request= (or a legacy strategy= keyword)")
    warnings.warn(
        "passing run_crawl() loose keywords (web=, strategy=, timing=, ...) is "
        "deprecated; pass run_crawl(CrawlRequest(...), config=SessionConfig(...))",
        DeprecationWarning,
        stacklevel=3,
    )
    request = CrawlRequest(**{k: legacy[k] for k in _REQUEST_KEYS if k in legacy})
    extras = {k: legacy[k] for k in _CONFIG_KEYS if k in legacy}
    if "hooks" in extras:
        extras["hooks"] = tuple(extras["hooks"])
    if extras:
        if isinstance(config, SessionConfig):
            raise ConfigError(
                "pass run-shaping keywords inside the SessionConfig, "
                "not alongside one"
            )
        if isinstance(config, ParallelConfig):
            # Preserve the historical sequential-only diagnostics.
            if extras.get("timing") is not None or extras.get("on_fetch") is not None:
                raise ConfigError("timing= and on_fetch= are sequential-engine features")
            if extras.get("resume_from") is not None:
                raise ConfigError("resume_from= is a sequential-engine feature")
            if extras.get("hooks"):
                raise ConfigError("hooks= is a sequential-engine feature")
            return request, SessionConfig(
                parallel=config,
                instrumentation=extras.get("instrumentation"),
                faults=extras.get("faults"),
                resilience=extras.get("resilience"),
            )
        base = config or SimulationConfig()
        return request, SessionConfig.from_simulation(base, **extras)
    return request, config


def run_crawl(
    request: CrawlRequest | None = None,
    *,
    config: SessionConfig | SimulationConfig | ParallelConfig | None = None,
    **legacy: Any,
) -> CrawlResult | ParallelResult:
    """Run one crawl session; the single public entry point.

    Args:
        request: the workload — space (``web`` or ``dataset``),
            strategy, classifier, seeds, recall denominator — as a
            :class:`CrawlRequest`.
        config: how to run it.  A :class:`SessionConfig` (or a bare
            :class:`SimulationConfig`, upgraded internally, or None)
            runs the sequential engine; a :class:`ParallelConfig` — or a
            ``SessionConfig`` carrying one in its ``parallel`` field —
            runs the partitioned one.
        **legacy: the deprecated pre-session keyword surface
            (``web=``, ``strategy=``, ``timing=``, ``faults=``, ...).
            Emits :class:`DeprecationWarning` and produces a report
            identical to the equivalent request/config call.

    Returns:
        A :class:`CrawlResult` or :class:`ParallelResult` — either way a
        :class:`~repro.core.summary.CrawlReport`.

    Raises:
        ConfigError: on contradictory or incomplete session arguments.
    """
    if request is not None and legacy:
        raise ConfigError(
            "pass either a CrawlRequest or the legacy loose keywords, not both"
        )
    if request is None:
        request, config = _from_legacy_kwargs(config, legacy)
    if not isinstance(request, CrawlRequest):
        raise ConfigError(
            f"run_crawl needs a CrawlRequest, got {type(request).__name__}"
        )

    parallel: ParallelConfig | None = None
    session_config: SessionConfig
    if isinstance(config, ParallelConfig):
        parallel = config
        session_config = SessionConfig(parallel=config)
    elif isinstance(config, SimulationConfig):
        session_config = SessionConfig.from_simulation(config)
    elif config is None:
        session_config = SessionConfig()
    elif isinstance(config, SessionConfig):
        parallel = config.parallel
        session_config = config
    else:
        raise ConfigError(
            "config= must be a SessionConfig, SimulationConfig or ParallelConfig, "
            f"got {type(config).__name__}"
        )

    if parallel is not None:
        if session_config.timing is not None or session_config.on_fetch is not None:
            raise ConfigError("timing= and on_fetch= are sequential-engine features")
        if session_config.concurrency is not None:
            raise ConfigError(
                "concurrency= selects the sequential event-driven engine; it "
                "does not combine with a partitioned (parallel=) run"
            )
        if session_config.resume_from is not None:
            raise ConfigError("resume_from= is a sequential-engine feature")
        if session_config.hooks:
            raise ConfigError("hooks= is a sequential-engine feature")
        factory = request.strategy_factory()
        resolved = request.resolve()
        assert resolved.web is not None and resolved.classifier is not None
        return ParallelCrawlSimulator(
            web=resolved.web,
            strategy_factory=factory,
            classifier=resolved.classifier,
            seed_urls=list(resolved.seeds or ()),
            config=parallel,
            relevant_urls=resolved.relevant_urls,
            instrumentation=session_config.instrumentation,
            faults=session_config.faults,
            resilience=session_config.resilience,
        ).run()

    return CrawlSession(request, session_config).run()

"""The unified crawl-session API: one entry point for every workload.

``run_crawl`` is the documented public way to run a simulation.  It
drives both engines — the sequential
:class:`~repro.core.simulator.Simulator` and the partitioned
:class:`~repro.core.parallel.ParallelCrawlSimulator` — selected by the
type of ``config``, and threads the optional extras (timing model,
per-fetch callback, telemetry) through uniformly, so new workloads stop
re-plumbing their own constructors::

    from repro import run_crawl, SimpleStrategy

    # sequential, from a built dataset
    result = run_crawl(dataset=dataset, strategy=SimpleStrategy(mode="soft"))

    # partitioned: a ParallelConfig selects the parallel engine
    from repro import ParallelConfig, PartitionMode, BreadthFirstStrategy
    result = run_crawl(
        dataset=dataset,
        strategy=BreadthFirstStrategy,
        config=ParallelConfig(partitions=4, mode=PartitionMode.EXCHANGE),
    )

Both calls return an object satisfying the
:class:`~repro.core.summary.CrawlReport` protocol, so downstream report
code does not care which engine ran.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.classifier import Classifier, ClassifierMode
from repro.core.events import FetchCallback
from repro.core.parallel import (
    ParallelConfig,
    ParallelCrawlSimulator,
    ParallelResult,
)
from repro.core.checkpoint import CheckpointState
from repro.core.engine import EngineHook
from repro.core.simulator import CrawlResult, SimulationConfig, Simulator
from repro.core.strategies.base import CrawlStrategy
from repro.core.strategies.registry import get_strategy
from repro.core.timing import TimingModel
from repro.errors import ConfigError
from repro.faults import FaultModel, ResilienceConfig
from repro.obs import Instrumentation
from repro.webspace.virtualweb import VirtualWebSpace

__all__ = ["run_crawl"]


def run_crawl(
    *,
    web: VirtualWebSpace | None = None,
    dataset=None,
    strategy: CrawlStrategy | Callable[[], CrawlStrategy] | str,
    classifier: Classifier | None = None,
    seeds: Sequence[str] | None = None,
    config: SimulationConfig | ParallelConfig | None = None,
    relevant_urls: frozenset[str] | None = None,
    timing: TimingModel | None = None,
    on_fetch: FetchCallback | None = None,
    instrumentation: Instrumentation | None = None,
    faults: FaultModel | None = None,
    resilience: ResilienceConfig | None = None,
    resume_from: CheckpointState | str | None = None,
    hooks: Sequence[EngineHook] = (),
) -> CrawlResult | ParallelResult:
    """Run one crawl session; the single public entry point.

    Keyword-only by design: every call site names what it configures.

    Args:
        web: the virtual web space to crawl.  Mutually exclusive with
            ``dataset``.
        dataset: a built :class:`~repro.experiments.datasets.Dataset`;
            supplies ``web``, and defaults for ``classifier``, ``seeds``
            and ``relevant_urls`` in one argument.
        strategy: a :class:`CrawlStrategy` instance, a zero-arg factory
            (class or lambda), or a registered strategy *name* resolved
            through :func:`repro.core.strategies.get_strategy`.  A
            parallel run accepts the factory or name form — each
            partition builds its own instance.
        classifier: relevance judge; required with ``web``, defaulted to
            the charset classifier of the dataset's target language with
            ``dataset``.
        seeds: seed URLs; required with ``web``, defaulted to the
            dataset's captured seeds with ``dataset``.
        config: :class:`SimulationConfig` (or None) runs the sequential
            simulator; a :class:`ParallelConfig` runs the partitioned
            one.
        relevant_urls: explicit-recall denominator; precomputed from the
            crawl log when omitted.
        timing: optional transfer-delay model (sequential engine only).
        on_fetch: optional per-fetch :class:`CrawlEvent` callback
            (sequential engine only).
        instrumentation: optional :class:`repro.obs.Instrumentation`
            hub; no-op when omitted.
        faults: optional :class:`~repro.faults.FaultModel` injected in
            front of the web space; attaching one also enables the
            resilient fetch pipeline (both engines).
        resilience: retry/backoff/circuit-breaker policies
            (:class:`~repro.faults.ResilienceConfig`); defaults apply
            whenever ``faults``, checkpointing or ``resume_from`` are
            in play.
        resume_from: a checkpoint file path (or loaded
            :class:`~repro.core.checkpoint.CheckpointState`) to resume
            the crawl from; the run continues exactly where the
            checkpointed one stopped.
        hooks: extra :class:`~repro.core.engine.EngineHook` stage
            observers attached after the built-in ones (sequential
            engine only).

    Returns:
        A :class:`CrawlResult` or :class:`ParallelResult` — either way a
        :class:`~repro.core.summary.CrawlReport`.

    Raises:
        ConfigError: on contradictory or incomplete session arguments.
    """
    if dataset is not None:
        if web is not None:
            raise ConfigError("pass either web= or dataset=, not both")
        if classifier is None:
            classifier = Classifier(dataset.target_language)
        if classifier.mode in (ClassifierMode.META, ClassifierMode.DETECTOR):
            # Body-reading classifiers need synthesized HTML to judge.
            from repro.graphgen.htmlsynth import HtmlSynthesizer

            web = dataset.web(body_synthesizer=HtmlSynthesizer())
        else:
            web = dataset.web()
        if seeds is None:
            seeds = dataset.seed_urls
        if relevant_urls is None:
            relevant_urls = dataset.relevant_urls()
    if web is None:
        raise ConfigError("run_crawl needs a web= space or a dataset=")
    if classifier is None:
        raise ConfigError("run_crawl needs a classifier= (or a dataset= to default from)")
    if seeds is None:
        raise ConfigError("run_crawl needs seeds= (or a dataset= to default from)")

    if isinstance(config, ParallelConfig):
        if isinstance(strategy, CrawlStrategy):
            raise ConfigError(
                "a parallel crawl needs a strategy *factory* (a class, "
                "zero-arg callable, or registered name), not an instance "
                "— each partition builds its own"
            )
        if timing is not None or on_fetch is not None:
            raise ConfigError("timing= and on_fetch= are sequential-engine features")
        if resume_from is not None:
            raise ConfigError("resume_from= is a sequential-engine feature")
        if hooks:
            raise ConfigError("hooks= is a sequential-engine feature")
        if isinstance(strategy, str):
            name = strategy
            get_strategy(name)  # fail fast on an unknown name
            strategy = lambda: get_strategy(name)  # noqa: E731
        return ParallelCrawlSimulator(
            web=web,
            strategy_factory=strategy,
            classifier=classifier,
            seed_urls=list(seeds),
            config=config,
            relevant_urls=relevant_urls,
            instrumentation=instrumentation,
            faults=faults,
            resilience=resilience,
        ).run()

    if isinstance(strategy, str):
        strategy = get_strategy(strategy)
    elif not isinstance(strategy, CrawlStrategy):
        strategy = strategy()
        if not isinstance(strategy, CrawlStrategy):
            raise ConfigError("strategy factory did not produce a CrawlStrategy")
    return Simulator(
        web=web,
        strategy=strategy,
        classifier=classifier,
        seed_urls=list(seeds),
        relevant_urls=relevant_urls,
        config=config,
        timing=timing,
        on_fetch=on_fetch,
        instrumentation=instrumentation,
        faults=faults,
        resilience=resilience,
        resume_from=resume_from,
        hooks=hooks,
    ).run()

"""Language identification substrate (paper §3.2).

The paper determines the language of a web page from its character
encoding scheme, identified either by parsing the ``charset`` property of
the HTML META declaration or by running a byte-distribution charset
detector (the Mozilla Charset Detector in the original work).  This
subpackage provides both, implemented from scratch:

- :mod:`~repro.charset.languages` — the charset ↔ language mapping
  (paper Table 1).
- :mod:`~repro.charset.meta` — META declaration parsing.
- :mod:`~repro.charset.detector` — a composite detector following Li &
  Momoi's three-part architecture: escape-sequence detection, multi-byte
  coding state machines with character-distribution scoring, and a
  single-byte frequency model for Thai.
"""

from repro.charset.detector import CompositeCharsetDetector, DetectionResult, detect_charset
from repro.charset.languages import (
    CHARSET_LANGUAGES,
    Language,
    canonical_charset,
    charsets_for_language,
    language_of_charset,
)
from repro.charset.meta import parse_meta_charset

__all__ = [
    "Language",
    "CHARSET_LANGUAGES",
    "canonical_charset",
    "language_of_charset",
    "charsets_for_language",
    "parse_meta_charset",
    "CompositeCharsetDetector",
    "DetectionResult",
    "detect_charset",
]

"""Composite charset detector (the paper's "Mozilla Charset Detector").

Follows the composite architecture of Li & Momoi ("A composite approach
to language/encoding detection", 19th International Unicode Conference,
2001), which is the paper's reference [10]:

1. **Escape-sequence method** — conclusive detection of ISO-2022-JP from
   its designation sequences.
2. **Coding-scheme method** — run the candidate multi-byte state machines
   (UTF-8, EUC-JP, Shift_JIS) in parallel; an illegal byte sequence
   eliminates a candidate.
3. **Distribution method** — among surviving candidates, score by how
   much of the multi-byte text falls in the encoding's kana region; real
   Japanese prose is dominated by hiragana, so the correct reading scores
   far above an accidental one.
4. **Single-byte method** — a positional frequency model for Thai
   (TIS-620/WINDOWS-874), plus a weak Latin-1 fallback.

Notably, supporting Thai is itself a (small) extension over the tool the
paper used — the authors resorted to META tags for the Thai dataset
precisely because the Mozilla detector lacked a Thai model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.charset.escapes import EscapeDetector
from repro.charset.languages import Language, language_of_charset
from repro.charset.machines import EUCJP_SPEC, EUCKR_SPEC, SJIS_SPEC, UTF8_SPEC
from repro.charset.singlebyte import Latin1Prober, ThaiProber
from repro.charset.statemachine import CodingStateMachine
from repro.errors import DetectionError

#: Leads of the kana rows used by the distribution method.
_EUCJP_KANA_LEADS = frozenset({0xA4, 0xA5})
_SJIS_KANA_LEADS = frozenset({0x82, 0x83})
#: Leads of the hangul-syllable rows of KS X 1001 (EUC-KR).
_EUCKR_HANGUL_LEADS = frozenset(range(0xB0, 0xC9))

#: Below this confidence the detector declines to name a charset.
_MIN_CONFIDENCE = 0.10


@dataclass(frozen=True, slots=True)
class DetectionResult:
    """Outcome of a detection run.

    ``charset`` is a canonical name from
    :data:`repro.charset.languages.CHARSET_LANGUAGES`, or ``None`` when
    the evidence was insufficient.  ``language`` is derived from the
    charset, mirroring how the paper maps encodings to languages.
    """

    charset: str | None
    confidence: float
    language: Language

    @classmethod
    def unknown(cls) -> "DetectionResult":
        return cls(charset=None, confidence=0.0, language=Language.UNKNOWN)


class _MultiByteProber:
    """A coding state machine plus character-distribution scoring.

    ``positive_leads`` are the rows whose characters dominate genuine
    text of this encoding (kana for the Japanese encodings, hangul
    syllables for EUC-KR); ``negative_leads`` are rows that genuine text
    of this encoding rarely uses but a *competing* encoding's text read
    through this machine hits constantly (the jamo/half-width-kana rows
    for EUC-KR, which Japanese EUC text fills with hiragana).
    """

    def __init__(
        self,
        spec,
        charset: str,
        positive_leads: frozenset[int] | None,
        negative_leads: frozenset[int] = frozenset(),
    ) -> None:
        self._machine = CodingStateMachine(spec)
        self.charset = charset
        self._positive_leads = positive_leads
        self._negative_leads = negative_leads
        self._positive_chars = 0
        self._negative_chars = 0

    def feed(self, data: bytes) -> bool:
        if self._positive_leads is None:
            return self._machine.feed(data)
        return self._machine.feed(data, on_char=self._count_leads)

    def _count_leads(self, lead: int, _trail: int) -> None:
        if lead in self._positive_leads:
            self._positive_chars += 1
        if lead in self._negative_leads:
            self._negative_chars += 1

    def confidence(self) -> float:
        machine = self._machine
        if machine.errored:
            return 0.0
        if machine.chars_multibyte == 0:
            # Pure ASCII so far: legal, but says nothing about us.
            return 0.0
        if self._positive_leads is None:
            # UTF-8: structural validity across real multi-byte sequences
            # is close to conclusive — accidental validation is rare.
            return 0.99
        positive_ratio = self._positive_chars / machine.chars_multibyte
        negative_ratio = self._negative_chars / machine.chars_multibyte
        score = max(0.0, 0.5 + 0.49 * positive_ratio - 0.8 * negative_ratio)
        if machine.mid_character:
            score *= 0.9  # truncated document: keep some doubt
        return score


class CompositeCharsetDetector:
    """Streaming charset detector.

    Usage::

        detector = CompositeCharsetDetector()
        detector.feed(chunk)         # repeatable
        result = detector.close()    # finalises and returns the verdict

    ``close()`` may be called once; ``result()`` returns the same verdict
    afterwards.  A fresh instance is required per document.
    """

    def __init__(self) -> None:
        self._escape = EscapeDetector()
        self._probers = [
            _MultiByteProber(UTF8_SPEC, "UTF-8", None),
            _MultiByteProber(EUCJP_SPEC, "EUC-JP", _EUCJP_KANA_LEADS),
            _MultiByteProber(SJIS_SPEC, "SHIFT_JIS", _SJIS_KANA_LEADS),
            # Jamo rows double as EUC-JP's kana rows: frequent 0xA4/0xA5
            # leads mean "Japanese read through the Korean machine".
            _MultiByteProber(
                EUCKR_SPEC,
                "EUC-KR",
                _EUCKR_HANGUL_LEADS,
                negative_leads=frozenset({0xA4, 0xA5}),
            ),
        ]
        self._thai = ThaiProber()
        self._latin = Latin1Prober()
        self._saw_high_byte = False
        self._saw_any_byte = False
        self._result: DetectionResult | None = None

    def feed(self, data: bytes) -> None:
        """Add the next chunk of the document."""
        if self._result is not None:
            raise DetectionError("feed() called after close()")
        if not data:
            return
        self._saw_any_byte = True
        if not self._saw_high_byte and any(byte >= 0x80 for byte in data):
            self._saw_high_byte = True
        if self._escape.feed(data):
            return  # conclusive; remaining work happens in close()
        for prober in self._probers:
            prober.feed(data)
        self._thai.feed(data)
        self._latin.feed(data)

    def close(self) -> DetectionResult:
        """Finalise detection and return the verdict."""
        if self._result is None:
            self._result = self._decide()
        return self._result

    def result(self) -> DetectionResult:
        """The verdict; requires :meth:`close` to have been called."""
        if self._result is None:
            raise DetectionError("result() called before close()")
        return self._result

    def _decide(self) -> DetectionResult:
        if self._escape.found:
            return _result_for(self._escape.found, 0.99)
        if not self._saw_any_byte:
            return DetectionResult.unknown()
        if not self._saw_high_byte:
            return _result_for("US-ASCII", 1.0)

        candidates: list[tuple[float, str]] = [
            (prober.confidence(), prober.charset) for prober in self._probers
        ]
        candidates.append((self._thai.confidence(), self._thai.charset))
        candidates.append((self._latin.confidence(), "ISO-8859-1"))

        confidence, charset = max(candidates, key=lambda pair: pair[0])
        if confidence < _MIN_CONFIDENCE:
            return DetectionResult.unknown()
        return _result_for(charset, confidence)


def _result_for(charset: str, confidence: float) -> DetectionResult:
    return DetectionResult(
        charset=charset,
        confidence=confidence,
        language=language_of_charset(charset),
    )


def detect_charset(data: bytes) -> DetectionResult:
    """One-shot detection of a whole document."""
    detector = CompositeCharsetDetector()
    detector.feed(data)
    return detector.close()

"""Escape-sequence detection for ISO-2022 encodings.

The ISO-2022 family is 7-bit: national text is announced by ESC
sequences that shift between ASCII and a designated charset.  Finding a
designation sequence is conclusive ("its me", in Mozilla detector
terminology) — no other encoding in our universe uses them — so the
composite detector consults this prober first and short-circuits on a
match.  Japanese (JIS X 0201/0208/0212) and Korean (KS X 1001)
designations are recognised; other ISO-2022 variants rule the family
out without naming a charset.
"""

from __future__ import annotations

_ESC = 0x1B

# Designation sequences (the bytes following ESC) that conclusively name
# a charset.
_CONCLUSIVE_SEQUENCES: tuple[tuple[bytes, str], ...] = (
    (b"$@", "ISO-2022-JP"),  # JIS X 0208-1978
    (b"$B", "ISO-2022-JP"),  # JIS X 0208-1983
    (b"&@", "ISO-2022-JP"),  # JIS X 0208-1990 announcer
    (b"(I", "ISO-2022-JP"),  # JIS X 0201 katakana
    (b"$(D", "ISO-2022-JP"),  # JIS X 0212-1990
    (b"$)C", "ISO-2022-KR"),  # KS X 1001
)

# Sequences that designate an ISO-2022 variant we do not model; seeing
# one of these means "none of the charsets we can name".
_FOREIGN_SEQUENCES: tuple[bytes, ...] = (
    b"$)A",  # GB 2312  → ISO-2022-CN
    b"$)G",  # CNS 11643 → ISO-2022-CN
)


class EscapeDetector:
    """Streaming prober for ISO-2022-JP designation sequences.

    Feed bytes incrementally; :attr:`found` flips to the detected charset
    name as soon as a conclusive sequence is seen.
    """

    #: longest sequence we must buffer across feed() boundaries
    _MAX_SEQ = max(
        len(seq) for seq in [s for s, _ in _CONCLUSIVE_SEQUENCES] + list(_FOREIGN_SEQUENCES)
    )

    def __init__(self) -> None:
        self.found: str | None = None
        self.ruled_out = False
        self._tail = b""

    def feed(self, data: bytes) -> str | None:
        """Consume the next chunk; returns the charset name on a match."""
        if self.found or self.ruled_out:
            return self.found
        buffer = self._tail + data
        index = buffer.find(_ESC)
        while index != -1:
            window = buffer[index + 1 : index + 1 + self._MAX_SEQ]
            for sequence, charset in _CONCLUSIVE_SEQUENCES:
                if window.startswith(sequence):
                    self.found = charset
                    return self.found
            for sequence in _FOREIGN_SEQUENCES:
                if window.startswith(sequence):
                    self.ruled_out = True
                    return None
            index = buffer.find(_ESC, index + 1)
        # Keep enough tail to recognise a sequence split across chunks.
        self._tail = buffer[-(self._MAX_SEQ) :]
        return None


def contains_iso2022jp(data: bytes) -> bool:
    """One-shot convenience wrapper around :class:`EscapeDetector`."""
    detector = EscapeDetector()
    return detector.feed(data) == "ISO-2022-JP"

"""Charset ↔ language mapping (paper Table 1).

The paper's Table 1 maps character encoding schemes to the two target
languages of its experiments:

========  =========================================
Language  Character encoding schemes (charset name)
========  =========================================
Japanese  EUC-JP, SHIFT_JIS, ISO-2022-JP
Thai      TIS-620, WINDOWS-874, ISO-8859-11
========  =========================================

We extend the table with the language-neutral encodings the detector can
emit (ASCII, UTF-8, ISO-8859-1) so every detection result maps to *some*
:class:`Language` value.  UTF-8 and ASCII are mapped to
:attr:`Language.OTHER` — exactly the conservative behaviour the paper's
charset-based classifier exhibits: a UTF-8 Thai page is *not* recognised
as Thai, which is one source of the paper's "mislabeled pages"
observation (§3, observation 3).
"""

from __future__ import annotations

from enum import Enum


class Language(Enum):
    """Languages distinguishable by the charset-based classifier.

    Japanese and Thai are the paper's two targets; Korean is included to
    demonstrate that the method generalises to other national web
    archives (the paper's motivating scenario) with one more charset row
    and one more detector model.
    """

    JAPANESE = "japanese"
    THAI = "thai"
    KOREAN = "korean"
    OTHER = "other"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


# Canonical names for the aliases encountered in META tags and crawl logs.
# Keys are lowercase with separators stripped (see canonical_charset).
_CHARSET_ALIASES: dict[str, str] = {
    # Japanese
    "eucjp": "EUC-JP",
    "xeucjp": "EUC-JP",
    "shiftjis": "SHIFT_JIS",
    "sjis": "SHIFT_JIS",
    "xsjis": "SHIFT_JIS",
    "cp932": "SHIFT_JIS",
    "ms932": "SHIFT_JIS",
    "windows31j": "SHIFT_JIS",
    "iso2022jp": "ISO-2022-JP",
    "csiso2022jp": "ISO-2022-JP",
    "jis": "ISO-2022-JP",
    # Korean
    "euckr": "EUC-KR",
    "xeuckr": "EUC-KR",
    "ksc56011987": "EUC-KR",
    "ksx1001": "EUC-KR",
    "iso2022kr": "ISO-2022-KR",
    "csiso2022kr": "ISO-2022-KR",
    # Thai
    "tis620": "TIS-620",
    "tis6202533": "TIS-620",
    "iso885911": "ISO-8859-11",
    "windows874": "WINDOWS-874",
    "cp874": "WINDOWS-874",
    "xwindows874": "WINDOWS-874",
    # Neutral
    "usascii": "US-ASCII",
    "ascii": "US-ASCII",
    "utf8": "UTF-8",
    "iso88591": "ISO-8859-1",
    "latin1": "ISO-8859-1",
    "windows1252": "WINDOWS-1252",
    "cp1252": "WINDOWS-1252",
}

#: Paper Table 1, extended with the neutral encodings (canonical names).
CHARSET_LANGUAGES: dict[str, Language] = {
    "EUC-JP": Language.JAPANESE,
    "SHIFT_JIS": Language.JAPANESE,
    "ISO-2022-JP": Language.JAPANESE,
    "EUC-KR": Language.KOREAN,
    "ISO-2022-KR": Language.KOREAN,
    "TIS-620": Language.THAI,
    "WINDOWS-874": Language.THAI,
    "ISO-8859-11": Language.THAI,
    "US-ASCII": Language.OTHER,
    "UTF-8": Language.OTHER,
    "ISO-8859-1": Language.OTHER,
    "WINDOWS-1252": Language.OTHER,
}

#: Python codec name for each canonical charset, for encoding synthesized
#: page bodies.  ISO-8859-11 differs from TIS-620 only in NBSP; Python's
#: tis_620 codec covers both for our purposes.
PYTHON_CODECS: dict[str, str] = {
    "EUC-JP": "euc_jp",
    "SHIFT_JIS": "shift_jis",
    "ISO-2022-JP": "iso2022_jp",
    "EUC-KR": "euc_kr",
    "ISO-2022-KR": "iso2022_kr",
    "TIS-620": "tis_620",
    "WINDOWS-874": "cp874",
    "ISO-8859-11": "tis_620",
    "US-ASCII": "ascii",
    "UTF-8": "utf_8",
    "ISO-8859-1": "latin_1",
    "WINDOWS-1252": "cp1252",
}


def canonical_charset(name: str | None) -> str | None:
    """Normalise a charset label to its canonical name.

    Lowercases and strips ``-``/``_``/whitespace before looking the label
    up, so ``"Shift-JIS"``, ``"shift_jis"`` and ``"SJIS"`` all map to
    ``"SHIFT_JIS"``.  Returns ``None`` for an unknown or empty label.
    """
    if not name:
        return None
    key = "".join(ch for ch in name.lower() if ch not in "-_ \t")
    if key in _CHARSET_ALIASES:
        return _CHARSET_ALIASES[key]
    upper = name.strip().upper()
    if upper in CHARSET_LANGUAGES:
        return upper
    return None


def language_of_charset(name: str | None) -> Language:
    """Map a charset label (any alias) to its :class:`Language`.

    Unknown labels map to :attr:`Language.UNKNOWN` rather than raising:
    the classifier treats unidentifiable pages as irrelevant, it does not
    abort the crawl.
    """
    canonical = canonical_charset(name)
    if canonical is None:
        return Language.UNKNOWN
    return CHARSET_LANGUAGES[canonical]


def charsets_for_language(language: Language) -> tuple[str, ...]:
    """All canonical charsets whose pages count as ``language``."""
    return tuple(cs for cs, lang in CHARSET_LANGUAGES.items() if lang is language)

"""Coding state machine definitions for the multi-byte encodings.

Each spec collapses the 256 byte values into the classes the encoding
distinguishes and lists the legal DFA moves.  Anything not listed is an
error, which is what makes the machines discriminative: a Shift_JIS
document quickly hits an illegal EUC-JP byte pair and vice versa.

References: JIS X 0208 / X 0201 for the Japanese encodings, RFC 3629 for
UTF-8's well-formedness table.
"""

from __future__ import annotations

from repro.charset.statemachine import MachineSpec, START


def _classes(default: int, ranges: list[tuple[int, int, int]]) -> tuple[int, ...]:
    """Build a 256-entry byte-class table.

    Args:
        default: class for any byte not covered by a range.
        ranges: ``(low, high, cls)`` triples, inclusive on both ends;
            later entries override earlier ones.
    """
    table = [default] * 256
    for low, high, cls in ranges:
        for byte in range(low, high + 1):
            table[byte] = cls
    return tuple(table)


# --------------------------------------------------------------------------
# UTF-8 (RFC 3629).  Classes:
#   0 ascii    1 cont 80-8F    2 cont 90-9F    3 cont A0-BF
#   4 illegal (C0,C1,F5-FF)    5 lead C2-DF    6 lead E0
#   7 lead E1-EC,EE-EF         8 lead ED       9 lead F0
#  10 lead F1-F3              11 lead F4
# --------------------------------------------------------------------------
_UTF8_CLASSES = _classes(
    4,
    [
        (0x00, 0x7F, 0),
        (0x80, 0x8F, 1),
        (0x90, 0x9F, 2),
        (0xA0, 0xBF, 3),
        (0xC2, 0xDF, 5),
        (0xE0, 0xE0, 6),
        (0xE1, 0xEC, 7),
        (0xED, 0xED, 8),
        (0xEE, 0xEF, 7),
        (0xF0, 0xF0, 9),
        (0xF1, 0xF3, 10),
        (0xF4, 0xF4, 11),
    ],
)

# States: 0 START, 1 need-1-cont, 2 after-E0, 3 after-ED, 4 need-2-cont,
#         5 after-F0, 6 after-F4, 7 need-3-cont (entered only via leads).
UTF8_SPEC = MachineSpec(
    name="UTF-8",
    byte_classes=_UTF8_CLASSES,
    transitions=(
        {0: START, 5: 1, 6: 2, 7: 4, 8: 3, 9: 5, 10: 7, 11: 6},  # START
        {1: START, 2: START, 3: START},  # need one continuation, any
        {3: 1},  # after E0: continuation must be A0-BF
        {1: 1, 2: 1},  # after ED: continuation must be 80-9F
        {1: 1, 2: 1, 3: 1},  # need two continuations
        {2: 4, 3: 4},  # after F0: first continuation 90-BF
        {1: 4},  # after F4: first continuation 80-8F
        {1: 4, 2: 4, 3: 4},  # need three continuations
    ),
)


# --------------------------------------------------------------------------
# EUC-JP.  Classes:
#   0 ascii (00-7F)   1 SS2 (8E)   2 SS3 (8F)
#   3 A1-DF (lead/trail; also JIS X 0201 kana after SS2)
#   4 E0-FE (lead/trail)          5 illegal (80-8D, 90-A0, FF)
# --------------------------------------------------------------------------
_EUCJP_CLASSES = _classes(
    5,
    [
        (0x00, 0x7F, 0),
        (0x8E, 0x8E, 1),
        (0x8F, 0x8F, 2),
        (0xA1, 0xDF, 3),
        (0xE0, 0xFE, 4),
    ],
)

# States: 0 START, 1 expect trail (2-byte char), 2 after SS2, 3 after SS3.
EUCJP_SPEC = MachineSpec(
    name="EUC-JP",
    byte_classes=_EUCJP_CLASSES,
    transitions=(
        {0: START, 1: 2, 2: 3, 3: 1, 4: 1},  # START
        {3: START, 4: START},  # trail byte A1-FE completes the char
        {3: START},  # SS2: one half-width kana byte A1-DF
        {3: 1, 4: 1},  # SS3: two bytes A1-FE follow
    ),
)


# --------------------------------------------------------------------------
# Shift_JIS (with the common vendor extension leads E0-FC).  Classes:
#   0 low ascii / DEL (00-3F, 7F)  — valid alone, invalid as trail
#   1 40-7E                        — ascii and valid trail
#   2 80, A0                      — trail-only bytes
#   3 lead 81-9F                  — also a valid trail
#   4 single-byte kana A1-DF      — also a valid trail
#   5 lead E0-FC                  — also a valid trail
#   6 illegal FD-FF
# --------------------------------------------------------------------------
_SJIS_CLASSES = _classes(
    6,
    [
        (0x00, 0x3F, 0),
        (0x40, 0x7E, 1),
        (0x7F, 0x7F, 0),
        (0x80, 0x80, 2),
        (0x81, 0x9F, 3),
        (0xA0, 0xA0, 2),
        (0xA1, 0xDF, 4),
        (0xE0, 0xFC, 5),
    ],
)

# States: 0 START, 1 expect trail.
SJIS_SPEC = MachineSpec(
    name="SHIFT_JIS",
    byte_classes=_SJIS_CLASSES,
    transitions=(
        {0: START, 1: START, 4: START, 3: 1, 5: 1},  # START
        {1: START, 2: START, 3: START, 4: START, 5: START},  # trail
    ),
)


# --------------------------------------------------------------------------
# EUC-KR (KS X 1001 in EUC form).  Structurally like EUC-JP without the
# single-shift codes: two-byte characters with lead and trail in A1-FE.
# The *distribution* analysis (hangul syllable rows B0-C8) is what keeps
# it from claiming EUC-JP documents — structure alone cannot.
#   0 ascii   1 lead/trail A1-FE   2 illegal (80-A0, FF)
# --------------------------------------------------------------------------
_EUCKR_CLASSES = _classes(
    2,
    [
        (0x00, 0x7F, 0),
        (0xA1, 0xFE, 1),
    ],
)

EUCKR_SPEC = MachineSpec(
    name="EUC-KR",
    byte_classes=_EUCKR_CLASSES,
    transitions=(
        {0: START, 1: 1},  # START
        {1: START},  # trail completes the character
    ),
)

ALL_SPECS = (UTF8_SPEC, EUCJP_SPEC, SJIS_SPEC, EUCKR_SPEC)

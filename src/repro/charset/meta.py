"""HTML META charset declaration parsing (paper §3.2, method 1).

The paper's first language-identification method reads the charset
property from the document's META declaration::

    <META http-equiv="Content-Type" content="text/html; charset=EUC-JP">

This parser also understands the HTML5 short form ``<meta charset=...>``
because synthesized datasets may use either.  Parsing operates on the raw
bytes decoded as Latin-1 — charset labels are required to be ASCII, and a
parser that needed to know the encoding to find the encoding declaration
would be circular.
"""

from __future__ import annotations

import re

# How far into the document we look for the declaration.  Browsers use a
# similar prescan window (1024 bytes); we are slightly more generous.
_SCAN_WINDOW = 4096

_META_TAG_RE = re.compile(r"<meta\s+([^>]*)>", re.IGNORECASE | re.DOTALL)

_ATTR_RE = re.compile(
    r"""([a-zA-Z-]+)\s*=\s*(?:"([^"]*)"|'([^']*)'|([^\s>]+))""",
)

_CONTENT_CHARSET_RE = re.compile(r"charset\s*=\s*[\"']?([a-zA-Z0-9._-]+)", re.IGNORECASE)


def _attributes(blob: str) -> dict[str, str]:
    attrs: dict[str, str] = {}
    for match in _ATTR_RE.finditer(blob):
        name = match.group(1).lower()
        value = next(group for group in match.groups()[1:] if group is not None)
        attrs.setdefault(name, value)
    return attrs


def parse_meta_charset(html: str | bytes) -> str | None:
    """Extract the charset label declared in the document's META tags.

    Returns the raw label exactly as the author wrote it (callers pass it
    through :func:`repro.charset.languages.canonical_charset`), or ``None``
    when no declaration is present — which the paper's classifier treats
    as "not the target language".
    """
    if isinstance(html, bytes):
        text = html[:_SCAN_WINDOW].decode("latin-1")
    else:
        text = html[:_SCAN_WINDOW]

    for meta in _META_TAG_RE.finditer(text):
        attrs = _attributes(meta.group(1))
        # HTML5 short form.
        if "charset" in attrs:
            label = attrs["charset"].strip()
            return label or None
        # HTML4 http-equiv form.
        if attrs.get("http-equiv", "").lower() == "content-type" and "content" in attrs:
            content_match = _CONTENT_CHARSET_RE.search(attrs["content"])
            if content_match:
                return content_match.group(1)
    return None

"""Single-byte charset probing for Thai (TIS-620 / WINDOWS-874).

The Mozilla detector the paper cites did not support Thai — which is
exactly why the authors fell back to META tags for the Thai dataset.  We
close that gap with a positional frequency model of the TIS-620 layout:

- Thai letters occupy 0xA1–0xDA, 0xDF–0xFB; 0xDB–0xDE and 0xFC–0xFF are
  unassigned, so one such byte rules the encoding out.
- The *combining* marks (upper/lower vowels 0xD1, 0xD4–0xDA and tone
  marks 0xE7–0xEE) may only follow a Thai base character.  This adjacency
  constraint is the discriminator against Latin-1 text, where the very
  same byte values (é = 0xE9, à = 0xE0, ...) follow ASCII letters.
- WINDOWS-874 additionally assigns a handful of C1 bytes (Euro sign,
  smart quotes, dashes); their presence upgrades the verdict from
  TIS-620 to WINDOWS-874, any other C1 byte rules Thai out entirely.
- **Run parity**: double-byte CJK encodings (EUC-JP/KR) produce
  high-byte runs of strictly even length, while Thai words are
  single-byte sequences of arbitrary length.  A document whose high-byte
  runs are almost all even is far more likely mis-read CJK than Thai,
  even when every byte lands in the Thai range — so such documents are
  heavily discounted.
"""

from __future__ import annotations

_THAI_CONSONANTS = frozenset(range(0xA1, 0xCF))  # ก .. ฮ
_THAI_BASE_VOWELS = frozenset({0xD0, 0xD2, 0xD3, 0xE0, 0xE1, 0xE2, 0xE3, 0xE4, 0xE5})
_THAI_COMBINING = frozenset({0xD1, *range(0xD4, 0xDB), *range(0xE7, 0xEF)})
_THAI_DIGITS_SIGNS = frozenset({0xDF, 0xE6, *range(0xF0, 0xFC)})

_THAI_BYTES = _THAI_CONSONANTS | _THAI_BASE_VOWELS | _THAI_COMBINING | _THAI_DIGITS_SIGNS

#: bytes that can carry a combining mark (consonant, or stacked mark)
_THAI_MARK_BASES = _THAI_CONSONANTS | _THAI_COMBINING

_HARD_INVALID = frozenset({*range(0xDB, 0xDF), *range(0xFC, 0x100)})

#: Consonants that are rare in genuine Thai prose (ฃ ฅ ฆ ฌ ญ ฎ ฏ ฐ ฑ ฒ
#: ณ ฬ ฮ and friends).  Real text keeps their combined share under ~5%;
#: CJK byte streams mis-read as Thai scatter uniformly and hit ~20%+.
_RARE_THAI_CONSONANTS = frozenset(
    {0xA3, 0xA5, 0xA6, 0xAC, 0xAD, 0xAE, 0xAF, 0xB0, 0xB1, 0xB2, 0xB3, 0xCC, 0xCE}
)

#: Above this rare-consonant share the "Thai" reading is discounted.
_MAX_RARE_RATIO = 0.15

#: ฃ (0xA3) and ฅ (0xA5) are obsolete — they do not occur in genuine
#: modern Thai text at all, but they sit exactly where EUC-JP puts its
#: ideographic punctuation trail (。 = A1 A3) and katakana lead (A5), so
#: repeated sightings are near-proof of a mis-read CJK document.
_DEAD_THAI_LETTERS = frozenset({0xA3, 0xA5})

#: C1 bytes WINDOWS-874 assigns (Euro, ellipsis, quotes, dashes, bullet).
_CP874_C1 = frozenset({0x80, 0x85, 0x91, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97})

#: Minimum share of high bytes that must be Thai before we claim Thai.
_MIN_THAI_RATIO = 0.85
#: Minimum share of combining marks sitting on a legal base.
_MIN_MARK_VALIDITY = 0.90


class ThaiProber:
    """Streaming prober for Thai single-byte encodings.

    Feed the document incrementally; :meth:`confidence` reflects the
    evidence so far and :attr:`errored` turns True once a byte that no
    Thai encoding assigns has been seen.
    """

    def __init__(self) -> None:
        self.errored = False
        self._high_bytes = 0
        self._thai_bytes = 0
        self._marks = 0
        self._marks_on_base = 0
        self._saw_cp874_c1 = False
        self._previous = 0x20  # pretend the document starts after a space
        self._run_length = 0  # current high-byte run
        self._runs = 0
        self._odd_runs = 0
        self._consonants = 0
        self._rare_consonants = 0
        self._dead_letters = 0

    def feed(self, data: bytes) -> bool:
        """Consume the next chunk; returns False once ruled out."""
        if self.errored:
            return False
        previous = self._previous
        run_length = self._run_length
        for byte in data:
            if byte >= 0x80:
                if byte in _HARD_INVALID:
                    self.errored = True
                    return False
                if byte < 0xA0:
                    if byte in _CP874_C1:
                        self._saw_cp874_c1 = True
                        previous = byte
                        run_length += 1
                        continue
                    self.errored = True
                    return False
                self._high_bytes += 1
                run_length += 1
                if byte in _THAI_BYTES:
                    self._thai_bytes += 1
                if byte in _THAI_CONSONANTS:
                    self._consonants += 1
                    if byte in _RARE_THAI_CONSONANTS:
                        self._rare_consonants += 1
                    if byte in _DEAD_THAI_LETTERS:
                        self._dead_letters += 1
                if byte in _THAI_COMBINING:
                    self._marks += 1
                    if previous in _THAI_MARK_BASES:
                        self._marks_on_base += 1
            else:
                if run_length:
                    self._runs += 1
                    if run_length % 2:
                        self._odd_runs += 1
                    run_length = 0
            previous = byte
        self._previous = previous
        self._run_length = run_length
        return True

    @property
    def charset(self) -> str:
        """Best-fitting Thai charset name for the bytes seen so far."""
        return "WINDOWS-874" if self._saw_cp874_c1 else "TIS-620"

    def confidence(self) -> float:
        """Confidence in [0, 1] that the document is Thai text."""
        if self.errored or self._high_bytes == 0:
            return 0.0
        thai_ratio = self._thai_bytes / self._high_bytes
        if thai_ratio < _MIN_THAI_RATIO:
            return 0.0
        if self._marks:
            mark_validity = self._marks_on_base / self._marks
            if mark_validity < _MIN_MARK_VALIDITY:
                return 0.0
        else:
            # Thai prose without a single combining mark is vanishingly
            # rare; plain high-byte soup should not be claimed as Thai
            # with any strength.
            mark_validity = 0.5
        confidence = thai_ratio * mark_validity
        # Run-parity discount: all-even high-byte runs scream "double-
        # byte CJK mis-read as Thai" (see module docstring).  Demands a
        # healthy sample — a handful of runs can be all-even by chance.
        runs = self._runs + (1 if self._run_length else 0)
        odd_runs = self._odd_runs + (1 if self._run_length % 2 else 0)
        if runs >= 10 and odd_runs / runs < 0.05:
            confidence *= 0.25
        # Letter-frequency discount: genuine Thai prose rarely uses the
        # rare consonants; uniform CJK bytes hit them constantly.
        if self._consonants >= 20 and self._rare_consonants / self._consonants > _MAX_RARE_RATIO:
            confidence *= 0.25
        # Obsolete-letter rule: two or more sightings of the dead
        # letters is near-proof of a mis-read CJK document.
        if self._dead_letters >= 2:
            confidence *= 0.1
        return min(0.99, confidence)


class Latin1Prober:
    """Weak fallback prober for Western European single-byte text.

    Assigns a deliberately low confidence: it exists so that documents
    with a sprinkle of accented Latin letters resolve to ISO-8859-1
    rather than to nothing, never to outvote a structural match from the
    multi-byte machines or the Thai model.
    """

    _LATIN_LETTERS = frozenset({*range(0xC0, 0x100)} - {0xD7, 0xF7})

    def __init__(self) -> None:
        self._high_bytes = 0
        self._latin_after_ascii = 0
        self._previous_is_ascii_letter = False

    def feed(self, data: bytes) -> bool:
        for byte in data:
            if byte >= 0x80:
                self._high_bytes += 1
                if byte in self._LATIN_LETTERS and self._previous_is_ascii_letter:
                    self._latin_after_ascii += 1
                self._previous_is_ascii_letter = False
            else:
                self._previous_is_ascii_letter = chr(byte).isalpha()
        return True

    def confidence(self) -> float:
        if self._high_bytes == 0:
            return 0.0
        adjacency = self._latin_after_ascii / self._high_bytes
        return min(0.4, 0.05 + 0.5 * adjacency)

"""Generic coding state machine for multi-byte encoding validation.

This is the core mechanism of the Mozilla-style detector (Li & Momoi's
"coding scheme method"): each multi-byte encoding is described as a DFA
over byte *classes*.  Feeding a document through the DFA either reaches an
error state (the document cannot be that encoding) or stays valid, in
which case character statistics collected along the way feed the
distribution analysis in :mod:`repro.charset.detector`.

A machine definition consists of:

- ``byte_classes``: a 256-entry tuple mapping each byte to a small class
  id, collapsing the byte space into the distinctions the encoding cares
  about (lead byte, trail byte, ASCII, illegal, ...).
- ``transitions``: ``transitions[state][byte_class] -> next state``.
- Two distinguished states, :data:`START` and :data:`ERROR`.  Returning to
  START signals "character complete".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

CharCallback = Callable[[int, int], None]

#: The initial state; re-entering it means a full character was consumed.
START = 0
#: The dead state; once entered the input cannot be this encoding.
ERROR = -1


@dataclass(frozen=True, slots=True)
class MachineSpec:
    """Immutable definition of one encoding's DFA.

    ``transitions`` rows are indexed by state id (0 = START, 1.. =
    intermediate states); missing class entries default to ERROR, so specs
    only list legal moves.
    """

    name: str
    byte_classes: tuple[int, ...]
    transitions: tuple[dict[int, int], ...]

    def __post_init__(self) -> None:
        if len(self.byte_classes) != 256:
            raise ValueError(f"{self.name}: byte_classes must have 256 entries")
        for row in self.transitions:
            for target in row.values():
                if target != ERROR and not 0 <= target < len(self.transitions):
                    raise ValueError(f"{self.name}: transition to unknown state {target}")


@dataclass(slots=True)
class CodingStateMachine:
    """A running instance of a :class:`MachineSpec`.

    Tracks enough character statistics for the distribution analysis:
    every completed multi-byte character is reported to an optional
    callback with its lead and trail bytes.
    """

    spec: MachineSpec
    state: int = START
    errored: bool = False
    chars_total: int = 0
    chars_multibyte: int = 0
    _lead: int = field(default=-1, repr=False)

    def reset(self) -> None:
        """Return the machine to its initial state, clearing statistics."""
        self.state = START
        self.errored = False
        self.chars_total = 0
        self.chars_multibyte = 0
        self._lead = -1

    def feed(self, data: bytes, on_char: "CharCallback | None" = None) -> bool:
        """Run ``data`` through the DFA.

        Args:
            data: next chunk of the document.
            on_char: optional callback invoked as ``on_char(lead, trail)``
                for every completed multi-byte character (trail is the
                final byte; for 2-byte encodings that is the full pair).

        Returns:
            ``False`` as soon as the machine has ever errored, else ``True``.
        """
        if self.errored:
            return False
        classes = self.spec.byte_classes
        transitions = self.spec.transitions
        state = self.state
        for byte in data:
            if state == START:
                self._lead = byte
            next_state = transitions[state].get(classes[byte], ERROR)
            if next_state == ERROR:
                self.errored = True
                self.state = ERROR
                return False
            if next_state == START:
                self.chars_total += 1
                if state != START:
                    self.chars_multibyte += 1
                    if on_char is not None:
                        on_char(self._lead, byte)
            state = next_state
        self.state = state
        return True

    @property
    def mid_character(self) -> bool:
        """True when the input so far ends inside a multi-byte sequence."""
        return self.state not in (START, ERROR)

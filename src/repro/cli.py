"""Command-line interface: ``lswc-sim``.

Subcommands map onto the experiment harness:

- ``lswc-sim dataset thai`` — build (and cache) a dataset, print Table 3
  style characteristics.
- ``lswc-sim dataset build thai --out thai.lswc`` — write a dataset as
  a columnar page store (``--capture none`` streams the raw universe in
  bounded memory, the out-of-core path for million-page webs).
- ``lswc-sim dataset inspect thai.lswc`` — print a store's header,
  section sizes and capture provenance without loading any pages.
- ``lswc-sim run thai soft-focused`` — run one strategy, print the
  summary and checkpoint series.
- ``lswc-sim figure 6 --dataset thai`` — regenerate a paper figure as
  checkpoint tables (and an ASCII chart with ``--chart``).
- ``lswc-sim analyze thai`` — measure the paper's §3 language-locality
  evidence and the degree structure of a dataset.
- ``lswc-sim detect FILE`` — run the charset detector on a local file.
- ``lswc-sim serve`` — the crawl-session server: JSON commands over
  stdio (or ``--http``), with ``--load S M`` running the synthetic
  load generator instead.
"""

from __future__ import annotations

import argparse
import sys

from repro.charset.detector import detect_charset
from repro.core.strategies import available_strategies, get_strategy
from repro.errors import ReproError
from repro.experiments import figures as figures_module
from repro.experiments.datasets import load_or_build_dataset
from repro.experiments.report import render_figure, render_ascii_chart, render_table
from repro.experiments.runner import run_strategy, summary_rows
from repro.experiments.tables import table3
from repro.graphgen.profiles import profile_by_name

_FIGURES = {
    "3": figures_module.figure3,
    "4": figures_module.figure4,
    "5": figures_module.figure5,
    "6": figures_module.figure6,
    "7": figures_module.figure7,
}


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.25, help="universe scale factor")
    parser.add_argument("--seed", type=int, default=None, help="override the profile seed")
    parser.add_argument("--no-cache", action="store_true", help="rebuild instead of using the cache")


def _dataset_from_args(name: str, args: argparse.Namespace):
    profile = profile_by_name(name, seed=args.seed)
    if args.scale != 1.0:
        profile = profile.scaled(args.scale)
    cache = None if args.no_cache else "default"
    return load_or_build_dataset(profile, cache_dir=cache)


class _ListStrategiesAction(argparse.Action):
    """``--list-strategies``: print the registry and exit (like ``--help``)."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        width = max(len(name) for name in available_strategies())
        for name, description in available_strategies().items():
            print(f"{name:<{width}}  {description}")
        parser.exit(0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lswc-sim",
        description="Language specific web crawling simulator (DEWS/ICDE 2005 reproduction)",
    )
    parser.add_argument(
        "--list-strategies",
        action=_ListStrategiesAction,
        help="list the registered crawl strategies and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dataset = sub.add_parser(
        "dataset",
        help="build a dataset and print its characteristics; "
        "'build'/'inspect' work with columnar page-store files",
    )
    p_dataset.add_argument(
        "profile",
        choices=["thai", "japanese", "korean", "build", "inspect"],
        help="a profile name prints Table 3; 'build' writes a page store; "
        "'inspect' prints a store file's header",
    )
    p_dataset.add_argument(
        "target",
        nargs="?",
        default=None,
        help="for 'build': the profile to build (thai/japanese/korean); "
        "for 'inspect': the store file path",
    )
    p_dataset.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="for 'build': destination page-store file (required)",
    )
    p_dataset.add_argument(
        "--capture",
        choices=["none", "soft-limited", "hard-limited"],
        default=None,
        help="for 'build': capture crawl kind ('none' streams the raw "
        "universe, the default; others replay the paper's capture "
        "pipeline over the store)",
    )
    p_dataset.add_argument(
        "--capture-n",
        type=int,
        default=None,
        metavar="N",
        help="for 'build': tunneling depth of the capture crawl",
    )
    _add_dataset_args(p_dataset)

    p_run = sub.add_parser("run", help="run one strategy over a dataset")
    p_run.add_argument("profile", choices=["thai", "japanese", "korean"])
    p_run.add_argument(
        "strategy",
        help="a registered strategy name (see --list-strategies)",
    )
    p_run.add_argument(
        "--n",
        type=int,
        default=2,
        help="tunnelling depth N for limited-distance / hard+limited / soft+limited",
    )
    p_run.add_argument("--prioritized", action="store_true", help="prioritized limited distance")
    p_run.add_argument("--classifier", default="charset", help="charset|meta|detector|oracle")
    p_run.add_argument("--max-pages", type=int, default=None)
    p_run.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        default=None,
        help="write one JSONL span per fetched page to FILE.jsonl",
    )
    p_run.add_argument(
        "--profile",
        dest="profile_timings",
        action="store_true",
        help="print a per-component timing table after the run",
    )
    p_run.add_argument(
        "--faults",
        metavar="PROFILE.json",
        default=None,
        help="inject faults from a fault-profile JSON file",
    )
    p_run.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="override the fault profile's seed",
    )
    p_run.add_argument(
        "--adversary",
        metavar="PROFILE.json",
        default=None,
        help="attach an adversarial web layer from an adversary-profile JSON file",
    )
    p_run.add_argument(
        "--adversary-seed",
        type=int,
        default=None,
        help="override the adversary profile's seed",
    )
    p_run.add_argument(
        "--defenses",
        action="store_true",
        help="arm the standard engine defenses (trap containment, redirect "
        "limits, duplicate collapsing, soft-404 down-weighting)",
    )
    p_run.add_argument(
        "--max-url-depth",
        type=int,
        default=None,
        metavar="N",
        help="defense override: skip URLs deeper than N path segments",
    )
    p_run.add_argument(
        "--host-page-budget",
        type=int,
        default=None,
        metavar="N",
        help="defense override: stop fetching a host after N pages",
    )
    p_run.add_argument(
        "--max-redirect-hops",
        type=int,
        default=None,
        metavar="N",
        help="defense override: follow at most N redirect hops, with loop detection",
    )
    p_run.add_argument(
        "--checkpoint",
        metavar="FILE",
        default=None,
        help="write a resumable checkpoint to FILE every --checkpoint-every pages",
    )
    p_run.add_argument(
        "--checkpoint-every",
        type=int,
        default=1000,
        metavar="N",
        help="checkpoint period in crawled pages (default 1000; needs --checkpoint)",
    )
    p_run.add_argument(
        "--resume",
        metavar="FILE",
        default=None,
        help="resume the crawl from a checkpoint file",
    )
    p_run.add_argument(
        "--concurrency",
        type=int,
        default=None,
        metavar="K",
        help="crawl with K concurrent fetch slots on the virtual-time "
        "event engine (default: the paper's round-based engine)",
    )
    p_run.add_argument(
        "--latency",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request latency of the simulated clock (default 0.05)",
    )
    p_run.add_argument(
        "--bandwidth",
        type=float,
        default=None,
        metavar="BYTES_PER_S",
        help="download bandwidth of the simulated clock (default 2e6)",
    )
    p_run.add_argument(
        "--politeness",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-host politeness interval of the simulated clock (default 1.0)",
    )
    _add_dataset_args(p_run)

    p_figure = sub.add_parser("figure", help="regenerate a paper figure")
    p_figure.add_argument("number", choices=sorted(_FIGURES))
    p_figure.add_argument("--dataset", default=None, help="thai (default) or japanese")
    p_figure.add_argument("--chart", action="store_true", help="also draw ASCII charts")
    p_figure.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="fan the figure's strategy sweep out to N worker processes "
        "(0 = serial, default; results are identical either way)",
    )
    _add_dataset_args(p_figure)

    p_analyze = sub.add_parser("analyze", help="language locality + degree structure of a dataset")
    p_analyze.add_argument("profile", choices=["thai", "japanese", "korean"])
    _add_dataset_args(p_analyze)

    p_reproduce = sub.add_parser(
        "reproduce", help="regenerate every table and figure into a directory"
    )
    p_reproduce.add_argument("output_dir")
    p_reproduce.add_argument("--scale", type=float, default=0.25)
    p_reproduce.add_argument("--no-cache", action="store_true")
    p_reproduce.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="worker processes per figure sweep (0 = serial, default)",
    )

    p_detect = sub.add_parser("detect", help="detect the charset of a local file")
    p_detect.add_argument("path")

    p_serve = sub.add_parser(
        "serve",
        help="run the crawl-session server (JSON over stdio, or HTTP)",
    )
    p_serve.add_argument(
        "--http",
        metavar="HOST:PORT",
        default=None,
        help="serve HTTP on HOST:PORT instead of JSON lines on stdio",
    )
    p_serve.add_argument(
        "--spool-dir",
        metavar="DIR",
        default=None,
        help="directory for eviction spools (default: a temp directory)",
    )
    p_serve.add_argument(
        "--max-resident",
        type=int,
        default=None,
        metavar="N",
        help="evict least-recently-used sessions beyond N resident (default: unbounded)",
    )
    p_serve.add_argument(
        "--base-seed",
        type=int,
        default=None,
        help="base of the deterministic per-session dataset seeds",
    )
    p_serve.add_argument(
        "--seed-pool",
        type=int,
        default=None,
        metavar="N",
        help="seedless sessions cycle through N counter-derived dataset "
        "seeds so they share cached web spaces (default 8)",
    )
    p_serve.add_argument(
        "--dataset-cache-size",
        type=int,
        default=None,
        metavar="N",
        help="LRU cap on resolved web spaces held in memory (default 32)",
    )
    p_serve.add_argument(
        "--load",
        nargs="+",
        metavar="PROFILE",
        default=None,
        help="run the synthetic load generator instead of serving "
        "(profiles: S M L XL)",
    )
    p_serve.add_argument(
        "--load-seed",
        type=int,
        default=None,
        help="workload seed for --load (default 42)",
    )
    p_serve.add_argument(
        "--bench-out",
        metavar="FILE.json",
        default=None,
        help="with --load: write BENCH_serve_load.json-style metrics to FILE",
    )
    p_serve.add_argument(
        "--check-determinism",
        action="store_true",
        help="with --load: run each profile twice and require identical digests",
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "dataset":
        if args.profile == "build":
            return _dataset_build(args)
        if args.profile == "inspect":
            return _dataset_inspect(args)
        dataset = _dataset_from_args(args.profile, args)
        print(render_table(table3([dataset]), title="Dataset characteristics (Table 3)"))
        return 0

    if args.command == "run":
        from repro.obs import Instrumentation

        dataset = _dataset_from_args(args.profile, args)
        kwargs = {}
        if args.strategy == "limited-distance":
            kwargs = {"n": args.n, "prioritized": args.prioritized}
        elif args.strategy in ("hard+limited", "soft+limited"):
            kwargs = {"n": args.n}
        strategy = get_strategy(args.strategy, **kwargs)
        instrumentation = None
        if args.trace or args.profile_timings:
            try:
                instrumentation = Instrumentation(trace_path=args.trace)
            except OSError as exc:
                print(f"error: cannot open trace file: {exc}", file=sys.stderr)
                return 1
        faults = None
        if args.faults is not None:
            from repro.faults import load_fault_model

            faults = load_fault_model(args.faults)
            if args.fault_seed is not None:
                from repro.faults import FaultModel

                faults = FaultModel(
                    profile=faults.profile,
                    per_host=faults.per_host,
                    outages=faults.outages,
                    seed=args.fault_seed,
                )
        adversary = None
        if args.adversary is not None:
            from repro.adversary import AdversaryModel, load_adversary_model

            adversary = load_adversary_model(args.adversary)
            if args.adversary_seed is not None:
                adversary = AdversaryModel(
                    profile=adversary.profile, seed=args.adversary_seed
                )
        defenses = None
        overrides = {
            "max_url_depth": args.max_url_depth,
            "host_page_budget": args.host_page_budget,
            "max_redirect_hops": args.max_redirect_hops,
        }
        if args.defenses or any(value is not None for value in overrides.values()):
            from dataclasses import replace as _replace

            from repro.adversary import DefenseConfig

            base = DefenseConfig.standard() if args.defenses else DefenseConfig()
            defenses = _replace(
                base, **{key: value for key, value in overrides.items() if value is not None}
            )
        timing = None
        if any(
            value is not None for value in (args.latency, args.bandwidth, args.politeness)
        ):
            from repro.core.timing import TimingModel

            timing = TimingModel(
                bandwidth_bytes_per_s=args.bandwidth
                if args.bandwidth is not None
                else 2_000_000.0,
                latency_s=args.latency if args.latency is not None else 0.05,
                politeness_interval_s=args.politeness
                if args.politeness is not None
                else 1.0,
            )
        try:
            result = run_strategy(
                dataset,
                strategy,
                classifier_mode=args.classifier,
                max_pages=args.max_pages,
                instrumentation=instrumentation,
                faults=faults,
                adversary=adversary,
                defenses=defenses,
                checkpoint_every=args.checkpoint_every if args.checkpoint else None,
                checkpoint_path=args.checkpoint,
                resume_from=args.resume,
                timing=timing,
                concurrency=args.concurrency,
            )
        finally:
            if instrumentation is not None:
                instrumentation.close()
        print(render_table(summary_rows({strategy.name: result}), title="Run summary"))
        if result.resilience is not None:
            row = {
                key: value
                for key, value in result.resilience.items()
                if key != "faults_injected"
            }
            for kind, injected in result.resilience["faults_injected"].items():
                row[f"faults_{kind}"] = injected
            print()
            print(render_table([row], title="Resilience"))
        if result.adversary is not None:
            row = {
                f"inj_{kind}": count
                for kind, count in result.adversary["injected"].items()
            }
            row.update(result.adversary["defense_stats"])
            row["redirect_hops"] = result.adversary["redirect_hops"]
            row["redirect_aborts"] = result.adversary["redirect_aborts"]
            print()
            print(render_table([row], title="Adversary"))
        if instrumentation is not None and args.profile_timings:
            print()
            print(instrumentation.render_profile(title="Per-component profile"))
        if instrumentation is not None and args.trace:
            print(f"\ntrace written to {args.trace}")
        return 0

    if args.command == "figure":
        default_dataset = "japanese" if args.number == "4" else "thai"
        dataset = _dataset_from_args(args.dataset or default_dataset, args)
        figure = _FIGURES[args.number](dataset, workers=args.workers)
        print(render_figure(figure))
        if args.chart:
            for metric in figure.panels:
                print(render_ascii_chart(figure, metric))
        return 0

    if args.command == "analyze":
        from repro.analysis import degree_stats, locality_evidence

        dataset = _dataset_from_args(args.profile, args)
        evidence = locality_evidence(dataset.crawl_log, dataset.target_language)
        degrees = degree_stats(dataset.crawl_log)
        print(render_table([evidence.to_dict()], title="Language locality evidence (paper §3)"))
        print(
            render_table(
                [dict(direction=key, **stats.to_dict()) for key, stats in degrees.items()],
                title="Degree structure",
            )
        )
        return 0

    if args.command == "reproduce":
        from repro.experiments.reproduce import reproduce_all

        artifacts = reproduce_all(
            args.output_dir,
            scale=args.scale,
            cache=not args.no_cache,
            progress=print,
            workers=args.workers,
        )
        print(artifacts)
        return 0

    if args.command == "detect":
        with open(args.path, "rb") as handle:
            result = detect_charset(handle.read())
        print(f"charset={result.charset} confidence={result.confidence:.2f} language={result.language}")
        return 0

    if args.command == "serve":
        return _serve(args)

    raise AssertionError(f"unhandled command {args.command!r}")


def _dataset_build(args: argparse.Namespace) -> int:
    from repro.experiments.datasets import build_dataset_store, open_dataset_store

    if args.target not in ("thai", "japanese", "korean"):
        print(
            "error: dataset build needs a profile: "
            "lswc-sim dataset build thai --out FILE",
            file=sys.stderr,
        )
        return 2
    if args.out is None:
        print("error: dataset build needs --out FILE", file=sys.stderr)
        return 2
    profile = profile_by_name(args.target, seed=args.seed)
    if args.scale != 1.0:
        profile = profile.scaled(args.scale)
    capture_kind = args.capture if args.capture is not None else "none"
    path = build_dataset_store(
        profile, args.out, capture_kind=capture_kind, capture_n=args.capture_n
    )
    dataset = open_dataset_store(path)
    store = dataset.crawl_log
    print(
        f"wrote {path}: {store.page_count} pages, {store.url_count} urls, "
        f"{store.link_count} links, {store.nbytes} bytes "
        f"(capture={dataset.capture_kind})"
    )
    store.close()
    return 0


def _dataset_inspect(args: argparse.Namespace) -> int:
    from repro.experiments.datasets import open_dataset_store

    if args.target is None:
        print(
            "error: dataset inspect needs a store file: "
            "lswc-sim dataset inspect FILE",
            file=sys.stderr,
        )
        return 2
    dataset = open_dataset_store(args.target)
    store = dataset.crawl_log
    rows = [
        {
            "name": dataset.name,
            "pages": store.page_count,
            "urls": store.url_count,
            "links": store.link_count,
            "seeds": len(dataset.seed_urls),
            "capture": dataset.capture_kind,
            "capture_n": dataset.capture_n,
            "bytes": store.nbytes,
            "fingerprint": dataset.profile.fingerprint(),
        }
    ]
    print(render_table(rows, title=f"Page store {args.target}"))
    sections = [
        {"section": name, "bytes": size}
        for name, size in store.section_sizes().items()
    ]
    print(render_table(sections, title="Sections"))
    store.close()
    return 0


def _serve(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from repro.serve import (
        ProtocolHandler,
        SessionManager,
        make_http_server,
        run_bench,
        serve_stdio,
    )
    from repro.serve.protocol import (
        DEFAULT_BASE_SEED,
        DEFAULT_DATASET_CACHE_SIZE,
        DEFAULT_SEED_POOL,
    )

    if args.load is not None:
        bench = run_bench(
            profiles=list(args.load),
            seed=args.load_seed if args.load_seed is not None else 42,
            spool_dir=args.spool_dir,
            out_path=args.bench_out,
            check_determinism=args.check_determinism,
        )
        print(json.dumps(bench, indent=2, sort_keys=True))
        if args.bench_out:
            print(f"bench written to {args.bench_out}", file=sys.stderr)
        return 0

    spool_dir = args.spool_dir
    tmp_spool = None
    if spool_dir is None:
        tmp_spool = tempfile.TemporaryDirectory(prefix="lswc-serve-")
        spool_dir = tmp_spool.name
    manager = SessionManager(spool_dir=spool_dir, max_resident=args.max_resident)
    handler = ProtocolHandler(
        manager,
        base_seed=args.base_seed if args.base_seed is not None else DEFAULT_BASE_SEED,
        seed_pool=args.seed_pool if args.seed_pool is not None else DEFAULT_SEED_POOL,
        dataset_cache_size=args.dataset_cache_size
        if args.dataset_cache_size is not None
        else DEFAULT_DATASET_CACHE_SIZE,
    )
    try:
        if args.http is not None:
            host, _, port = args.http.rpartition(":")
            server = make_http_server(handler, host or "127.0.0.1", int(port))
            print(
                f"serving crawl sessions on http://{server.server_address[0]}"
                f":{server.server_address[1]}/ (POST JSON commands)",
                file=sys.stderr,
            )
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                server.server_close()
                manager.close_all()
            return 0
        serve_stdio(handler, sys.stdin, sys.stdout)
        manager.close_all()
        return 0
    finally:
        if tmp_spool is not None:
            tmp_spool.cleanup()


if __name__ == "__main__":
    raise SystemExit(main())

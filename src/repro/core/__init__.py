"""The paper's contribution: language specific crawling on a simulator.

- :mod:`~repro.core.frontier` — URL queue implementations.
- :mod:`~repro.core.classifier` — relevance judgment (paper §3.2).
- :mod:`~repro.core.visitor` — crawler mechanics over the virtual web.
- :mod:`~repro.core.strategies` — priority-assignment strategies (§3.3).
- :mod:`~repro.core.engine` — the unified stage-pipeline crawl loop (§4).
- :mod:`~repro.core.session` — the crawl-session lifecycle over the engine.
- :mod:`~repro.core.simulator` — the one-shot face of a session.
- :mod:`~repro.core.metrics` — harvest rate / coverage / queue size (§3.4).
- :mod:`~repro.core.timing` — optional transfer-delay model (§6 future work).
"""

from repro.core.classifier import Classifier, ClassifierMode
from repro.core.distiller import Distiller
from repro.core.engine import (
    CheckpointHook,
    CrawlEngine,
    EngineHook,
    EngineStage,
    EngineStep,
    STAGE_ORDER,
)
from repro.core.frontier import (
    Candidate,
    FIFOFrontier,
    Frontier,
    PriorityFrontier,
    ReprioritizableFrontier,
)
from repro.core.metrics import CrawlSummary, MetricSeries
from repro.core.parallel import (
    ParallelConfig,
    ParallelCrawlSimulator,
    ParallelResult,
    PartitionMode,
)
from repro.core.politeness import HostQueueFrontier, PoliteOrderingStrategy
from repro.core.session import (
    CrawlRequest,
    CrawlResult,
    CrawlSession,
    SessionConfig,
    SessionStatus,
    SimulationConfig,
    report_payload,
)
from repro.core.simulator import Simulator
from repro.core.spilling import SpillConfig, SpillingFrontier, SpillingStrategy
from repro.core.summary import CrawlReport
from repro.core.strategies import (
    BacklinkCountStrategy,
    BreadthFirstStrategy,
    CrawlStrategy,
    DistilledSoftStrategy,
    LimitedDistanceStrategy,
    SimpleStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
    strategy_by_name,
)
from repro.core.timing import TimingModel
from repro.core.visitor import Visitor

__all__ = [
    "Frontier",
    "FIFOFrontier",
    "PriorityFrontier",
    "ReprioritizableFrontier",
    "HostQueueFrontier",
    "SpillConfig",
    "SpillingFrontier",
    "Candidate",
    "Classifier",
    "ClassifierMode",
    "Visitor",
    "CrawlStrategy",
    "BreadthFirstStrategy",
    "SimpleStrategy",
    "LimitedDistanceStrategy",
    "DistilledSoftStrategy",
    "BacklinkCountStrategy",
    "PoliteOrderingStrategy",
    "SpillingStrategy",
    "Distiller",
    "ParallelCrawlSimulator",
    "ParallelConfig",
    "ParallelResult",
    "PartitionMode",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "strategy_by_name",
    "CrawlEngine",
    "EngineHook",
    "EngineStage",
    "EngineStep",
    "CheckpointHook",
    "STAGE_ORDER",
    "Simulator",
    "SimulationConfig",
    "CrawlResult",
    "CrawlRequest",
    "CrawlSession",
    "SessionConfig",
    "SessionStatus",
    "report_payload",
    "CrawlReport",
    "MetricSeries",
    "CrawlSummary",
    "TimingModel",
]

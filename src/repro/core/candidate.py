"""The crawl candidate and its one canonical serialised form.

Every component that persists candidates — checkpoint snapshots of the
frontiers, the spilling frontier's overflow file — round-trips through
:func:`candidate_to_dict` / :func:`candidate_from_dict` defined here, so
there is exactly one wire format and one re-interning path.  A property
test (``tests/test_core_frontier.py``) pins the round-trip as the
identity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.urlkit.normalize import intern_url


@dataclass(frozen=True, slots=True)
class Candidate:
    """A URL scheduled for crawling, with strategy bookkeeping.

    Attributes:
        url: normalised URL to fetch.
        priority: larger pops earlier in a
            :class:`~repro.core.frontier.PriorityFrontier`; ignored by
            :class:`~repro.core.frontier.FIFOFrontier`.
        distance: number of consecutive irrelevant referrers on the path
            this URL was discovered through (limited-distance strategies).
        referrer: URL of the page this candidate was extracted from
            (None for seeds); kept for tracing and tests.
    """

    url: str
    priority: int = 0
    distance: int = 0
    referrer: str | None = None


def candidate_to_dict(candidate: Candidate) -> dict:
    """Compact JSON form of a candidate (checkpoint/spill serialisation).

    Sparse by design: default-valued fields are omitted, so the common
    case (a seed-priority candidate with no referrer) is one key.
    """
    entry: dict = {"u": candidate.url}
    if candidate.priority:
        entry["p"] = candidate.priority
    if candidate.distance:
        entry["d"] = candidate.distance
    if candidate.referrer is not None:
        entry["r"] = candidate.referrer
    return entry


def candidate_from_dict(entry: dict) -> Candidate:
    """Inverse of :func:`candidate_to_dict`.

    URLs are re-interned on the way in, so a resumed (or refilled) crawl
    regains the pointer-comparison fast path the original run had.
    """
    return Candidate(
        url=intern_url(entry["u"]),
        priority=entry.get("p", 0),
        distance=entry.get("d", 0),
        referrer=entry.get("r"),
    )

"""Deterministic crawl checkpoints: serialise, kill, resume, replay.

A multi-week archiving crawl must survive its own process dying.  This
module gives the simulator that property with one invariant, pinned by
the golden differential suite: **a run checkpointed every K pages,
killed, and resumed replays byte-identical to an uninterrupted run** —
same fetch order, same metrics series, same fault/retry sequence.

To make that true, a checkpoint captures *every* piece of engine state
that feeds ordering or metrics:

- the frontier, entry by entry, tiebreak counters included;
- the ``scheduled`` set (everything ever enqueued);
- the :class:`~repro.core.metrics.MetricsRecorder` (accumulated counts
  and the sampled series so far);
- the visitor's transfer accounting;
- the :class:`~repro.core.timing.TimingModel` clock, when attached;
- the fault layer's injection state (global fetch index, per-URL
  attempt counts) and the circuit-breaker board, when attached;
- the resilient loop's requeue budgets and tallies.

On-disk format: JSONL.  Line 1 is a header (format name/version,
strategy, step count); each further line is one ``{"section": name,
"data": ...}`` record.  Writes go through a temp file and an atomic
``os.replace``, so a crash mid-checkpoint leaves the previous
checkpoint intact, never a torn file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import CheckpointError

FORMAT_NAME = "repro-lswc-checkpoint"
#: Version 2 added the optional ``sched`` section (the event-driven
#: engine's in-flight fetch set); version 3 added the optional
#: ``adversary`` (synthetic-web layer: redirect-target map, injection
#: tallies) and ``defenses`` (engine countermeasure state: fingerprint
#: set, per-host budgets) sections.  Older files are still readable —
#: they are exactly version-3 files without the newer sections.
FORMAT_VERSION = 3
_READABLE_VERSIONS = (1, 2, 3)

#: Sections a checkpoint may carry.  ``frontier``/``scheduled``/
#: ``recorder``/``visitor``/``loop`` are always present; the rest are
#: optional, matching the run's attached extras.
_KNOWN_SECTIONS = (
    "frontier",
    "scheduled",
    "recorder",
    "visitor",
    "loop",
    "timing",
    "faults",
    "breakers",
    "sched",
    "adversary",
    "defenses",
)


@dataclass(slots=True)
class CheckpointState:
    """One crawl's resumable state, section by section.

    ``loop`` carries the resilient loop's own bookkeeping: completed
    step count, global pop sequence, per-URL requeue budgets and the
    running resilience tallies.
    """

    strategy: str
    steps: int
    frontier: dict
    scheduled: list[str]
    recorder: dict
    visitor: dict
    loop: dict
    timing: dict | None = None
    faults: dict | None = None
    breakers: dict | None = None
    #: In-flight event set of a :class:`repro.core.sched.
    #: VirtualTimeEngine` run (format v2); None for round-based runs.
    sched: dict | None = None
    #: Adversary-layer state (format v3): redirect-target map plus
    #: injection tallies; None when no adversary is attached.
    adversary: dict | None = None
    #: Engine defense state (format v3): fingerprint set and per-host
    #: counters; None when no defenses are armed.
    defenses: dict | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def sections(self) -> list[tuple[str, Any]]:
        rows: list[tuple[str, Any]] = [
            ("frontier", self.frontier),
            ("scheduled", self.scheduled),
            ("recorder", self.recorder),
            ("visitor", self.visitor),
            ("loop", self.loop),
        ]
        if self.timing is not None:
            rows.append(("timing", self.timing))
        if self.faults is not None:
            rows.append(("faults", self.faults))
        if self.breakers is not None:
            rows.append(("breakers", self.breakers))
        if self.sched is not None:
            rows.append(("sched", self.sched))
        if self.adversary is not None:
            rows.append(("adversary", self.adversary))
        if self.defenses is not None:
            rows.append(("defenses", self.defenses))
        return rows


def write_checkpoint(path: str | Path, state: CheckpointState) -> None:
    """Atomically serialise ``state`` to ``path`` (JSONL).

    The write is all-or-nothing: data goes to ``<path>.tmp`` first and
    is renamed over the destination only after a successful flush, so
    an interrupted checkpoint never corrupts the last good one.
    """
    path = Path(path)
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "strategy": state.strategy,
        "steps": state.steps,
    }
    tmp_path = path.with_name(path.name + ".tmp")
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for section, data in state.sections():
                handle.write(
                    json.dumps({"section": section, "data": data}, sort_keys=True) + "\n"
                )
        os.replace(tmp_path, path)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc


def read_checkpoint(path: str | Path) -> CheckpointState:
    """Load a checkpoint written by :func:`write_checkpoint`.

    Raises:
        CheckpointError: missing file, foreign format, unsupported
            version, malformed section line, or missing required
            sections.
    """
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            header_line = handle.readline()
            if not header_line:
                raise CheckpointError(f"{path}: empty checkpoint file")
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError as exc:
                raise CheckpointError(f"{path}: malformed checkpoint header: {exc}") from exc
            if header.get("format") != FORMAT_NAME:
                raise CheckpointError(
                    f"{path}: not a crawl checkpoint (format={header.get('format')!r})"
                )
            if header.get("version") not in _READABLE_VERSIONS:
                raise CheckpointError(
                    f"{path}: unsupported checkpoint version {header.get('version')!r}"
                )
            sections: dict[str, Any] = {}
            for line_number, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    name = record["section"]
                    data = record["data"]
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    raise CheckpointError(
                        f"{path}:{line_number}: malformed checkpoint section: {exc}"
                    ) from exc
                if name not in _KNOWN_SECTIONS:
                    raise CheckpointError(f"{path}:{line_number}: unknown section {name!r}")
                sections[name] = data
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc

    missing = [
        name
        for name in ("frontier", "scheduled", "recorder", "visitor", "loop")
        if name not in sections
    ]
    if missing:
        raise CheckpointError(f"{path}: checkpoint is missing sections {missing}")
    return CheckpointState(
        strategy=header.get("strategy", ""),
        steps=header.get("steps", 0),
        frontier=sections["frontier"],
        scheduled=sections["scheduled"],
        recorder=sections["recorder"],
        visitor=sections["visitor"],
        loop=sections["loop"],
        timing=sections.get("timing"),
        faults=sections.get("faults"),
        breakers=sections.get("breakers"),
        sched=sections.get("sched"),
        adversary=sections.get("adversary"),
        defenses=sections.get("defenses"),
    )

"""Page relevance determination (paper §3.2).

"In language specific web crawling, a given page is considered relevant
if it is written in the target language."  Relevance is binary (score 1
or 0), derived from the page's character encoding scheme, which can be
established four ways:

``charset``
    Trust the charset recorded in the crawl log — equivalent to reading
    the server/author declaration without touching bytes.  This is the
    paper's Thai-dataset method and the default.
``meta``
    Parse the META declaration out of the synthesized HTML body; like
    ``charset`` but exercising the real parsing path end to end.
``detector``
    Run the composite byte-distribution detector on the body — the
    paper's Japanese-dataset method (the "Mozilla Charset Detector").
``oracle``
    Use the generator's ground-truth language.  Not available to real
    crawlers; exists to upper-bound classifier error in ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from time import perf_counter

from repro.charset.detector import detect_charset
from repro.charset.languages import Language, language_of_charset
from repro.charset.meta import parse_meta_charset
from repro.errors import ConfigError
from repro.webspace.virtualweb import FetchResponse


class ClassifierMode(Enum):
    """How the classifier establishes a page's language."""

    CHARSET = "charset"
    META = "meta"
    DETECTOR = "detector"
    ORACLE = "oracle"


@dataclass(frozen=True, slots=True)
class Judgment:
    """Outcome of classifying one fetched page."""

    relevant: bool
    language: Language
    charset: str | None

    @property
    def score(self) -> float:
        """Relevance score as the paper defines it: 1.0 or 0.0."""
        return 1.0 if self.relevant else 0.0


_IRRELEVANT = Judgment(relevant=False, language=Language.UNKNOWN, charset=None)


class ClassifierCache:
    """Bounded LRU of classification outcomes, keyed by content identity.

    Strategy sweeps re-classify the same bytes once per strategy: four
    strategies over one dataset run the charset detector four times on
    every body.  Judgments depend only on (mode, target language,
    content), and :class:`Judgment` is frozen, so memoising them is
    exact — the cached and uncached classifier agree on every input
    (``tests/test_prop_classifier_cache.py`` pins this property).

    Keys are built by the classifier: the declared charset string in
    ``charset`` mode, the body bytes in ``meta``/``detector`` mode (see
    :meth:`Classifier._cache_key`).  One cache may be shared by several
    classifiers — the key carries mode and target language.

    Hit/miss/eviction counters are always on (two int increments per
    lookup); the simulator publishes them as ``classifier.cache.*``
    gauges through :mod:`repro.obs` at the end of an instrumented run.
    """

    __slots__ = ("max_entries", "hits", "misses", "evictions", "_entries")

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries < 1:
            raise ConfigError("ClassifierCache max_entries must be >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: dict[object, Judgment] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: object) -> Judgment | None:
        """The cached judgment for ``key``, refreshed as most recent."""
        entries = self._entries
        judgment = entries.get(key)
        if judgment is None:
            self.misses += 1
            return None
        self.hits += 1
        # Move to the MRU end; dicts preserve insertion order, so the
        # first key is always the least recently used.
        del entries[key]
        entries[key] = judgment
        return judgment

    def store(self, key: object, judgment: Judgment) -> None:
        """Insert a judgment, evicting the least recently used on overflow."""
        entries = self._entries
        if key not in entries and len(entries) >= self.max_entries:
            del entries[next(iter(entries))]
            self.evictions += 1
        entries[key] = judgment

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Counter snapshot (the shape the obs gauges publish)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
        }


class Classifier:
    """Judges whether fetched pages are in the target language.

    Args:
        target_language: the language that counts as relevant.
        mode: how the page's language is established (see module doc).
        cache: optional :class:`ClassifierCache`; when given, judgments
            are memoised by content identity.  Share one cache across
            the classifiers of a strategy sweep to skip re-detection.
    """

    def __init__(
        self,
        target_language: Language,
        mode: ClassifierMode | str = ClassifierMode.CHARSET,
        cache: ClassifierCache | None = None,
    ) -> None:
        if isinstance(mode, str):
            try:
                mode = ClassifierMode(mode)
            except ValueError:
                valid = ", ".join(m.value for m in ClassifierMode)
                raise ConfigError(f"unknown classifier mode {mode!r}; expected one of {valid}") from None
        self.target_language = target_language
        self.mode = mode
        self.cache = cache
        self._instr = None

    def bind_instrumentation(self, instrumentation) -> None:
        """Attach a :class:`repro.obs.Instrumentation` for timing.

        With a hub bound, every judgment is timed under
        "classifier.judge" and tallied into the "classifier.relevant" /
        "classifier.irrelevant" counters.  The simulator binds this on
        instrumented runs; pass None to detach.
        """
        self._instr = instrumentation

    def judge(self, response: FetchResponse) -> Judgment:
        """Classify one fetch response.

        Non-OK and non-HTML responses are never relevant — there is no
        document in the target language to archive.
        """
        instr = self._instr
        if instr is None:
            return self._judge(response)
        started = perf_counter()
        judgment = self._judge(response)
        instr.observe("classifier.judge", perf_counter() - started)
        instr.count("classifier.relevant" if judgment.relevant else "classifier.irrelevant")
        return judgment

    def _cache_key(self, response: FetchResponse) -> object | None:
        """Content-identity key of a response, or None when uncacheable.

        ``charset`` mode classifies nothing but the declared charset, so
        that string *is* the content identity; ``meta``/``detector``
        read the body bytes, so the bytes are.  Mode and target language
        are part of the key so one cache can serve a whole sweep.
        """
        if self.mode is ClassifierMode.CHARSET:
            return (self.mode, self.target_language, response.charset)
        if response.body is None:
            return None  # the mode needs a body; let _judge raise
        return (self.mode, self.target_language, response.body)

    def _judge(self, response: FetchResponse) -> Judgment:
        if not response.ok or not response.is_html:
            return _IRRELEVANT
        if response.truncated:
            # A truncated/garbled body cannot be classified: its bytes
            # defeat the charset machines and its META tag may be gone.
            # Degrade to "irrelevant" — before the cache, so garbage
            # never shadows the clean judgment of the same content.
            return _IRRELEVANT

        if self.mode is ClassifierMode.ORACLE:
            if response.record is None:
                return _IRRELEVANT
            language = response.record.true_language
            return Judgment(
                relevant=language is self.target_language,
                language=language,
                charset=response.charset,
            )

        cache = self.cache
        if cache is not None:
            key = self._cache_key(response)
            if key is not None:
                judgment = cache.lookup(key)
                if judgment is None:
                    judgment = self._classify(response)
                    cache.store(key, judgment)
                return judgment
        return self._classify(response)

    def _classify(self, response: FetchResponse) -> Judgment:
        """The uncached classification path (OK HTML, non-oracle modes)."""
        if self.mode is ClassifierMode.CHARSET:
            charset = response.charset
        elif self.mode is ClassifierMode.META:
            if response.body is None:
                raise ConfigError(
                    "classifier mode 'meta' requires body synthesis "
                    "(VirtualWebSpace(body_synthesizer=...))"
                )
            charset = parse_meta_charset(response.body)
        else:  # DETECTOR
            if response.body is None:
                raise ConfigError(
                    "classifier mode 'detector' requires body synthesis "
                    "(VirtualWebSpace(body_synthesizer=...))"
                )
            charset = detect_charset(response.body).charset

        language = language_of_charset(charset)
        return Judgment(
            relevant=language is self.target_language,
            language=language,
            charset=charset,
        )

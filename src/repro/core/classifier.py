"""Page relevance determination (paper §3.2).

"In language specific web crawling, a given page is considered relevant
if it is written in the target language."  Relevance is binary (score 1
or 0), derived from the page's character encoding scheme, which can be
established four ways:

``charset``
    Trust the charset recorded in the crawl log — equivalent to reading
    the server/author declaration without touching bytes.  This is the
    paper's Thai-dataset method and the default.
``meta``
    Parse the META declaration out of the synthesized HTML body; like
    ``charset`` but exercising the real parsing path end to end.
``detector``
    Run the composite byte-distribution detector on the body — the
    paper's Japanese-dataset method (the "Mozilla Charset Detector").
``oracle``
    Use the generator's ground-truth language.  Not available to real
    crawlers; exists to upper-bound classifier error in ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from time import perf_counter

from repro.charset.detector import detect_charset
from repro.charset.languages import Language, language_of_charset
from repro.charset.meta import parse_meta_charset
from repro.errors import ConfigError
from repro.webspace.virtualweb import FetchResponse


class ClassifierMode(Enum):
    """How the classifier establishes a page's language."""

    CHARSET = "charset"
    META = "meta"
    DETECTOR = "detector"
    ORACLE = "oracle"


@dataclass(frozen=True, slots=True)
class Judgment:
    """Outcome of classifying one fetched page."""

    relevant: bool
    language: Language
    charset: str | None

    @property
    def score(self) -> float:
        """Relevance score as the paper defines it: 1.0 or 0.0."""
        return 1.0 if self.relevant else 0.0


_IRRELEVANT = Judgment(relevant=False, language=Language.UNKNOWN, charset=None)


class Classifier:
    """Judges whether fetched pages are in the target language."""

    def __init__(
        self,
        target_language: Language,
        mode: ClassifierMode | str = ClassifierMode.CHARSET,
    ) -> None:
        if isinstance(mode, str):
            try:
                mode = ClassifierMode(mode)
            except ValueError:
                valid = ", ".join(m.value for m in ClassifierMode)
                raise ConfigError(f"unknown classifier mode {mode!r}; expected one of {valid}") from None
        self.target_language = target_language
        self.mode = mode
        self._instr = None

    def bind_instrumentation(self, instrumentation) -> None:
        """Attach a :class:`repro.obs.Instrumentation` for timing.

        With a hub bound, every judgment is timed under
        "classifier.judge" and tallied into the "classifier.relevant" /
        "classifier.irrelevant" counters.  The simulator binds this on
        instrumented runs; pass None to detach.
        """
        self._instr = instrumentation

    def judge(self, response: FetchResponse) -> Judgment:
        """Classify one fetch response.

        Non-OK and non-HTML responses are never relevant — there is no
        document in the target language to archive.
        """
        instr = self._instr
        if instr is None:
            return self._judge(response)
        started = perf_counter()
        judgment = self._judge(response)
        instr.observe("classifier.judge", perf_counter() - started)
        instr.count("classifier.relevant" if judgment.relevant else "classifier.irrelevant")
        return judgment

    def _judge(self, response: FetchResponse) -> Judgment:
        if not response.ok or not response.is_html:
            return _IRRELEVANT

        if self.mode is ClassifierMode.ORACLE:
            if response.record is None:
                return _IRRELEVANT
            language = response.record.true_language
            return Judgment(
                relevant=language is self.target_language,
                language=language,
                charset=response.charset,
            )

        if self.mode is ClassifierMode.CHARSET:
            charset = response.charset
        elif self.mode is ClassifierMode.META:
            if response.body is None:
                raise ConfigError(
                    "classifier mode 'meta' requires body synthesis "
                    "(VirtualWebSpace(body_synthesizer=...))"
                )
            charset = parse_meta_charset(response.body)
        else:  # DETECTOR
            if response.body is None:
                raise ConfigError(
                    "classifier mode 'detector' requires body synthesis "
                    "(VirtualWebSpace(body_synthesizer=...))"
                )
            charset = detect_charset(response.body).charset

        language = language_of_charset(charset)
        return Judgment(
            relevant=language is self.target_language,
            language=language,
            charset=charset,
        )

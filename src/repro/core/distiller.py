"""The distiller: hub identification over the crawled subgraph.

The focused crawling system the paper adapts has three components; the
paper's first-version crawler implements two (classifier + crawler) and
omits the third: "a distiller which identifies hubs, i.e. pages with
large lists of links to relevant web pages ... employs a modified
version of Kleinberg's algorithm [8] ... executed intermittently and/or
concurrently during the crawl process.  The priority values of URLs
identified as hubs and their immediate neighbors are raised" (§2.1).

This module supplies that component.  :class:`Distiller` accumulates the
link structure observed by the crawl and, on demand, runs the modified
HITS iteration of Chakrabarti et al.: authority mass flows only into
*relevant* pages, so a hub is specifically a page pointing at many
relevant pages — not merely a well-linked page.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Distiller:
    """Incremental relevance-weighted HITS over the observed crawl graph.

    Usage: call :meth:`observe` for every crawled page, then
    :meth:`compute_hubs` intermittently (it is O(edges × iterations)).

    Attributes:
        iterations: power-iteration rounds per computation.
        top_fraction: share of crawled pages reported as hubs.
    """

    iterations: int = 15
    top_fraction: float = 0.05
    _outlinks: dict[str, tuple[str, ...]] = field(default_factory=dict)
    _relevant: set[str] = field(default_factory=set)

    def observe(self, url: str, outlinks: tuple[str, ...], relevant: bool) -> None:
        """Record one crawled page and its extracted links."""
        self._outlinks[url] = outlinks
        if relevant:
            self._relevant.add(url)

    @property
    def pages_observed(self) -> int:
        return len(self._outlinks)

    def compute_hubs(self) -> dict[str, float]:
        """Hub scores of the crawled pages (normalised to max 1.0).

        Only links into *relevant* crawled pages carry authority (the
        "modified version of Kleinberg's algorithm": off-language pages
        must not certify hubs), and only crawled pages can be hubs.
        """
        if not self._outlinks or not self._relevant:
            return {}

        hub = {url: 1.0 for url in self._outlinks}
        authority = {url: 1.0 for url in self._relevant}

        for _ in range(self.iterations):
            # authority(p) = sum of hub scores of crawled pages linking to
            # p, restricted to relevant p.
            new_authority = dict.fromkeys(authority, 0.0)
            for url, links in self._outlinks.items():
                weight = hub[url]
                for target in links:
                    if target in new_authority:
                        new_authority[target] += weight
            # hub(p) = sum of authority of the relevant pages p links to.
            new_hub = dict.fromkeys(hub, 0.0)
            for url, links in self._outlinks.items():
                score = 0.0
                for target in links:
                    score += new_authority.get(target, 0.0)
                new_hub[url] = score

            authority = _normalised(new_authority)
            hub = _normalised(new_hub)

        return hub

    def top_hubs(self) -> dict[str, float]:
        """The strongest hubs (top ``top_fraction`` by score, score > 0)."""
        hubs = self.compute_hubs()
        if not hubs:
            return {}
        count = max(1, int(len(hubs) * self.top_fraction))
        ranked = sorted(hubs.items(), key=lambda item: item[1], reverse=True)[:count]
        return {url: score for url, score in ranked if score > 0.0}

    def hub_neighbors(self, hubs: dict[str, float]) -> dict[str, float]:
        """Uncrawled-or-crawled neighbor URLs of the given hubs.

        Returns each neighbor with the best hub score among its hub
        referrers — the set whose queue priorities the distiller raises.
        """
        neighbors: dict[str, float] = {}
        for url, score in hubs.items():
            for target in self._outlinks.get(url, ()):
                if score > neighbors.get(target, 0.0):
                    neighbors[target] = score
        return neighbors


def _normalised(scores: dict[str, float]) -> dict[str, float]:
    peak = max(scores.values(), default=0.0)
    if peak <= 0.0:
        return scores
    return {url: score / peak for url, score in scores.items()}

"""The distiller: hub identification over the crawled subgraph.

The focused crawling system the paper adapts has three components; the
paper's first-version crawler implements two (classifier + crawler) and
omits the third: "a distiller which identifies hubs, i.e. pages with
large lists of links to relevant web pages ... employs a modified
version of Kleinberg's algorithm [8] ... executed intermittently and/or
concurrently during the crawl process.  The priority values of URLs
identified as hubs and their immediate neighbors are raised" (§2.1).

This module supplies that component.  :class:`Distiller` accumulates the
link structure observed by the crawl and, on demand, runs the modified
HITS iteration of Chakrabarti et al.: authority mass flows only into
*relevant* pages, so a hub is specifically a page pointing at many
relevant pages — not merely a well-linked page.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Distiller:
    """Incremental relevance-weighted HITS over the observed crawl graph.

    Usage: call :meth:`observe` for every crawled page, then
    :meth:`compute_hubs` intermittently (it is O(edges × iterations)).

    Attributes:
        iterations: power-iteration rounds per computation.
        top_fraction: share of crawled pages reported as hubs.
    """

    iterations: int = 15
    top_fraction: float = 0.05
    _outlinks: dict[str, tuple[str, ...]] = field(default_factory=dict)
    _relevant: set[str] = field(default_factory=set)

    def observe(self, url: str, outlinks: tuple[str, ...], relevant: bool) -> None:
        """Record one crawled page and its extracted links."""
        self._outlinks[url] = outlinks
        if relevant:
            self._relevant.add(url)

    @property
    def pages_observed(self) -> int:
        return len(self._outlinks)

    def compute_hubs(self) -> dict[str, float]:
        """Hub scores of the crawled pages (normalised to max 1.0).

        Only links into *relevant* crawled pages carry authority (the
        "modified version of Kleinberg's algorithm": off-language pages
        must not certify hubs), and only crawled pages can be hubs.

        Vectorised: the observed graph is flattened once into source /
        target index arrays over the edges that can carry authority
        (crawled source → relevant target), then each power iteration is
        two ``np.bincount`` scatter-adds instead of a Python loop over
        every edge — the difference between O(edges × iterations) in
        interpreter time and in C time.  Edges into irrelevant targets
        contribute nothing in the scalar formulation, so dropping them
        up front changes no score.
        """
        if not self._outlinks or not self._relevant:
            return {}

        page_index = {url: index for index, url in enumerate(self._outlinks)}
        relevant_index = {url: index for index, url in enumerate(self._relevant)}
        sources: list[int] = []
        targets: list[int] = []
        for url, links in self._outlinks.items():
            source = page_index[url]
            for target in links:
                target_idx = relevant_index.get(target)
                if target_idx is not None:
                    sources.append(source)
                    targets.append(target_idx)

        n_pages = len(page_index)
        n_relevant = len(relevant_index)
        if not sources:
            return dict.fromkeys(self._outlinks, 0.0)
        src = np.asarray(sources, dtype=np.intp)
        dst = np.asarray(targets, dtype=np.intp)

        hub = np.ones(n_pages)
        for _ in range(self.iterations):
            # authority(p) = sum of hub scores of crawled pages linking
            # to p, restricted to relevant p.
            authority = np.bincount(dst, weights=hub[src], minlength=n_relevant)
            peak = authority.max()
            if peak > 0.0:
                authority /= peak
            # hub(p) = sum of authority of the relevant pages p links to.
            hub = np.bincount(src, weights=authority[dst], minlength=n_pages)
            peak = hub.max()
            if peak > 0.0:
                hub /= peak

        return {url: float(hub[index]) for url, index in page_index.items()}

    def top_hubs(self) -> dict[str, float]:
        """The strongest hubs (top ``top_fraction`` by score, score > 0)."""
        hubs = self.compute_hubs()
        if not hubs:
            return {}
        count = max(1, int(len(hubs) * self.top_fraction))
        ranked = sorted(hubs.items(), key=lambda item: item[1], reverse=True)[:count]
        return {url: score for url, score in ranked if score > 0.0}

    def hub_neighbors(self, hubs: dict[str, float]) -> dict[str, float]:
        """Uncrawled-or-crawled neighbor URLs of the given hubs.

        Returns each neighbor with the best hub score among its hub
        referrers — the set whose queue priorities the distiller raises.
        """
        neighbors: dict[str, float] = {}
        for url, score in hubs.items():
            for target in self._outlinks.get(url, ()):
                if score > neighbors.get(target, 0.0):
                    neighbors[target] = score
        return neighbors

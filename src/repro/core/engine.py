"""The unified crawl engine: one loop, explicit stages, pluggable hooks.

The paper's simulator is one conceptual machine — fetch, classify by
charset, extract URLs, prioritize (§4, Figure 2) — and this module is
its single implementation.  One crawl step is an explicit stage
pipeline::

    pop → gate (breaker) → fetch → classify → extract → prioritize → schedule

followed by a step epilogue (metrics record, the per-fetch callback,
hook ``on_step`` dispatch).  Every capability that used to be a forked
copy of the loop attaches here instead:

- **observability** subscribes to stage timings and step completions
  (:class:`repro.obs.hooks.StepSpanHook`);
- **resilience** (retry/backoff, requeue, circuit breakers) is engine
  policy — it alters control flow, so it is configured, not hooked —
  while its *accounting* surfaces through hook events
  (:meth:`EngineHook.on_retry` etc.);
- **checkpointing** is a step observer (:class:`CheckpointHook`).

Hook dispatch is pay-for-what-you-use: at construction the engine
compiles, per event, a tuple of the hook methods actually *overridden*
(``type(hook).on_x is not EngineHook.on_x``).  An event nobody listens
to costs one ``is not None`` check per step; an empty hook stack costs
the same as no hook stack.  That is what lets a single loop serve the
golden-trace fast path and the fully instrumented profile without
byte-level divergence — the property ``tests/golden`` pins.

The engine is single-step capable (``run(budget=1)``) and takes an
optional ``router`` replacing the inline schedule stage, which is how
:class:`repro.core.parallel.ParallelCrawlSimulator` drives one engine
per partition round-robin.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.adversary.defense import NAIVE_REDIRECT_CAP
from repro.core.events import CrawlEvent, FetchCallback
from repro.core.frontier import Candidate, Frontier
from repro.faults.model import RETRYABLE_FAULTS
from repro.urlkit.normalize import intern_url, url_site_key

if TYPE_CHECKING:
    from repro.adversary.defense import DefensePolicy
    from repro.core.classifier import Classifier, Judgment
    from repro.core.metrics import MetricsRecorder
    from repro.core.strategies.base import CrawlStrategy
    from repro.core.timing import TimingModel
    from repro.core.visitor import Visitor
    from repro.faults.model import FaultModel
    from repro.faults.resilience import HostBreakers, RetryPolicy
    from repro.webspace.virtualweb import FetchResponse


class EngineStage(Enum):
    """The seven stages of one crawl step, in pipeline order."""

    POP = "pop"
    GATE = "gate"
    FETCH = "fetch"
    CLASSIFY = "classify"
    EXTRACT = "extract"
    PRIORITIZE = "prioritize"
    SCHEDULE = "schedule"


#: Pipeline order of the stages of one completed step.
STAGE_ORDER: tuple[EngineStage, ...] = (
    EngineStage.POP,
    EngineStage.GATE,
    EngineStage.FETCH,
    EngineStage.CLASSIFY,
    EngineStage.EXTRACT,
    EngineStage.PRIORITIZE,
    EngineStage.SCHEDULE,
)


@dataclass(slots=True)
class EngineStep:
    """Mutable view of the step in flight, shared with hooks.

    One instance lives for the whole run and is *reused* across steps —
    hooks must copy out anything they keep.  Fields fill in stage order;
    a field is only meaningful from its stage onwards (``response`` is
    None during POP, populated from FETCH).
    """

    steps: int = 0
    candidate: Optional[Candidate] = None
    response: Optional["FetchResponse"] = None
    judgment: Optional["Judgment"] = None
    outlinks: Sequence[str] = ()
    children: Sequence[Candidate] = ()
    pushed: int = 0
    sim_time: Optional[float] = None
    queue_size: int = 0
    scheduled_count: int = 0
    #: Wall-clock step start (only set when a hook needs wall time).
    started_s: float = 0.0


class EngineHook:
    """Typed observer protocol of the engine pipeline.

    Subclass and override only the events you care about — the engine
    detects overridden methods at construction and never dispatches the
    rest.  A subclass overriding nothing is exactly free.

    Hooks observe; they must not mutate the frontier, the scheduled set
    or the strategy.  Control-flow concerns (retry, gating) are engine
    policy, not hooks.
    """

    #: Set True when the hook reads :attr:`EngineStep.started_s` — the
    #: engine then stamps wall-clock time at each step start.
    needs_wall_clock: bool = False

    def on_stage(self, stage: EngineStage, step: EngineStep) -> None:
        """A pipeline stage completed for the step in flight."""

    def on_stage_timing(self, stage: EngineStage, seconds: float, step: EngineStep) -> None:
        """Wall-clock duration of a timed stage (POP / PRIORITIZE / SCHEDULE)."""

    def on_step(self, step: EngineStep) -> None:
        """A crawl step completed (record + callback already ran)."""

    def on_retry(self, candidate: Candidate, attempt: int) -> None:
        """A fetch attempt hit a retryable fault; backoff + retry follows."""

    def on_gate_skip(self, candidate: Candidate) -> None:
        """The gate (an open circuit breaker) refused the candidate."""

    def on_requeue(self, candidate: Candidate) -> None:
        """A failed candidate went back to the frontier (budget left)."""

    def on_drop(self, candidate: Candidate) -> None:
        """A failed candidate exhausted its requeue budget."""


class CheckpointHook(EngineHook):
    """Periodic checkpointing as a step observer.

    Calls ``write(step)`` every ``every`` completed steps.  The writer —
    a closure over the run's components, built by the configurator —
    owns serialisation; this hook only owns the cadence, which keeps the
    cadence testable and the engine unaware of checkpoint formats.
    """

    def __init__(self, every: int, write: Callable[[EngineStep], None]) -> None:
        self.every = every
        self.write = write

    def on_step(self, step: EngineStep) -> None:
        if step.steps % self.every == 0:
            self.write(step)


@dataclass(slots=True)
class EngineLoopState:
    """Mutable bookkeeping of the crawl loop.

    Everything in here is part of a checkpoint's ``loop`` section —
    a resumed engine continues from these exact values.
    """

    steps: int = 0
    pops: int = 0
    requeues: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    requeued: int = 0
    dropped: int = 0
    breaker_skips: int = 0
    checkpoints_written: int = 0
    redirect_hops: int = 0
    redirect_aborts: int = 0

    def to_dict(self) -> dict:
        return {
            "steps": self.steps,
            "pops": self.pops,
            "requeues": dict(self.requeues),
            "retries": self.retries,
            "requeued": self.requeued,
            "dropped": self.dropped,
            "breaker_skips": self.breaker_skips,
            "checkpoints_written": self.checkpoints_written,
            "redirect_hops": self.redirect_hops,
            "redirect_aborts": self.redirect_aborts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EngineLoopState":
        return cls(
            steps=data["steps"],
            pops=data["pops"],
            requeues={intern_url(url): count for url, count in data["requeues"].items()},
            retries=data["retries"],
            requeued=data["requeued"],
            dropped=data["dropped"],
            breaker_skips=data["breaker_skips"],
            checkpoints_written=data["checkpoints_written"],
            # .get: pre-adversary checkpoints (format <= 2) lack these.
            redirect_hops=data.get("redirect_hops", 0),
            redirect_aborts=data.get("redirect_aborts", 0),
        )


#: Replacement for the inline schedule stage: receives every candidate
#: the strategy kept and decides which frontier (partition) it enters.
CandidateRouter = Callable[[Candidate], None]

_HOOK_EVENTS = (
    "on_stage",
    "on_stage_timing",
    "on_step",
    "on_retry",
    "on_gate_skip",
    "on_requeue",
    "on_drop",
)


class CrawlEngine:
    """One crawl loop over one frontier, with composable policies.

    The engine owns control flow only.  Components (frontier, visitor,
    classifier, strategy, recorder) are constructed and wired by a
    configurator — :class:`repro.core.simulator.Simulator` for
    sequential runs, :class:`repro.core.parallel.ParallelCrawlSimulator`
    per partition — which also decides which hooks attach.

    The loop body preserves the exact operation order the golden traces
    pin: pop → gate → fetch (retry) → judge → timing → extract → expand
    → schedule → tick → record → callback → hooks.  Optional features
    are hoisted to local ``None`` checks, so a clean run pays a handful
    of predictable branches over the dedicated fast path it replaced
    (gated ≤ 1.05× by ``benchmarks/bench_engine_unification.py``).
    """

    def __init__(
        self,
        *,
        frontier: Frontier,
        visitor: "Visitor",
        classifier: "Classifier",
        strategy: "CrawlStrategy",
        scheduled: Optional[set[str]] = None,
        recorder: Optional["MetricsRecorder"] = None,
        max_pages: Optional[int] = None,
        timing: Optional["TimingModel"] = None,
        on_fetch: Optional[FetchCallback] = None,
        faults: Optional["FaultModel"] = None,
        retry: Optional["RetryPolicy"] = None,
        breakers: Optional["HostBreakers"] = None,
        defenses: Optional["DefensePolicy"] = None,
        hooks: Sequence[EngineHook] = (),
        loop_state: Optional[EngineLoopState] = None,
        router: Optional[CandidateRouter] = None,
        call_tick: bool = True,
    ) -> None:
        self.frontier = frontier
        self.visitor = visitor
        self.classifier = classifier
        self.strategy = strategy
        self.scheduled: set[str] = set() if scheduled is None else scheduled
        self.recorder = recorder
        self.max_pages = max_pages
        self.timing = timing
        self.on_fetch = on_fetch
        self.faults = faults
        self.retry = retry
        self.breakers = breakers
        self.defenses = defenses
        self.state = loop_state if loop_state is not None else EngineLoopState()
        self.router = router
        self.call_tick = call_tick
        self.hooks = tuple(hooks)
        # Compile per-event dispatch tuples of the *overridden* methods
        # only; None means "nobody listens" and costs one check per use.
        dispatch: dict[str, Optional[tuple[Callable, ...]]] = {}
        for event in _HOOK_EVENTS:
            base = getattr(EngineHook, event)
            methods = tuple(
                getattr(hook, event)
                for hook in self.hooks
                if getattr(type(hook), event, base) is not base
            )
            dispatch[event] = methods or None
        self._stage_cbs = dispatch["on_stage"]
        self._timing_cbs = dispatch["on_stage_timing"]
        self._step_cbs = dispatch["on_step"]
        self._retry_cbs = dispatch["on_retry"]
        self._gate_cbs = dispatch["on_gate_skip"]
        self._requeue_cbs = dispatch["on_requeue"]
        self._drop_cbs = dispatch["on_drop"]
        self._wall = self._timing_cbs is not None or any(
            hook.needs_wall_clock for hook in self.hooks
        )
        #: Step view shared with hooks, reused across iterations.
        self.step = EngineStep()

    @property
    def steps(self) -> int:
        """Completed crawl steps (failed fetch rounds excluded)."""
        return self.state.steps

    @property
    def has_pending_work(self) -> bool:
        """True while the engine can still complete a crawl step.

        The round-based engine's pending work is exactly its frontier;
        the event-driven subclass also counts in-flight fetches.  The
        session layer's ``done`` must go through this, never through the
        frontier directly.
        """
        return bool(self.frontier)

    def offer(self, candidate: Candidate) -> bool:
        """Schedule a candidate unless its URL was already seen here."""
        if candidate.url in self.scheduled:
            return False
        self.scheduled.add(candidate.url)
        self.frontier.push(candidate)
        return True

    def seed(self, seed_urls: Sequence[str]) -> None:
        """Push the strategy's seed candidates through scheduling dedup."""
        for candidate in self.strategy.seed_candidates(seed_urls):
            self.offer(candidate)

    def _requeue_or_drop(self, candidate: Candidate) -> None:
        """Put a failed candidate back at its original priority, or drop it.

        The URL stays in ``scheduled`` either way: a dropped URL was
        genuinely attempted and given up on, so a rediscovery along
        another path must not resurrect it.
        """
        state = self.state
        url = candidate.url
        used = state.requeues.get(url, 0)
        assert self.retry is not None
        if used < self.retry.max_requeues:
            state.requeues[url] = used + 1
            state.requeued += 1
            self.frontier.push(candidate)
            if self._requeue_cbs is not None:
                for callback in self._requeue_cbs:
                    callback(candidate)
        else:
            state.dropped += 1
            if self._drop_cbs is not None:
                for callback in self._drop_cbs:
                    callback(candidate)

    def _follow_redirects(
        self, response: "FetchResponse", fetch: Callable[[str], "FetchResponse"]
    ) -> "FetchResponse":
        """Chase a chain of adversary redirects to content or exhaustion.

        With a :class:`~repro.adversary.defense.DefensePolicy` whose
        ``max_redirect_hops`` is set, the chain is capped there and a
        seen-set breaks loops.  Otherwise the engine follows *naively*
        up to :data:`~repro.adversary.defense.NAIVE_REDIRECT_CAP` with no
        loop memory — a loop burns the whole cap in wasted fetches,
        which is the defenses-off cost the survival sweep measures.

        Returns the final response: real content, a still-redirecting
        response (judged like any non-OK page), or a faulted hop (the
        caller treats the round as failed, same as a faulted fetch).
        """
        state = self.state
        defenses = self.defenses
        limit = NAIVE_REDIRECT_CAP
        seen: Optional[set[str]] = None
        if defenses is not None and defenses.config.max_redirect_hops is not None:
            limit = defenses.config.max_redirect_hops
            seen = {response.url}
        hops = 0
        while response.redirect_to is not None:
            if hops >= limit:
                state.redirect_aborts += 1
                break
            target = response.redirect_to
            if seen is not None:
                if target in seen:
                    state.redirect_aborts += 1
                    break
                seen.add(target)
            response = fetch(target)
            hops += 1
            state.redirect_hops += 1
            if response.fault is not None:
                break
        return response

    def run(self, budget: Optional[int] = None) -> int:
        """Crawl until the frontier drains, the page cap, or ``budget`` steps.

        Returns the number of crawl steps completed by *this* call
        (``budget=1`` is the single-step mode the parallel driver uses).

        A failed fetch round (all attempts exhausted on a retryable
        fault) is *not* a crawl step: the page was never obtained, so it
        must not dilute harvest rate or advance the page cap.  The
        candidate is requeued at its original priority until its requeue
        budget runs out.
        """
        # This loop runs once per simulated fetch — the per-page hot
        # path.  Bound methods and loop-invariant attributes are hoisted
        # into locals: at production scale the LOAD_ATTR chains cost
        # more than some of the work they dispatch to.
        frontier = self.frontier
        visitor = self.visitor
        strategy = self.strategy
        scheduled = self.scheduled
        recorder = self.recorder
        timing = self.timing
        on_fetch = self.on_fetch
        faults = self.faults
        retry = self.retry
        breakers = self.breakers
        state = self.state
        max_pages = self.max_pages
        route = self.router

        pop = frontier.pop
        push = frontier.push
        fetch = visitor.fetch
        extract = visitor.extract
        judge = self.classifier.judge
        expand = strategy.expand
        # Link contexts are computed only for strategies that score on
        # textual cues; for everything else this stays False and the
        # extract→expand hand-off is exactly the pre-context code path.
        wants_contexts = getattr(strategy, "wants_link_contexts", False)
        extract_contexts = visitor.extract_contexts if wants_contexts else None
        tick = strategy.tick if self.call_tick else None
        record = recorder.record if recorder is not None else None
        scheduled_add = scheduled.add
        site_of = url_site_key

        resilient = retry is not None
        max_attempts = retry.max_attempts if retry is not None else 0
        backoff_s = retry.backoff_s if retry is not None else None
        has_faults = faults is not None
        defenses = self.defenses
        # Only a fault model can make a fetch fail, and only failures
        # put hosts on the breaker board — so with no faults attached
        # (and a board that resumed empty) the board can never populate,
        # and the per-pop host lookup + breaker gate are provably dead.
        # Disarm them up front; a healthy iteration then costs a clean
        # iteration plus a few counter updates.
        track_hosts = has_faults or (breakers is not None and breakers.open_hosts() > 0)
        # Defenses budget and fingerprint per host, so they widen the
        # per-pop host computation beyond the breaker board's needs.
        need_host = track_hosts or defenses is not None
        allow = breakers.allow if breakers is not None and track_hosts else None
        on_success = breakers.record_success if breakers is not None and track_hosts else None

        stage_cbs = self._stage_cbs
        timing_cbs = self._timing_cbs
        step_cbs = self._step_cbs
        retry_cbs = self._retry_cbs
        gate_cbs = self._gate_cbs
        wall = self._wall
        step = self.step
        perf = time.perf_counter
        stage_pop = EngineStage.POP
        stage_gate = EngineStage.GATE
        stage_fetch = EngineStage.FETCH
        stage_classify = EngineStage.CLASSIFY
        stage_extract = EngineStage.EXTRACT
        stage_prioritize = EngineStage.PRIORITIZE
        stage_schedule = EngineStage.SCHEDULE

        host: Optional[str] = None
        executed = 0
        steps = state.steps
        try:
            while frontier:
                if max_pages is not None and steps >= max_pages:
                    break
                if budget is not None and executed >= budget:
                    break

                # -- pop ------------------------------------------------
                if wall:
                    started = perf()
                    step.started_s = started
                    candidate = pop()
                    if timing_cbs is not None:
                        now = perf()
                        for callback in timing_cbs:
                            callback(stage_pop, now - started, step)
                else:
                    candidate = pop()
                if resilient:
                    state.pops += 1
                if stage_cbs is not None:
                    step.candidate = candidate
                    for callback in stage_cbs:
                        callback(stage_pop, step)

                # -- gate (circuit breaker, defense policy) -------------
                if need_host:
                    host = site_of(candidate.url)
                    if allow is not None and not allow(host, state.pops):
                        state.breaker_skips += 1
                        if gate_cbs is not None:
                            for callback in gate_cbs:
                                callback(candidate)
                        self._requeue_or_drop(candidate)
                        continue
                    if defenses is not None:
                        canonical = defenses.canonicalize(candidate.url)
                        if canonical is not None:
                            # A session alias: crawl the base URL once,
                            # skip every further alias of it outright.
                            if canonical in scheduled:
                                defenses.stats["alias_skips"] += 1
                                if gate_cbs is not None:
                                    for callback in gate_cbs:
                                        callback(candidate)
                                continue
                            canonical = intern_url(canonical)
                            scheduled_add(canonical)
                            candidate = replace(candidate, url=canonical)
                        if not defenses.admit(candidate.url, host):
                            # Policy refusal is permanent: the URL stays
                            # in ``scheduled`` and is never requeued —
                            # depth and budget verdicts cannot change on
                            # a later pop.
                            if gate_cbs is not None:
                                for callback in gate_cbs:
                                    callback(candidate)
                            continue
                if stage_cbs is not None:
                    for callback in stage_cbs:
                        callback(stage_gate, step)

                # -- fetch (with retry/backoff on retryable faults) -----
                response = fetch(candidate.url)
                if response.fault is not None:
                    attempt = 1
                    while response.fault in RETRYABLE_FAULTS and attempt < max_attempts:
                        state.retries += 1
                        if retry_cbs is not None:
                            for callback in retry_cbs:
                                callback(candidate, attempt)
                        if timing is not None and backoff_s is not None:
                            timing.delay_site(candidate.url, backoff_s(attempt))
                        response = fetch(candidate.url)
                        attempt += 1

                    if response.fault in RETRYABLE_FAULTS:
                        # Fetch round failed for good — breaker
                        # accounting, requeue-or-drop, next candidate.
                        if breakers is not None:
                            breakers.record_failure(host, state.pops)
                        self._requeue_or_drop(candidate)
                        continue
                if response.redirect_to is not None:
                    response = self._follow_redirects(response, fetch)
                    if response.fault in RETRYABLE_FAULTS:
                        # A hop faulted mid-chain: the round failed, the
                        # requeued candidate restarts the chain later.
                        if breakers is not None:
                            breakers.record_failure(host, state.pops)
                        self._requeue_or_drop(candidate)
                        continue
                if on_success is not None:
                    on_success(host)
                if stage_cbs is not None:
                    step.response = response
                    for callback in stage_cbs:
                        callback(stage_fetch, step)

                # -- classify -------------------------------------------
                judgment = judge(response)
                steps += 1
                if stage_cbs is not None:
                    step.steps = steps
                    step.judgment = judgment
                    for callback in stage_cbs:
                        callback(stage_classify, step)

                sim_time: Optional[float] = None
                if timing is not None:
                    if has_faults:
                        lscale, bscale = faults.fetch_scales(host, candidate.url)
                        timing.observe_fetch(candidate.url, response.size, lscale, bscale)
                    else:
                        timing.observe_fetch(candidate.url, response.size)
                    # Record the global simulated clock, not this
                    # fetch's own completion: with parallel connections
                    # a later-started fetch can finish earlier, but
                    # elapsed time is monotone.
                    sim_time = timing.now

                # -- extract --------------------------------------------
                outlinks = extract(response)
                if defenses is not None:
                    dhost = host if host is not None else site_of(candidate.url)
                    if defenses.suppress_links(response, dhost, judgment.relevant):
                        outlinks = ()
                    defenses.note_page(dhost, judgment.relevant)
                if stage_cbs is not None:
                    step.outlinks = outlinks
                    for callback in stage_cbs:
                        callback(stage_extract, step)

                # -- prioritize (strategy link expansion) ---------------
                if extract_contexts is not None:
                    link_contexts = extract_contexts(response, outlinks)
                    if timing_cbs is not None:
                        expand_started = perf()
                        children = expand(candidate, response, judgment, outlinks, link_contexts)
                        now = perf()
                        for callback in timing_cbs:
                            callback(stage_prioritize, now - expand_started, step)
                    else:
                        children = expand(candidate, response, judgment, outlinks, link_contexts)
                elif timing_cbs is not None:
                    expand_started = perf()
                    children = expand(candidate, response, judgment, outlinks)
                    now = perf()
                    for callback in timing_cbs:
                        callback(stage_prioritize, now - expand_started, step)
                else:
                    children = expand(candidate, response, judgment, outlinks)
                if stage_cbs is not None:
                    step.children = children
                    for callback in stage_cbs:
                        callback(stage_prioritize, step)

                # -- schedule -------------------------------------------
                pushed = 0
                if timing_cbs is not None:
                    push_started = perf()
                if route is None:
                    for child in children:
                        url = child.url
                        if url not in scheduled:
                            scheduled_add(url)
                            push(child)
                            pushed += 1
                else:
                    for child in children:
                        route(child)
                if timing_cbs is not None:
                    now = perf()
                    step.pushed = pushed
                    for callback in timing_cbs:
                        callback(stage_schedule, now - push_started, step)
                if tick is not None:
                    tick(steps, frontier)
                if stage_cbs is not None:
                    step.pushed = pushed
                    for callback in stage_cbs:
                        callback(stage_schedule, step)

                # -- step epilogue: record, callback, hooks -------------
                if record is not None:
                    record(
                        url=candidate.url,
                        judged_relevant=judgment.relevant,
                        queue_size=len(frontier),
                        sim_time=sim_time,
                    )
                if on_fetch is not None:
                    on_fetch(
                        CrawlEvent(
                            step=steps,
                            candidate=candidate,
                            response=response,
                            judgment=judgment,
                            queue_size=len(frontier),
                            scheduled_count=len(scheduled),
                            sim_time=sim_time,
                        )
                    )
                if step_cbs is not None:
                    step.steps = steps
                    step.candidate = candidate
                    step.response = response
                    step.judgment = judgment
                    step.sim_time = sim_time
                    step.pushed = pushed
                    step.queue_size = len(frontier)
                    step.scheduled_count = len(scheduled)
                    for callback in step_cbs:
                        callback(step)
                executed += 1
        finally:
            state.steps = steps
        return executed

"""Per-fetch crawl events for tracing and custom instrumentation.

The simulator can invoke a callback for every fetch.  Events carry
everything a custom observer might want — the visit's bookkeeping, the
classifier verdict, and the frontier occupancy — without forcing the
main loop to allocate when no callback is installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.classifier import Judgment
from repro.core.frontier import Candidate
from repro.webspace.virtualweb import FetchResponse


@dataclass(frozen=True, slots=True)
class CrawlEvent:
    """One simulated fetch, fully described."""

    step: int
    candidate: Candidate
    response: FetchResponse
    judgment: Judgment
    queue_size: int
    scheduled_count: int
    sim_time: float | None = None

    @property
    def url(self) -> str:
        return self.candidate.url


#: Signature of the simulator's optional per-fetch callback.
FetchCallback = Callable[[CrawlEvent], None]

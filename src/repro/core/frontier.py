"""URL frontiers (the paper's "URL queue").

Two disciplines cover every strategy in the paper:

- :class:`FIFOFrontier` — plain breadth-first order; used by the
  breadth-first baseline, the hard-focused simple strategy (where every
  kept URL has equal priority) and the non-prioritized limited-distance
  strategy.
- :class:`PriorityFrontier` — a max-priority queue with FIFO tie-breaking,
  used by the soft-focused simple strategy (two priority bands) and the
  prioritized limited-distance strategy (N+1 bands keyed on distance).

Both track their peak occupancy, which is the quantity Figures 5-7(a)
plot.

Heap entries are plain ``(-priority, tiebreak, candidate)`` tuples, so
every ``heappush``/``heappop`` comparison runs in C.  The ``tiebreak``
is a per-frontier monotonic counter: it is unique, so two entries always
order on ``(-priority, tiebreak)`` and the candidate element is *never*
compared — pop order within a priority band is push order, identically
on every Python version.  The golden-trace suite (``tests/golden``)
pins that ordering byte-for-byte.

:class:`ReprioritizableFrontier` reprioritizes with lazy deletion: an
update pushes a fresh entry in O(log n) and *tombstones* the stale one,
which pop discards when it surfaces.  Tombstones are compacted once they
outnumber live entries, bounding the heap at twice the live size.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque

from repro.core.candidate import Candidate, candidate_from_dict, candidate_to_dict
from repro.errors import CheckpointError, FrontierError

__all__ = [
    "Candidate",
    "candidate_to_dict",
    "candidate_from_dict",
    "Frontier",
    "FIFOFrontier",
    "PriorityFrontier",
    "ReprioritizableFrontier",
]

#: Heap entries of the priority frontiers: ``(-priority, tiebreak,
#: candidate)``.  The tiebreak counter is unique per frontier, so tuple
#: comparison never reaches the candidate.
_HeapEntry = tuple


class Frontier(ABC):
    """Common interface of the URL queue implementations.

    Every implementation keeps two always-on operation counters —
    ``pushes`` and ``pops`` — cheap enough to maintain unconditionally
    and the raw material of the observability layer's frontier gauges
    (:mod:`repro.obs`).
    """

    def __init__(self) -> None:
        self._peak_size = 0
        self.pushes = 0
        self.pops = 0

    @abstractmethod
    def push(self, candidate: Candidate) -> None:
        """Add a candidate to the queue."""

    @abstractmethod
    def pop(self) -> Candidate:
        """Remove and return the next candidate to crawl.

        Raises:
            FrontierError: when the frontier is empty.
        """

    @abstractmethod
    def __len__(self) -> int: ...

    def __bool__(self) -> bool:
        return len(self) > 0

    @property
    def peak_size(self) -> int:
        """Largest queue occupancy observed so far."""
        return self._peak_size

    def close(self) -> None:
        """Release external resources (spill files etc.).

        No-op for in-memory frontiers; the simulator calls this when a
        crawl finishes.
        """

    def snapshot(self) -> dict:
        """Serialisable state for checkpointing.

        The contract is exact: ``restore(snapshot())`` on a fresh
        frontier of the same class must reproduce the identical pop
        sequence, operation counters and peak occupancy.  In-memory
        frontiers implement this; wrappers holding external resources
        (spilling) raise :class:`~repro.errors.CheckpointError`.
        """
        raise CheckpointError(f"{type(self).__name__} does not support checkpointing")

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this (fresh, empty) frontier."""
        raise CheckpointError(f"{type(self).__name__} does not support checkpointing")

    def _restore_counters(self, state: dict) -> None:
        self.pushes = state["pushes"]
        self.pops = state["pops"]
        self._peak_size = state["peak_size"]

    def _counters_dict(self) -> dict:
        return {"pushes": self.pushes, "pops": self.pops, "peak_size": self._peak_size}

    def _check_kind(self, state: dict, kind: str) -> None:
        if state.get("kind") != kind:
            raise CheckpointError(
                f"checkpointed frontier kind {state.get('kind')!r} does not match "
                f"the strategy's {kind!r} frontier — resume with the same strategy"
            )

    def _note_size(self) -> None:
        """Account for one push: op counter + peak occupancy.

        Every ``push`` implementation calls this exactly once, which is
        why the push counter lives here and the pop counter in each
        ``pop`` (pops have no shared hook).
        """
        self.pushes += 1
        size = len(self)
        if size > self._peak_size:
            self._peak_size = size


class FIFOFrontier(Frontier):
    """First-in first-out queue: pure discovery order."""

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[Candidate] = deque()

    def push(self, candidate: Candidate) -> None:
        self._queue.append(candidate)
        self._note_size()

    def pop(self) -> Candidate:
        if not self._queue:
            raise FrontierError("pop from empty FIFO frontier")
        self.pops += 1
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def snapshot(self) -> dict:
        return {
            "kind": "fifo",
            **self._counters_dict(),
            "queue": [candidate_to_dict(candidate) for candidate in self._queue],
        }

    def restore(self, state: dict) -> None:
        self._check_kind(state, "fifo")
        self._queue = deque(candidate_from_dict(entry) for entry in state["queue"])
        self._restore_counters(state)


class PriorityFrontier(Frontier):
    """Max-priority queue with FIFO order within equal priorities.

    A monotonically increasing insertion counter serves as the tie
    breaker, so two candidates pushed with the same priority pop in push
    order — the behaviour the paper's two-band soft-focused queue needs
    for its results to be deterministic.
    """

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[_HeapEntry] = []
        self._counter = 0

    def push(self, candidate: Candidate) -> None:
        counter = self._counter
        self._counter = counter + 1
        heapq.heappush(self._heap, (-candidate.priority, counter, candidate))
        self._note_size()

    def pop(self) -> Candidate:
        if not self._heap:
            raise FrontierError("pop from empty priority frontier")
        self.pops += 1
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def snapshot(self) -> dict:
        # Heap entries are serialised in their internal (heap-ordered)
        # list layout, tiebreaks included, so a restore re-creates the
        # exact pop sequence without re-heapifying.
        return {
            "kind": "priority",
            **self._counters_dict(),
            "counter": self._counter,
            "heap": [
                [entry[0], entry[1], candidate_to_dict(entry[2])] for entry in self._heap
            ],
        }

    def restore(self, state: dict) -> None:
        self._check_kind(state, "priority")
        self._heap = [
            (neg_priority, tiebreak, candidate_from_dict(entry))
            for neg_priority, tiebreak, entry in state["heap"]
        ]
        self._counter = state["counter"]
        self._restore_counters(state)


class ReprioritizableFrontier(Frontier):
    """Priority frontier whose queued URLs can be re-prioritized in place.

    Needed by strategies that revise their opinion of a URL *after*
    enqueueing it — the distiller of the original focused-crawling system
    ("the priority values of URLs identified as hubs and their immediate
    neighbors are raised", paper §2.1) and backlink-count ordering (Cho
    et al.).  Implemented with lazy deletion: ``update_priority`` pushes
    a fresh heap entry and tombstones the stale one, which ``pop``
    discards when it reaches the heap top — updates are O(log n), pops
    amortised O(log n), no re-sort ever.  When tombstones outnumber live
    entries the heap is compacted in O(live), so memory stays bounded at
    twice the live queue even under pathological update rates.

    Unlike the simpler frontiers, a URL can only be queued once here —
    the class keys its bookkeeping by URL.
    """

    #: Compact only past this many tombstones, so small frontiers never
    #: pay the rebuild.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[_HeapEntry] = []
        self._counter = 0
        self._current: dict[str, _HeapEntry] = {}
        self._stale = 0

    def push(self, candidate: Candidate) -> None:
        url = candidate.url
        if url in self._current:
            raise FrontierError(f"{url!r} is already queued; use update_priority")
        counter = self._counter
        self._counter = counter + 1
        entry = (-candidate.priority, counter, candidate)
        self._current[url] = entry
        heapq.heappush(self._heap, entry)
        self._note_size()

    def update_priority(self, url: str, priority: int) -> bool:
        """Re-prioritize a queued URL; returns False if it is not queued."""
        stale = self._current.get(url)
        if stale is None:
            return False
        if -stale[0] == priority:
            return True  # no change needed
        old = stale[2]
        candidate = Candidate(
            url=old.url,
            priority=priority,
            distance=old.distance,
            referrer=old.referrer,
        )
        counter = self._counter
        self._counter = counter + 1
        entry = (-priority, counter, candidate)
        self._current[url] = entry
        heapq.heappush(self._heap, entry)
        self._stale += 1
        if self._stale > self._COMPACT_MIN and self._stale > len(self._current):
            self._compact()
        return True

    def _compact(self) -> None:
        """Drop every tombstone by rebuilding the heap from live entries.

        O(live); heapify keeps the ``(-priority, tiebreak)`` order, so
        pop order is untouched — only dead weight goes.
        """
        self._heap = list(self._current.values())
        heapq.heapify(self._heap)
        self._stale = 0

    @property
    def stale_entries(self) -> int:
        """Tombstoned heap entries awaiting lazy deletion/compaction."""
        return self._stale

    def priority_of(self, url: str) -> int | None:
        """Current priority of a queued URL, or None."""
        entry = self._current.get(url)
        if entry is None:
            return None
        return -entry[0]

    def __contains__(self, url: str) -> bool:
        return url in self._current

    def pop(self) -> Candidate:
        heap = self._heap
        current = self._current
        while heap:
            entry = heapq.heappop(heap)
            candidate = entry[2]
            if current.get(candidate.url) is entry:
                del current[candidate.url]
                self.pops += 1
                return candidate
            # A tombstone superseded by update_priority — discard it.
            self._stale -= 1
        raise FrontierError("pop from empty reprioritizable frontier")

    def __len__(self) -> int:
        return len(self._current)

    def snapshot(self) -> dict:
        # Only live entries are serialised — tombstones are dead weight
        # whose omission cannot change pop order, because the live
        # ``(-priority, tiebreak)`` pairs are unique and total-ordered.
        return {
            "kind": "reprioritizable",
            **self._counters_dict(),
            "counter": self._counter,
            "entries": [
                [entry[0], entry[1], candidate_to_dict(entry[2])]
                for entry in self._current.values()
            ],
        }

    def restore(self, state: dict) -> None:
        self._check_kind(state, "reprioritizable")
        self._current = {}
        heap: list[_HeapEntry] = []
        for neg_priority, tiebreak, candidate_entry in state["entries"]:
            entry = (neg_priority, tiebreak, candidate_from_dict(candidate_entry))
            self._current[entry[2].url] = entry
            heap.append(entry)
        heapq.heapify(heap)
        self._heap = heap
        self._counter = state["counter"]
        self._stale = 0
        self._restore_counters(state)

"""Evaluation metrics (paper §3.4) and their progress series.

- **Harvest rate** (precision): fraction of crawled pages that are
  relevant.
- **Coverage** (explicit recall): fraction of the dataset's relevant
  pages that have been crawled.  The denominator is known beforehand by
  analysing the crawl log — the luxury the simulator affords.
- **URL queue size**: frontier occupancy, the memory cost Figures 5-7(a)
  plot.

The recorder samples every ``sample_interval`` crawl steps (plus a final
flush), so series stay small and sampling cost is O(1) per page.
"""

from __future__ import annotations

from collections.abc import Set as AbstractSet
from dataclasses import dataclass, field

from repro.errors import CheckpointError


@dataclass(slots=True)
class MetricSeries:
    """Sampled progress curves of one crawl run.

    Parallel lists, one entry per sample: ``pages[i]`` pages had been
    crawled when ``harvest_rate[i]``, ``coverage[i]`` and
    ``queue_size[i]`` were observed.  ``sim_time[i]`` is simulated
    seconds when a timing model was attached, else empty.
    """

    name: str
    pages: list[int] = field(default_factory=list)
    harvest_rate: list[float] = field(default_factory=list)
    coverage: list[float] = field(default_factory=list)
    queue_size: list[int] = field(default_factory=list)
    sim_time: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pages)

    def value_at_pages(self, series: list[float], page_count: int) -> float:
        """The latest sampled value at or before ``page_count`` pages."""
        best = 0.0
        for pages, value in zip(self.pages, series):
            if pages > page_count:
                break
            best = value
        return best

    def harvest_at(self, page_count: int) -> float:
        return self.value_at_pages(self.harvest_rate, page_count)

    def coverage_at(self, page_count: int) -> float:
        return self.value_at_pages(self.coverage, page_count)

    def to_dict(self) -> dict:
        """Plain-dict form for JSON serialisation."""
        return {
            "name": self.name,
            "pages": list(self.pages),
            "harvest_rate": list(self.harvest_rate),
            "coverage": list(self.coverage),
            "queue_size": list(self.queue_size),
            "sim_time": list(self.sim_time),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricSeries":
        return cls(
            name=data["name"],
            pages=list(data["pages"]),
            harvest_rate=list(data["harvest_rate"]),
            coverage=list(data["coverage"]),
            queue_size=list(data["queue_size"]),
            sim_time=list(data.get("sim_time", [])),
        )


@dataclass(frozen=True, slots=True)
class CrawlSummary:
    """End-of-run aggregates of one crawl."""

    strategy: str
    pages_crawled: int
    relevant_crawled: int
    covered_relevant: int
    total_relevant: int
    max_queue_size: int
    simulated_seconds: float | None = None

    @property
    def final_harvest_rate(self) -> float:
        if self.pages_crawled == 0:
            return 0.0
        return self.relevant_crawled / self.pages_crawled

    @property
    def final_coverage(self) -> float:
        if self.total_relevant == 0:
            return 0.0
        return self.covered_relevant / self.total_relevant


class MetricsRecorder:
    """Accumulates per-fetch observations into a :class:`MetricSeries`.

    Harvest counts what the *classifier* judged relevant at crawl time;
    coverage counts membership of the precomputed relevant set.  With the
    charset classifier the two views coincide; with the detector or
    oracle classifiers they can diverge — which is itself a measurement
    (see the classifier ablation).
    """

    def __init__(
        self,
        name: str,
        relevant_urls: AbstractSet[str],
        sample_interval: int = 500,
    ) -> None:
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self._series = MetricSeries(name=name)
        self._relevant_urls = relevant_urls
        self._interval = sample_interval
        self._steps = 0
        self._judged_relevant = 0
        self._covered = 0
        self._max_queue = 0
        self._last_queue = 0
        self._last_time: float | None = None

    @property
    def steps(self) -> int:
        return self._steps

    def record(
        self,
        url: str,
        judged_relevant: bool,
        queue_size: int,
        sim_time: float | None = None,
    ) -> None:
        """Observe one crawled page."""
        self._steps += 1
        if judged_relevant:
            self._judged_relevant += 1
        if url in self._relevant_urls:
            self._covered += 1
        self._last_queue = queue_size
        self._last_time = sim_time
        if queue_size > self._max_queue:
            self._max_queue = queue_size
        if self._steps % self._interval == 0:
            self._sample()

    def _sample(self, into: MetricSeries | None = None) -> None:
        series = self._series if into is None else into
        series.pages.append(self._steps)
        series.harvest_rate.append(self._judged_relevant / self._steps)
        total_relevant = len(self._relevant_urls)
        series.coverage.append(self._covered / total_relevant if total_relevant else 0.0)
        series.queue_size.append(self._last_queue)
        if self._last_time is not None:
            series.sim_time.append(self._last_time)

    def snapshot(self) -> dict:
        """Serialisable mid-crawl state (see :mod:`repro.core.checkpoint`).

        The relevant-URL set itself is not serialised — it is a pure
        function of the dataset and is reconstructed on resume — but its
        size is, as a cheap consistency check that the resumed run is
        looking at the same universe.
        """
        return {
            "sample_interval": self._interval,
            "relevant_total": len(self._relevant_urls),
            "steps": self._steps,
            "judged_relevant": self._judged_relevant,
            "covered": self._covered,
            "max_queue": self._max_queue,
            "last_queue": self._last_queue,
            "last_time": self._last_time,
            "series": self._series.to_dict(),
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this (fresh) recorder."""
        if state["sample_interval"] != self._interval:
            raise CheckpointError(
                f"checkpointed sample_interval {state['sample_interval']} does not "
                f"match the configured {self._interval}; resume with the same config"
            )
        if state["relevant_total"] != len(self._relevant_urls):
            raise CheckpointError(
                "checkpointed relevant-set size does not match this dataset; "
                "resume against the web space the checkpoint was taken from"
            )
        self._steps = state["steps"]
        self._judged_relevant = state["judged_relevant"]
        self._covered = state["covered"]
        self._max_queue = state["max_queue"]
        self._last_queue = state["last_queue"]
        self._last_time = state["last_time"]
        self._series = MetricSeries.from_dict(state["series"])

    def finish(self, strategy: str) -> tuple[MetricSeries, CrawlSummary]:
        """Flush the final sample and return (series, summary).

        Non-mutating: an off-cadence flush sample goes into a *copy* of
        the live series, never the recorder's own state.  A mid-crawl
        progress report therefore leaves no trace — later samples,
        checkpoints and reports are byte-identical to those of a run
        that was never asked for a progress report.
        """
        series = self._series
        if self._steps and (not series.pages or series.pages[-1] != self._steps):
            series = MetricSeries.from_dict(series.to_dict())
            self._sample(into=series)
        summary = CrawlSummary(
            strategy=strategy,
            pages_crawled=self._steps,
            relevant_crawled=self._judged_relevant,
            covered_relevant=self._covered,
            total_relevant=len(self._relevant_urls),
            max_queue_size=self._max_queue,
            simulated_seconds=self._last_time,
        )
        return series, summary

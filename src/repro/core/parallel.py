"""Parallel (partitioned) crawling simulation.

The paper's research group also studied distributing crawls over many
machines (its reference [2], Chakrabarti et al.'s distributed discovery;
Cho & Garcia-Molina's parallel-crawler taxonomy formalised the design
space).  A language-specific *archive* crawl is a natural candidate for
partitioning — national webs are host-clustered — so this module adds
the standard model on top of the simulator:

- The URL space is partitioned **by host** (pages of one site belong to
  one crawler; see :func:`repro.webspace.query.host_partition`'s hash).
- ``firewall`` mode: each crawler fetches only its own URLs and *drops*
  links into foreign partitions — zero coordination, but pages whose
  only inlinks cross partitions become unreachable.
- ``exchange`` mode: cross-partition links are forwarded to their owner
  — full reachability at the cost of inter-crawler communication, which
  this simulation counts.

Crawlers advance round-robin one fetch at a time, so the global crawl
order interleaves fairly and results are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.classifier import Classifier
from repro.core.frontier import Candidate
from repro.core.strategies.base import CrawlStrategy
from repro.errors import ConfigError
from repro.webspace.query import _host_bucket
from repro.webspace.stats import relevant_url_set
from repro.webspace.virtualweb import VirtualWebSpace

#: Builds one strategy instance per crawler (strategies hold state).
StrategyFactory = Callable[[], CrawlStrategy]


@dataclass(frozen=True, slots=True)
class ParallelResult:
    """Outcome of one partitioned crawl."""

    mode: str
    partitions: int
    pages_crawled: int
    covered_relevant: int
    total_relevant: int
    messages_exchanged: int
    dropped_foreign_links: int
    per_crawler_pages: tuple[int, ...]

    @property
    def coverage(self) -> float:
        if self.total_relevant == 0:
            return 0.0
        return self.covered_relevant / self.total_relevant

    @property
    def balance(self) -> float:
        """Load balance: min/max pages per crawler (1.0 = perfect)."""
        busiest = max(self.per_crawler_pages)
        if busiest == 0:
            return 0.0
        return min(self.per_crawler_pages) / busiest


class _Crawler:
    """One partition's crawler: frontier + dedup + its own strategy."""

    def __init__(self, strategy: CrawlStrategy) -> None:
        self.strategy = strategy
        self.frontier = strategy.make_frontier()
        self.scheduled: set[str] = set()
        self.pages_crawled = 0

    def offer(self, candidate: Candidate) -> bool:
        """Schedule a candidate unless its URL was already seen here."""
        if candidate.url in self.scheduled:
            return False
        self.scheduled.add(candidate.url)
        self.frontier.push(candidate)
        return True


class ParallelCrawlSimulator:
    """Round-robin simulation of ``partitions`` cooperating crawlers."""

    def __init__(
        self,
        web: VirtualWebSpace,
        strategy_factory: StrategyFactory,
        classifier: Classifier,
        seed_urls: Sequence[str],
        partitions: int = 4,
        mode: str = "exchange",
        relevant_urls: frozenset[str] | None = None,
        max_pages: int | None = None,
    ) -> None:
        if partitions < 1:
            raise ConfigError("partitions must be >= 1")
        if mode not in ("firewall", "exchange"):
            raise ConfigError(f"mode must be 'firewall' or 'exchange', got {mode!r}")
        if not seed_urls:
            raise ConfigError("at least one seed URL is required")
        self._web = web
        self._classifier = classifier
        self._partitions = partitions
        self._mode = mode
        self._max_pages = max_pages
        if relevant_urls is None:
            relevant_urls = relevant_url_set(web.crawl_log, classifier.target_language)
        self._relevant = relevant_urls
        self._crawlers = [_Crawler(strategy_factory()) for _ in range(partitions)]
        self._seed_urls = list(seed_urls)

    def _owner(self, url: str) -> _Crawler:
        return self._crawlers[_host_bucket(url, self._partitions)]

    def run(self) -> ParallelResult:
        """Crawl until every partition's frontier drains (or the cap)."""
        for crawler in self._crawlers:
            for candidate in crawler.strategy.seed_candidates(self._seed_urls):
                owner = self._owner(candidate.url)
                if owner is crawler:
                    crawler.offer(candidate)

        total_pages = 0
        covered = 0
        messages = 0
        dropped = 0
        active = True
        while active:
            active = False
            for crawler in self._crawlers:
                if not crawler.frontier:
                    continue
                if self._max_pages is not None and total_pages >= self._max_pages:
                    active = False
                    break
                active = True
                candidate = crawler.frontier.pop()
                response = self._web.fetch(candidate.url)
                judgment = self._classifier.judge(response)
                crawler.pages_crawled += 1
                total_pages += 1
                if candidate.url in self._relevant:
                    covered += 1

                outlinks = response.outlinks
                for child in crawler.strategy.expand(candidate, response, judgment, outlinks):
                    owner = self._owner(child.url)
                    if owner is crawler:
                        crawler.offer(child)
                    elif self._mode == "exchange":
                        if owner.offer(child):
                            messages += 1
                    else:
                        dropped += 1
            else:
                continue
            break  # max_pages reached inside the for loop

        return ParallelResult(
            mode=self._mode,
            partitions=self._partitions,
            pages_crawled=total_pages,
            covered_relevant=covered,
            total_relevant=len(self._relevant),
            messages_exchanged=messages,
            dropped_foreign_links=dropped,
            per_crawler_pages=tuple(crawler.pages_crawled for crawler in self._crawlers),
        )

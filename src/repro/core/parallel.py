"""Parallel (partitioned) crawling simulation.

The paper's research group also studied distributing crawls over many
machines (its reference [2], Chakrabarti et al.'s distributed discovery;
Cho & Garcia-Molina's parallel-crawler taxonomy formalised the design
space).  A language-specific *archive* crawl is a natural candidate for
partitioning — national webs are host-clustered — so this module adds
the standard model on top of the simulator:

- The URL space is partitioned **by host** (pages of one site belong to
  one crawler; see :func:`repro.webspace.query.host_partition`'s hash).
- :attr:`PartitionMode.FIREWALL`: each crawler fetches only its own
  URLs and *drops* links into foreign partitions — zero coordination,
  but pages whose only inlinks cross partitions become unreachable.
- :attr:`PartitionMode.EXCHANGE`: cross-partition links are forwarded
  to their owner — full reachability at the cost of inter-crawler
  communication, which this simulation counts.  *Every* forward is a
  message (``messages_exchanged``); how many of them the owner's dedup
  actually admitted to its frontier is tallied separately
  (``messages_accepted``).

Crawlers advance round-robin one fetch at a time, so the global crawl
order interleaves fairly and results are deterministic.  Crawls over a
:class:`~repro.faults.FaultyWebSpace` are supported via the ``faults=``
/ ``resilience=`` keywords — each engine gets the retry/breaker
machinery, and the driver reconciles its page tallies against the
engine's completed-step count, so a step that ends in retry exhaustion
or a breaker gate skip is never counted as a fetched page.

Run-level knobs live in :class:`ParallelConfig` (mirroring
:class:`~repro.core.simulator.SimulationConfig`); the loose
``partitions=`` / ``mode=`` / ``max_pages=`` keywords and plain-string
modes remain accepted for compatibility, strings with a
``DeprecationWarning``.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Sequence

from repro.core.classifier import Classifier
from repro.core.engine import CrawlEngine
from repro.core.events import CrawlEvent
from repro.core.strategies.base import CrawlStrategy
from repro.core.visitor import Visitor
from repro.errors import ConfigError
from repro.faults.model import FaultModel, FaultyWebSpace
from repro.faults.resilience import HostBreakers, ResilienceConfig
from repro.obs import Instrumentation
from repro.obs.instrument import active as _active_instrumentation
from repro.webspace.query import host_bucket
from repro.webspace.stats import relevant_url_set
from repro.webspace.virtualweb import VirtualWebSpace

#: Builds one strategy instance per crawler (strategies hold state).
StrategyFactory = Callable[[], CrawlStrategy]


class PartitionMode(str, Enum):
    """Coordination discipline between partitioned crawlers."""

    FIREWALL = "firewall"
    EXCHANGE = "exchange"

    def __str__(self) -> str:  # render as the wire value, not the member
        return self.value

    @classmethod
    def coerce(cls, value: "PartitionMode | str") -> "PartitionMode":
        """Accept an enum member, or (deprecated) its string value."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                mode = cls(value)
            except ValueError:
                valid = " or ".join(repr(member.value) for member in cls)
                raise ConfigError(f"mode must be {valid}, got {value!r}") from None
            warnings.warn(
                f"string mode={value!r} is deprecated; use PartitionMode.{mode.name}",
                DeprecationWarning,
                stacklevel=3,
            )
            return mode
        raise ConfigError(f"mode must be a PartitionMode, got {value!r}")


@dataclass(frozen=True, slots=True)
class ParallelConfig:
    """Run-level knobs of a partitioned crawl.

    Mirrors :class:`~repro.core.simulator.SimulationConfig`: everything
    independent of the strategy under test.

    Attributes:
        partitions: number of cooperating crawlers (host-hash owners).
        mode: coordination discipline (:class:`PartitionMode`); plain
            strings are accepted with a ``DeprecationWarning``.
        max_pages: stop after this many fetches across all crawlers
            (None = run every frontier dry).
    """

    partitions: int = 4
    mode: PartitionMode = PartitionMode.EXCHANGE
    max_pages: int | None = None

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise ConfigError("partitions must be >= 1")
        if self.max_pages is not None and self.max_pages < 0:
            raise ConfigError("max_pages must be >= 0")
        if not isinstance(self.mode, PartitionMode):
            object.__setattr__(self, "mode", PartitionMode.coerce(self.mode))


@dataclass(frozen=True, slots=True)
class ParallelResult:
    """Outcome of one partitioned crawl.

    Satisfies the :class:`repro.core.summary.CrawlReport` protocol
    (``pages_crawled`` / ``coverage`` / ``to_dict``) shared with
    :class:`~repro.core.simulator.CrawlResult`.
    """

    mode: PartitionMode
    partitions: int
    pages_crawled: int
    covered_relevant: int
    total_relevant: int
    messages_exchanged: int
    messages_accepted: int
    dropped_foreign_links: int
    per_crawler_pages: tuple[int, ...]

    @property
    def coverage(self) -> float:
        if self.total_relevant == 0:
            return 0.0
        return self.covered_relevant / self.total_relevant

    @property
    def balance(self) -> float:
        """Load balance: min/max pages per crawler (1.0 = perfect)."""
        busiest = max(self.per_crawler_pages)
        if busiest == 0:
            return 0.0
        return min(self.per_crawler_pages) / busiest

    def to_dict(self) -> dict:
        """Report-friendly flat summary (the run's headline numbers)."""
        return {
            "mode": self.mode.value,
            "partitions": self.partitions,
            "pages_crawled": self.pages_crawled,
            "coverage": self.coverage,
            "messages_exchanged": self.messages_exchanged,
            "messages_accepted": self.messages_accepted,
            "dropped_foreign_links": self.dropped_foreign_links,
            "balance": self.balance,
        }


class ParallelCrawlSimulator:
    """Round-robin simulation of ``partitions`` cooperating crawlers.

    Each partition is one :class:`~repro.core.engine.CrawlEngine` over
    its own frontier, strategy instance and scheduling dedup; this class
    is the driver that advances the engines one fetch at a time
    (``engine.run(budget=1)``) and owns the cross-partition concerns —
    host-hash ownership, link forwarding (EXCHANGE) or dropping
    (FIREWALL), the global page cap and the message tallies.  Routing
    replaces the engine's inline schedule stage via its ``router`` hook
    point.

    Prefer configuring through ``config=ParallelConfig(...)``; the
    legacy loose keywords (``partitions=``, ``mode=``, ``max_pages=``)
    are folded into one for you and cannot be combined with an explicit
    ``config``.
    """

    def __init__(
        self,
        web: VirtualWebSpace,
        strategy_factory: StrategyFactory,
        classifier: Classifier,
        seed_urls: Sequence[str],
        config: ParallelConfig | None = None,
        *,
        partitions: int | None = None,
        mode: PartitionMode | str | None = None,
        relevant_urls: frozenset[str] | None = None,
        max_pages: int | None = None,
        instrumentation: Instrumentation | None = None,
        faults: FaultModel | None = None,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        if config is not None:
            if partitions is not None or mode is not None or max_pages is not None:
                raise ConfigError(
                    "pass either config=ParallelConfig(...) or the loose "
                    "partitions=/mode=/max_pages= keywords, not both"
                )
        else:
            config = ParallelConfig(
                partitions=4 if partitions is None else partitions,
                mode=PartitionMode.EXCHANGE if mode is None else mode,
                max_pages=max_pages,
            )
        if not seed_urls:
            raise ConfigError("at least one seed URL is required")
        self._web = web
        self._classifier = classifier
        self._config = config
        if relevant_urls is None:
            relevant_urls = relevant_url_set(web.crawl_log, classifier.target_language)
        self._relevant = relevant_urls
        self._instrumentation = instrumentation
        self._faults = faults
        # Mirror Simulator: an explicit resilience config arms the
        # machinery on its own; a fault model without one gets defaults
        # (a faulty web with no retry policy would crash the engine's
        # requeue path).
        resilient = faults is not None or resilience is not None
        self._resilience = (resilience or ResilienceConfig()) if resilient else None
        self._strategies = [strategy_factory() for _ in range(config.partitions)]
        self._seed_urls = list(seed_urls)

    @property
    def config(self) -> ParallelConfig:
        return self._config

    def _build_engines(self, last_event: list[CrawlEvent | None]) -> list[CrawlEngine]:
        """One engine per partition, wired for driver-controlled stepping.

        The engines share the classifier (and its cache) but own their
        strategy, frontier, visitor and scheduling dedup.  Each engine's
        schedule stage is replaced by a router that resolves the child's
        host-hash owner: own links enter the local frontier, foreign
        links are forwarded (EXCHANGE, deduped by the owner) or dropped
        (FIREWALL).  Forwarding *is* the message — the owner's dedup
        verdict only decides the ``accepted`` tally.  ``last_event`` is
        a one-slot mailbox the driver clears before and reads after each
        single-step ``run(budget=1)`` — round-robin advances one engine
        at a time, so one slot suffices.

        With a fault model attached, all engines fetch through one
        shared :class:`~repro.faults.FaultyWebSpace` (host partitioning
        makes per-host fault state crawler-disjoint anyway, and sharing
        keeps the injection sequence identical to a serial crawl of the
        same pop order); retry policy is shared, circuit-breaker boards
        are per-engine because cooldowns are keyed on the local
        engine's pop clock.
        """
        partitions = self._config.partitions
        exchange = self._config.mode is PartitionMode.EXCHANGE
        engines: list[CrawlEngine] = []
        counters = self._counters

        def capture(event: CrawlEvent) -> None:
            last_event[0] = event

        def make_router(index: int):
            def route(child) -> None:
                owner = engines[host_bucket(child.url, partitions)]
                if owner is engines[index]:
                    owner.offer(child)
                elif exchange:
                    counters["messages"] += 1
                    if owner.offer(child):
                        counters["accepted"] += 1
                else:
                    counters["dropped"] += 1

            return route

        web: VirtualWebSpace | FaultyWebSpace = self._web
        if self._faults is not None:
            web = FaultyWebSpace(self._web, self._faults)
        resilience = self._resilience
        retry = resilience.retry if resilience is not None else None
        for index, strategy in enumerate(self._strategies):
            breakers = HostBreakers(resilience.breaker) if resilience is not None else None
            engines.append(
                CrawlEngine(
                    frontier=strategy.make_frontier(),
                    visitor=Visitor(web),
                    classifier=self._classifier,
                    strategy=strategy,
                    on_fetch=capture,
                    faults=self._faults,
                    retry=retry,
                    breakers=breakers,
                    router=make_router(index),
                    call_tick=False,
                )
            )
        return engines

    def run(self) -> ParallelResult:
        """Crawl until every partition's frontier drains (or the cap)."""
        config = self._config
        instr = _active_instrumentation(self._instrumentation)
        if instr is not None:
            self._classifier.bind_instrumentation(instr)
        self._counters = {"messages": 0, "accepted": 0, "dropped": 0}
        last_event: list[CrawlEvent | None] = [None]
        engines = self._build_engines(last_event)
        partitions = config.partitions
        for index, engine in enumerate(engines):
            if instr is not None:
                engine.strategy.bind_instrumentation(instr)
            for candidate in engine.strategy.seed_candidates(self._seed_urls):
                if host_bucket(candidate.url, partitions) == index:
                    engine.offer(candidate)

        total_pages = 0
        covered = 0
        perf = time.perf_counter
        active = True
        try:
            while active:
                active = False
                for index, engine in enumerate(engines):
                    if not engine.frontier:
                        continue
                    if config.max_pages is not None and total_pages >= config.max_pages:
                        active = False
                        break
                    active = True
                    step_started = perf()
                    # Clear the mailbox so a step that completes no
                    # fetch (retry exhaustion / breaker gate skips
                    # draining the frontier) cannot leave a stale event
                    # behind to be double-counted; reconcile against the
                    # engine's own completed-step count.
                    last_event[0] = None
                    advanced = engine.run(budget=1)
                    event = last_event[0]
                    if not advanced:
                        assert event is None
                        continue
                    assert event is not None
                    total_pages += advanced
                    if event.candidate.url in self._relevant:
                        covered += 1
                    if instr is not None:
                        instr.span(
                            "parallel",
                            "fetch",
                            start_s=step_started,
                            duration_s=perf() - step_started,
                            step=total_pages,
                            crawler=index,
                            url=event.candidate.url,
                            status=event.response.status,
                            relevant=event.judgment.relevant,
                            queue_size=len(engine.frontier),
                        )
                else:
                    continue
                break  # max_pages reached inside the for loop
        finally:
            if instr is not None:
                instr.count("parallel.pages", total_pages)
                instr.count("parallel.messages", self._counters["messages"])
                instr.count("parallel.messages_accepted", self._counters["accepted"])
                instr.count("parallel.dropped_links", self._counters["dropped"])
                instr.gauge(
                    "parallel.peak_frontier",
                    max(engine.frontier.peak_size for engine in engines),
                )
                self._classifier.bind_instrumentation(None)

        return ParallelResult(
            mode=config.mode,
            partitions=config.partitions,
            pages_crawled=total_pages,
            covered_relevant=covered,
            total_relevant=len(self._relevant),
            messages_exchanged=self._counters["messages"],
            messages_accepted=self._counters["accepted"],
            dropped_foreign_links=self._counters["dropped"],
            per_crawler_pages=tuple(engine.steps for engine in engines),
        )

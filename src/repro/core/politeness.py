"""Per-server queue crawl ordering (paper §4's second omitted detail).

"The first version of the crawling simulator ... has been implemented
with the omission of details such as elapsed time and per-server queue
typically found in a real-world web crawler."  :mod:`repro.core.timing`
restores elapsed time; this module restores the per-server queue.

A real crawler keeps one FIFO per site and serves sites round-robin so
no server sees request bursts.  :class:`HostQueueFrontier` implements
exactly that discipline, and :class:`PoliteOrderingStrategy` lets any
existing strategy's *link selection* run under it: the inner strategy
still decides which URLs enter the queue (hard-focused discarding,
limited-distance pruning, ...), while the per-server rotation replaces
its priority ordering.

The interesting question — answered by ``bench_ext_politeness.py`` — is
what that reordering costs: burstiness drops by construction; harvest
and coverage barely move.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from collections.abc import Iterable

from repro.core.classifier import Judgment
from repro.core.frontier import (
    Candidate,
    Frontier,
    candidate_from_dict,
    candidate_to_dict,
)
from repro.core.strategies.base import CrawlStrategy
from repro.errors import FrontierError, UrlError
from repro.urlkit.normalize import url_site_key
from repro.webspace.virtualweb import FetchResponse


def _site_of(url: str) -> str:
    try:
        return url_site_key(url)
    except UrlError:
        return url  # unparseable URLs get their own "site"


class HostQueueFrontier(Frontier):
    """One FIFO per site, served round-robin.

    Rotation order is site discovery order; a site leaves the rotation
    when its queue drains and re-enters at the back if new URLs for it
    arrive later — the steady-state behaviour of a polite fetcher pool.
    """

    def __init__(self) -> None:
        super().__init__()
        self._queues: OrderedDict[str, deque[Candidate]] = OrderedDict()
        self._rotation: deque[str] = deque()
        self._size = 0

    def push(self, candidate: Candidate) -> None:
        site = _site_of(candidate.url)
        queue = self._queues.get(site)
        if queue is None:
            queue = deque()
            self._queues[site] = queue
            self._rotation.append(site)
        elif not queue:
            # Site had drained and left the rotation; re-admit it.
            self._rotation.append(site)
        queue.append(candidate)
        self._size += 1
        self._note_size()

    def pop(self) -> Candidate:
        while self._rotation:
            site = self._rotation.popleft()
            queue = self._queues[site]
            if not queue:
                continue  # stale rotation entry
            candidate = queue.popleft()
            self._size -= 1
            self.pops += 1
            if queue:
                self._rotation.append(site)
            return candidate
        raise FrontierError("pop from empty host-queue frontier")

    def __len__(self) -> int:
        return self._size

    @property
    def site_count(self) -> int:
        """Number of sites currently holding queued URLs."""
        return sum(1 for queue in self._queues.values() if queue)

    def snapshot(self) -> dict:
        # Queues are serialised in discovery (insertion) order and the
        # rotation verbatim — stale entries for drained sites included —
        # so a restore reproduces the exact round-robin pop sequence,
        # not merely the same membership.
        return {
            "kind": "host-queue",
            **self._counters_dict(),
            "queues": [
                [site, [candidate_to_dict(candidate) for candidate in queue]]
                for site, queue in self._queues.items()
            ],
            "rotation": list(self._rotation),
        }

    def restore(self, state: dict) -> None:
        self._check_kind(state, "host-queue")
        self._queues = OrderedDict(
            (site, deque(candidate_from_dict(entry) for entry in entries))
            for site, entries in state["queues"]
        )
        self._rotation = deque(state["rotation"])
        self._size = sum(len(queue) for queue in self._queues.values())
        self._restore_counters(state)


class PoliteOrderingStrategy(CrawlStrategy):
    """Run any strategy's link selection under per-server rotation."""

    def __init__(self, inner: CrawlStrategy) -> None:
        self.inner = inner
        self.name = f"polite({inner.name})"
        self.wants_link_contexts = inner.wants_link_contexts

    def make_frontier(self) -> Frontier:
        return HostQueueFrontier()

    def seed_candidates(self, seed_urls) -> list[Candidate]:
        return self.inner.seed_candidates(seed_urls)

    def max_priority(self) -> int:
        return self.inner.max_priority()

    def expand(
        self,
        parent: Candidate,
        response: FetchResponse,
        judgment: Judgment,
        outlinks: Iterable[str],
        link_contexts=None,
    ) -> list[Candidate]:
        return self.inner.expand(parent, response, judgment, outlinks, link_contexts)


def max_same_site_run(urls: Iterable[str]) -> int:
    """Longest run of consecutive fetches against one site.

    Note that even a perfectly polite ordering produces long runs at the
    *tail* of a crawl, once only one site has queued work left — so the
    benchmark's primary burstiness measure is :func:`mean_same_site_run`,
    which is not dominated by the unavoidable tail.
    """
    longest = 0
    for length in _run_lengths(urls):
        if length > longest:
            longest = length
    return longest


def mean_same_site_run(urls: Iterable[str]) -> float:
    """Average length of consecutive same-site fetch runs.

    A polite rotation keeps this near 1.0 for as long as several sites
    hold queued work; burstier orderings hammer a site repeatedly and
    score higher.
    """
    total = 0
    runs = 0
    for length in _run_lengths(urls):
        total += length
        runs += 1
    return total / runs if runs else 0.0


def _run_lengths(urls: Iterable[str]) -> Iterable[int]:
    current_site: str | None = None
    run = 0
    for url in urls:
        site = _site_of(url)
        if site == current_site:
            run += 1
        else:
            if run:
                yield run
            current_site = site
            run = 1
    if run:
        yield run

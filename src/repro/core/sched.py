"""Virtual-time discrete-event crawl scheduling: K concurrent fetch slots.

The round-based :class:`~repro.core.engine.CrawlEngine` completes every
fetch the instant it is popped, so concurrency can never affect crawl
*order* — timing is pure accounting.  This module is the scheduling
refactor ROADMAP item 2 calls for: a deterministic virtual-time event
loop in which a fetch is **issued** at pop time, **completes** at its
simulated completion time, and its classify/extract/prioritize/schedule
stages run at completion.  With ``concurrency=K`` up to K fetches are in
flight at once, so frontier ordering now depends on latency, bandwidth,
per-host politeness windows and the fault layer's slow-host scaling —
the elapsed-time / per-server-queue dimension the paper's simulator
omitted (§6).

Determinism contract:

- The event heap orders on ``(completion_time, issue_sequence)``.  The
  issue sequence is unique, so ties at equal virtual time break on issue
  order, identically on every platform — tuple comparison never reaches
  the candidate.
- Slot refill is greedy *before* every completion: free slots are
  always refilled from the frontier until K fetches are in flight (or
  the frontier/page budget runs out).  Because refill never depends on
  how many completions a ``run(budget)`` call was asked for, a crawl
  stepped ``budget=1`` at a time is byte-identical to a one-shot run —
  the same cadence-independence the serve layer's eviction contract
  needs.
- ``run(budget)`` counts **completions** (crawl steps), never issues; a
  failed fetch round or a breaker gate skip consumes no slot and no
  budget, exactly as in the round-based engine.

K=1 equivalence contract: with one slot the loop degenerates to strict
issue → complete alternation, reproducing the round-based engine's
component-call sequence exactly — same pops, same fetches (retries
included), same schedule order.  The golden differential suite
(``tests/golden/test_golden_sched.py``) pins this byte-for-byte on all
seven fixtures with :func:`zero_latency_timing`.

Checkpointing: the in-flight event set serialises through
:meth:`VirtualTimeEngine.snapshot_events` into the checkpoint's
``sched`` section (format v2).  Issued-but-uncompleted fetches are
stored response-and-all — fault and visitor state advanced at issue
time, so a resumed crawl must *not* re-fetch them — with page records
re-attached from the crawl log on restore (records are a pure function
of the dataset).
"""

from __future__ import annotations

import base64
import heapq
import time
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Optional

from repro.core.candidate import candidate_from_dict, candidate_to_dict
from repro.core.engine import CrawlEngine, EngineStage
from repro.core.events import CrawlEvent
from repro.core.timing import TimingModel
from repro.errors import CheckpointError, ConfigError
from repro.faults.model import RETRYABLE_FAULTS
from repro.urlkit.normalize import intern_url, url_site_key
from repro.webspace.virtualweb import FetchResponse

if TYPE_CHECKING:
    from repro.core.frontier import Candidate

__all__ = [
    "VirtualTimeEngine",
    "zero_latency_timing",
    "response_to_dict",
    "response_from_dict",
]

#: One in-flight fetch: ``(completion, seq, start, pop_seconds,
#: candidate, response)``.  ``seq`` is unique, so heap comparisons never
#: reach the candidate; ``pop_seconds`` carries the issue-time frontier
#: pop duration to the completion-time hook dispatch (0.0 after resume —
#: wall-clock timings are telemetry, not checkpoint state).
_Event = tuple


def zero_latency_timing() -> TimingModel:
    """A timing model under which every fetch completes instantly.

    Infinite bandwidth (``size / inf == 0.0``), zero latency, zero
    politeness: all completion times are 0.0 and ties resolve purely on
    issue order.  This is the configuration the K=1 ≡ round-based
    equivalence contract is stated (and tested) under.
    """
    return TimingModel(
        bandwidth_bytes_per_s=float("inf"),
        latency_s=0.0,
        politeness_interval_s=0.0,
    )


def response_to_dict(response: FetchResponse) -> dict:
    """JSON form of an in-flight fetch's response (checkpoint ``sched``).

    The page record is *not* serialised — it is a pure function of the
    dataset, so only its presence is recorded (``has_record``) and
    :func:`response_from_dict` re-attaches it from the crawl log.  The
    body (present only under body synthesis, possibly garbled by the
    fault layer) travels as base64.
    """
    entry: dict = {
        "url": response.url,
        "status": response.status,
        "content_type": response.content_type,
        "charset": response.charset,
        "outlinks": list(response.outlinks),
        "size": response.size,
        "truncated": response.truncated,
        "fault": response.fault,
        "redirect_to": response.redirect_to,
        "adversary": response.adversary,
        "has_record": response.record is not None,
    }
    if response.body is not None:
        entry["body"] = base64.b64encode(response.body).decode("ascii")
    return entry


def response_from_dict(entry: dict, crawl_log: Any) -> FetchResponse:
    """Inverse of :func:`response_to_dict`, re-attaching the page record."""
    url = intern_url(entry["url"])
    record = None
    if entry["has_record"]:
        record = crawl_log.get(url)
        if record is None:
            raise CheckpointError(
                f"checkpointed in-flight fetch of {url!r} has no record in this "
                "crawl log; resume against the web space the checkpoint was "
                "taken from"
            )
    body_b64 = entry.get("body")
    return FetchResponse(
        url=url,
        status=entry["status"],
        content_type=entry["content_type"],
        charset=entry["charset"],
        outlinks=tuple(intern_url(link) for link in entry["outlinks"]),
        size=entry["size"],
        body=base64.b64decode(body_b64) if body_b64 is not None else None,
        record=record,
        truncated=entry["truncated"],
        fault=entry["fault"],
        # .get: format-v2 checkpoints predate the adversary layer.
        redirect_to=entry.get("redirect_to"),
        adversary=entry.get("adversary"),
    )


class VirtualTimeEngine(CrawlEngine):
    """Event-driven crawl engine with K concurrent fetch slots.

    A drop-in :class:`CrawlEngine` subclass: same components, same hook
    protocol, same resilience policies.  The loop is restructured around
    an event heap — each iteration greedily refills free slots (pop →
    gate → fetch with retries → reserve a completion time), then pops
    the earliest completion and runs its classify → extract → prioritize
    → schedule stages plus the step epilogue.

    Issue-time vs completion-time split: frontier pops, breaker gating,
    the fetch itself (retries and backoff included) and failed-round
    requeue/drop happen at issue; everything that depends on the page's
    *content* happens at completion.  Hook dispatch follows the split —
    ``on_retry``/``on_gate_skip``/``on_requeue``/``on_drop`` fire at
    issue, stage and step events replay in pipeline order at completion,
    so a :class:`~repro.obs.hooks.StepSpanHook` sees the same coherent
    per-step view it sees on the round-based engine.

    ``timing`` is mandatory here: virtual time *is* the scheduler.  The
    engine owns the K slots itself (via the event heap), so the timing
    model's ``connections`` pool is not consulted on this path —
    :meth:`TimingModel.reserve_fetch` books only per-site politeness.
    """

    def __init__(self, *, concurrency: int = 1, **components: Any) -> None:
        super().__init__(**components)
        if self.timing is None:
            raise ConfigError(
                "VirtualTimeEngine needs a timing= model — virtual time is the "
                "scheduler; use zero_latency_timing() for the degenerate clock"
            )
        if concurrency < 1:
            raise ConfigError("concurrency must be >= 1")
        self.concurrency = concurrency
        #: In-flight fetches, a heap of :data:`_Event` tuples.
        self._events: list[_Event] = []
        #: The event clock: virtual time of the last completion.
        self._now = 0.0
        #: Monotonic issue counter — the deterministic heap tiebreak.
        self._issue_seq = 0

    @property
    def has_pending_work(self) -> bool:
        """True while a step can still complete (queued *or* in flight)."""
        return bool(self.frontier) or bool(self._events)

    @property
    def in_flight(self) -> int:
        """Issued fetches whose completion has not been processed yet."""
        return len(self._events)

    @property
    def virtual_now(self) -> float:
        """Virtual time of the most recent completion."""
        return self._now

    def run(self, budget: Optional[int] = None) -> int:
        """Process up to ``budget`` completions (None = run to exhaustion).

        Returns the number of crawl steps (completions) this call
        executed.  Slot refill is greedy before every completion, so the
        result sequence is independent of the budget cadence.
        """
        frontier = self.frontier
        visitor = self.visitor
        strategy = self.strategy
        scheduled = self.scheduled
        recorder = self.recorder
        timing = self.timing
        assert timing is not None
        on_fetch = self.on_fetch
        faults = self.faults
        retry = self.retry
        breakers = self.breakers
        state = self.state
        max_pages = self.max_pages
        route = self.router
        events = self._events
        concurrency = self.concurrency

        pop = frontier.pop
        push = frontier.push
        fetch = visitor.fetch
        extract = visitor.extract
        judge = self.classifier.judge
        expand = strategy.expand
        # Same conditional hand-off as the round-based loop: contexts
        # are only computed for strategies that ask for them.
        wants_contexts = getattr(strategy, "wants_link_contexts", False)
        extract_contexts = visitor.extract_contexts if wants_contexts else None
        tick = strategy.tick if self.call_tick else None
        record = recorder.record if recorder is not None else None
        scheduled_add = scheduled.add
        reserve = timing.reserve_fetch
        site_of = url_site_key

        resilient = retry is not None
        max_attempts = retry.max_attempts if retry is not None else 0
        backoff_s = retry.backoff_s if retry is not None else None
        has_faults = faults is not None
        defenses = self.defenses
        # Same dead-code disarm as the round-based loop: with no fault
        # model and an empty breaker board, the gate can never trip.
        track_hosts = has_faults or (breakers is not None and breakers.open_hosts() > 0)
        need_host = track_hosts or defenses is not None
        allow = breakers.allow if breakers is not None and track_hosts else None
        on_success = breakers.record_success if breakers is not None and track_hosts else None

        stage_cbs = self._stage_cbs
        timing_cbs = self._timing_cbs
        step_cbs = self._step_cbs
        retry_cbs = self._retry_cbs
        gate_cbs = self._gate_cbs
        wall = self._wall
        step = self.step
        perf = time.perf_counter
        stage_pop = EngineStage.POP
        stage_gate = EngineStage.GATE
        stage_fetch = EngineStage.FETCH
        stage_classify = EngineStage.CLASSIFY
        stage_extract = EngineStage.EXTRACT
        stage_prioritize = EngineStage.PRIORITIZE
        stage_schedule = EngineStage.SCHEDULE

        executed = 0
        steps = state.steps
        try:
            while True:
                if max_pages is not None and steps >= max_pages:
                    break
                if budget is not None and executed >= budget:
                    break

                # -- issue phase: greedily refill free fetch slots ------
                # The page-cap guard counts in-flight fetches: every
                # issued fetch will complete, so issuance past the cap
                # would overshoot it.
                while (
                    len(events) < concurrency
                    and frontier
                    and (max_pages is None or steps + len(events) < max_pages)
                ):
                    if wall:
                        pop_started = perf()
                        candidate = pop()
                        pop_s = perf() - pop_started
                    else:
                        candidate = pop()
                        pop_s = 0.0
                    if resilient:
                        state.pops += 1

                    # Gate (circuit breaker, defense policy) — issue-time.
                    host: Optional[str] = None
                    if need_host:
                        host = site_of(candidate.url)
                        if allow is not None and not allow(host, state.pops):
                            state.breaker_skips += 1
                            if gate_cbs is not None:
                                for callback in gate_cbs:
                                    callback(candidate)
                            self._requeue_or_drop(candidate)
                            continue
                        if defenses is not None:
                            canonical = defenses.canonicalize(candidate.url)
                            if canonical is not None:
                                # Session alias: crawl the base once,
                                # skip every further alias outright.
                                if canonical in scheduled:
                                    defenses.stats["alias_skips"] += 1
                                    if gate_cbs is not None:
                                        for callback in gate_cbs:
                                            callback(candidate)
                                    continue
                                canonical = intern_url(canonical)
                                scheduled_add(canonical)
                                candidate = replace(candidate, url=canonical)
                            if not defenses.admit(candidate.url, host):
                                # Permanent policy refusal, same as the
                                # round-based gate: no requeue, no slot.
                                if gate_cbs is not None:
                                    for callback in gate_cbs:
                                        callback(candidate)
                                continue

                    # Fetch with retry/backoff — the response (and the
                    # fault layer's state) materialises at issue time.
                    response = fetch(candidate.url)
                    if response.fault is not None:
                        attempt = 1
                        while response.fault in RETRYABLE_FAULTS and attempt < max_attempts:
                            state.retries += 1
                            if retry_cbs is not None:
                                for callback in retry_cbs:
                                    callback(candidate, attempt)
                            if backoff_s is not None:
                                timing.delay_site(candidate.url, backoff_s(attempt))
                            response = fetch(candidate.url)
                            attempt += 1
                        if response.fault in RETRYABLE_FAULTS:
                            # Failed round: no page, no slot, no step.
                            if breakers is not None:
                                breakers.record_failure(host, state.pops)
                            self._requeue_or_drop(candidate)
                            continue
                    if response.redirect_to is not None:
                        # Chains resolve at issue time, like retries: the
                        # slot is reserved for the content that finally
                        # arrives (or the abandoned 301).
                        response = self._follow_redirects(response, fetch)
                        if response.fault in RETRYABLE_FAULTS:
                            if breakers is not None:
                                breakers.record_failure(host, state.pops)
                            self._requeue_or_drop(candidate)
                            continue
                    if on_success is not None:
                        on_success(host)

                    if has_faults and host is not None:
                        lscale, bscale = faults.fetch_scales(host, candidate.url)
                    else:
                        lscale = bscale = 1.0
                    start, completion = reserve(
                        candidate.url, response.size, self._now, lscale, bscale
                    )
                    seq = self._issue_seq
                    self._issue_seq = seq + 1
                    heapq.heappush(
                        events, (completion, seq, start, pop_s, candidate, response)
                    )

                if not events:
                    break

                # -- completion phase: earliest event's content stages --
                completion, _seq, _start, pop_s, candidate, response = heapq.heappop(events)
                self._now = completion
                if wall:
                    step.started_s = perf()
                if timing_cbs is not None:
                    for callback in timing_cbs:
                        callback(stage_pop, pop_s, step)
                if stage_cbs is not None:
                    step.candidate = candidate
                    for callback in stage_cbs:
                        callback(stage_pop, step)
                    for callback in stage_cbs:
                        callback(stage_gate, step)
                    step.response = response
                    for callback in stage_cbs:
                        callback(stage_fetch, step)

                # -- classify -------------------------------------------
                judgment = judge(response)
                steps += 1
                if stage_cbs is not None:
                    step.steps = steps
                    step.judgment = judgment
                    for callback in stage_cbs:
                        callback(stage_classify, step)
                # This fetch's own completion time, not the global clock
                # maximum: the event loop processes completions in time
                # order, so the recorded series stays monotone.
                sim_time = completion

                # -- extract --------------------------------------------
                outlinks = extract(response)
                if defenses is not None:
                    # Content policy runs at completion (it needs the
                    # judgment); the host is recomputed — site keys are
                    # memoised, so this is a dict probe.
                    dhost = site_of(candidate.url)
                    if defenses.suppress_links(response, dhost, judgment.relevant):
                        outlinks = ()
                    defenses.note_page(dhost, judgment.relevant)
                if stage_cbs is not None:
                    step.outlinks = outlinks
                    for callback in stage_cbs:
                        callback(stage_extract, step)

                # -- prioritize (strategy link expansion) ---------------
                if extract_contexts is not None:
                    link_contexts = extract_contexts(response, outlinks)
                    if timing_cbs is not None:
                        expand_started = perf()
                        children = expand(candidate, response, judgment, outlinks, link_contexts)
                        now_s = perf()
                        for callback in timing_cbs:
                            callback(stage_prioritize, now_s - expand_started, step)
                    else:
                        children = expand(candidate, response, judgment, outlinks, link_contexts)
                elif timing_cbs is not None:
                    expand_started = perf()
                    children = expand(candidate, response, judgment, outlinks)
                    now_s = perf()
                    for callback in timing_cbs:
                        callback(stage_prioritize, now_s - expand_started, step)
                else:
                    children = expand(candidate, response, judgment, outlinks)
                if stage_cbs is not None:
                    step.children = children
                    for callback in stage_cbs:
                        callback(stage_prioritize, step)

                # -- schedule -------------------------------------------
                pushed = 0
                if timing_cbs is not None:
                    push_started = perf()
                if route is None:
                    for child in children:
                        url = child.url
                        if url not in scheduled:
                            scheduled_add(url)
                            push(child)
                            pushed += 1
                else:
                    for child in children:
                        route(child)
                if timing_cbs is not None:
                    now_s = perf()
                    step.pushed = pushed
                    for callback in timing_cbs:
                        callback(stage_schedule, now_s - push_started, step)
                if tick is not None:
                    tick(steps, frontier)
                if stage_cbs is not None:
                    step.pushed = pushed
                    for callback in stage_cbs:
                        callback(stage_schedule, step)

                # -- step epilogue: record, callback, hooks -------------
                if record is not None:
                    record(
                        url=candidate.url,
                        judged_relevant=judgment.relevant,
                        queue_size=len(frontier),
                        sim_time=sim_time,
                    )
                if on_fetch is not None:
                    on_fetch(
                        CrawlEvent(
                            step=steps,
                            candidate=candidate,
                            response=response,
                            judgment=judgment,
                            queue_size=len(frontier),
                            scheduled_count=len(scheduled),
                            sim_time=sim_time,
                        )
                    )
                if step_cbs is not None:
                    step.steps = steps
                    step.candidate = candidate
                    step.response = response
                    step.judgment = judgment
                    step.sim_time = sim_time
                    step.pushed = pushed
                    step.queue_size = len(frontier)
                    step.scheduled_count = len(scheduled)
                    for callback in step_cbs:
                        callback(step)
                executed += 1
        finally:
            state.steps = steps
        return executed

    # -- checkpoint support --------------------------------------------------

    def snapshot_events(self) -> dict:
        """Serialisable in-flight state (the checkpoint ``sched`` section).

        Events serialise in canonical ``(completion, seq)`` order — the
        heap's internal list layout is an implementation detail — and
        :meth:`restore_events` re-heapifies.
        """
        return {
            "concurrency": self.concurrency,
            "now": self._now,
            "issue_seq": self._issue_seq,
            "events": [
                {
                    "completion": completion,
                    "seq": seq,
                    "start": start,
                    "candidate": candidate_to_dict(candidate),
                    "response": response_to_dict(response),
                }
                for completion, seq, start, _pop_s, candidate, response in sorted(
                    self._events, key=lambda event: (event[0], event[1])
                )
            ],
        }

    def restore_events(self, state: dict) -> None:
        """Load a :meth:`snapshot_events` into this (fresh) engine."""
        if state["concurrency"] != self.concurrency:
            raise CheckpointError(
                f"checkpoint was taken at concurrency={state['concurrency']}; "
                f"resume with the same concurrency, not {self.concurrency}"
            )
        crawl_log = self.visitor.web.crawl_log
        events: list[_Event] = [
            (
                entry["completion"],
                entry["seq"],
                entry["start"],
                0.0,
                candidate_from_dict(entry["candidate"]),
                response_from_dict(entry["response"], crawl_log),
            )
            for entry in state["events"]
        ]
        heapq.heapify(events)
        self._events = events
        self._now = state["now"]
        self._issue_seq = state["issue_seq"]

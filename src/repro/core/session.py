"""Crawl sessions: the lifecycle object every sequential run flows through.

The paper runs crawls as one-shot batch simulations; a serving system
runs them as *sessions* — long-lived, budget-stepped, evictable.  This
module is the session layer both shapes share:

- :class:`CrawlRequest` says **what** to crawl (web space or dataset,
  strategy, classifier, seeds, recall denominator);
- :class:`SessionConfig` says **how** to run it (page cap, sampling,
  checkpointing, timing, faults, resilience, telemetry, resume state);
- :class:`CrawlSession` is the lifecycle — ``open → step(budget) →
  status/report → close`` — layered directly on
  :meth:`repro.core.engine.CrawlEngine.run`'s budgeted stepping.

One-shot callers (:func:`repro.api.run_crawl`, the
:class:`~repro.core.simulator.Simulator` configurator) are thin
wrappers: open, step to exhaustion, report, close.  The serving layer
(:mod:`repro.serve`) holds sessions open across requests and *evicts*
idle ones through :meth:`CrawlSession.snapshot` — the same
:class:`~repro.core.checkpoint.CheckpointState` machinery the kill/
resume differential suite pins, so an evicted-and-resumed session
replays byte-identical to one that never left memory.

``SimulationConfig`` and ``CrawlResult`` live here (they are session
vocabulary) and stay importable from :mod:`repro.core.simulator`, their
historical home.
"""

from __future__ import annotations

import time
from collections.abc import Set as AbstractSet
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.adversary import (
    AdversarialWebSpace,
    AdversaryModel,
    DefenseConfig,
    DefensePolicy,
)
from repro.core.checkpoint import CheckpointState, read_checkpoint, write_checkpoint
from repro.core.classifier import Classifier, ClassifierMode
from repro.core.engine import (
    CheckpointHook,
    CrawlEngine,
    EngineHook,
    EngineLoopState,
    EngineStep,
)
from repro.core.events import FetchCallback
from repro.core.metrics import CrawlSummary, MetricsRecorder, MetricSeries
from repro.core.sched import VirtualTimeEngine
from repro.core.spilling import SpillConfig, SpillingStrategy
from repro.core.strategies.base import CrawlStrategy
from repro.core.strategies.registry import get_strategy
from repro.core.timing import TimingModel
from repro.core.visitor import Visitor
from repro.errors import CheckpointError, ConfigError, SessionError, SimulationError
from repro.faults.model import FaultModel, FaultyWebSpace
from repro.faults.resilience import HostBreakers, ResilienceConfig, ResilienceStats
from repro.obs import Instrumentation
from repro.obs.hooks import ResilienceCountersHook, StepSpanHook
from repro.obs.instrument import active as _active_instrumentation
from repro.urlkit.normalize import intern_url
from repro.webspace.stats import relevant_url_set
from repro.webspace.virtualweb import VirtualWebSpace

if TYPE_CHECKING:
    from repro.core.parallel import ParallelConfig


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Run-level knobs independent of the strategy under test.

    Attributes:
        max_pages: stop after this many fetches (None = run the frontier
            dry, the paper's setting).
        sample_interval: metric sampling period in pages.
        extract_from_body: parse outlinks from synthesized HTML instead
            of reading them from the crawl-log record.
        checkpoint_every: write a resumable checkpoint every this many
            crawled pages (None = never).  Requires ``checkpoint_path``.
        checkpoint_path: destination file of the periodic checkpoint
            (each write atomically replaces the previous one).
    """

    max_pages: int | None = None
    sample_interval: int = 500
    extract_from_body: bool = False
    checkpoint_every: int | None = None
    checkpoint_path: str | Path | None = None


@dataclass(frozen=True, slots=True)
class CrawlResult:
    """Everything a finished simulation reports.

    Satisfies the :class:`repro.core.summary.CrawlReport` protocol
    (``pages_crawled`` / ``coverage`` / ``to_dict``), the shape shared
    with :class:`repro.core.parallel.ParallelResult` so report code can
    render either without isinstance checks.
    """

    strategy: str
    series: MetricSeries
    summary: CrawlSummary
    wall_seconds: float
    pages_crawled: int
    frontier_peak: int
    #: Resilient-pipeline tallies (:meth:`ResilienceStats.to_dict`
    #: shape) when the run used the resilient pipeline; None on clean
    #: runs.
    resilience: dict | None = None
    #: Adversary-layer observability when the run attached an adversary
    #: or armed defenses: injection tallies, defense stats, redirect
    #: counters.  None on clean runs, and deliberately **excluded** from
    #: :func:`report_payload` — like ``wall_seconds``, it describes the
    #: scenario infrastructure, not the crawl's reported metrics.
    adversary: dict | None = None

    @property
    def final_harvest_rate(self) -> float:
        return self.summary.final_harvest_rate

    @property
    def final_coverage(self) -> float:
        return self.summary.final_coverage

    @property
    def coverage(self) -> float:
        """Protocol alias of :attr:`final_coverage`."""
        return self.summary.final_coverage

    def to_dict(self) -> dict:
        """Report-friendly flat summary (the run's headline numbers)."""
        return {
            "strategy": self.strategy,
            "pages_crawled": self.summary.pages_crawled,
            "final_harvest_rate": self.summary.final_harvest_rate,
            "final_coverage": self.summary.final_coverage,
            "max_queue_size": self.summary.max_queue_size,
        }


def report_payload(result: CrawlResult) -> dict:
    """The deterministic report of a run, as plain JSON-able dicts.

    This is the payload "byte-identical" claims are made over: the
    headline numbers, the full summary, and the sampled series — every
    field a function of the crawl's fetch sequence alone.  Wall-clock
    time and infrastructure tallies (checkpoint writes, whether the
    resilient pipeline happened to be armed) are deliberately excluded:
    a session that was evicted and resumed must produce the same payload
    as a one-shot run, and those fields are properties of the serving
    infrastructure, not of the crawl.
    """
    return {
        "result": result.to_dict(),
        "summary": asdict(result.summary),
        "series": result.series.to_dict(),
    }


@dataclass(frozen=True)
class CrawlRequest:
    """What to crawl: the workload half of a session, in one object.

    Exactly one of ``web`` / ``dataset`` supplies the space.  A
    ``dataset`` also defaults ``classifier`` (the charset classifier of
    its target language), ``seeds`` (the captured seed list) and
    ``relevant_urls`` (the explicit-recall denominator).

    ``strategy`` is a :class:`CrawlStrategy` instance, a zero-arg
    factory, or a registered name (``params`` are the name's constructor
    keywords, e.g. ``CrawlRequest(strategy="limited-distance",
    params={"n": 2})``).
    """

    strategy: CrawlStrategy | Callable[[], CrawlStrategy] | str
    params: Mapping[str, Any] = field(default_factory=dict)
    web: VirtualWebSpace | None = None
    dataset: Any = None
    classifier: Classifier | None = None
    seeds: Sequence[str] | None = None
    relevant_urls: AbstractSet[str] | None = None

    def build_strategy(self) -> CrawlStrategy:
        """Resolve ``strategy`` to an instance (registry names allowed)."""
        strategy = self.strategy
        if isinstance(strategy, str):
            return get_strategy(strategy, **dict(self.params))
        if self.params:
            raise ConfigError("params= only combines with a registry-name strategy")
        if isinstance(strategy, CrawlStrategy):
            return strategy
        built = strategy()
        if not isinstance(built, CrawlStrategy):
            raise ConfigError("strategy factory did not produce a CrawlStrategy")
        return built

    def strategy_factory(self) -> Callable[[], CrawlStrategy]:
        """Resolve ``strategy`` to a per-partition factory (parallel runs)."""
        strategy = self.strategy
        if isinstance(strategy, CrawlStrategy):
            raise ConfigError(
                "a parallel crawl needs a strategy *factory* (a class, "
                "zero-arg callable, or registered name), not an instance "
                "— each partition builds its own"
            )
        if isinstance(strategy, str):
            name, params = strategy, dict(self.params)
            get_strategy(name, **params)  # fail fast on an unknown name
            return lambda: get_strategy(name, **params)
        return strategy

    def resolve(self) -> "CrawlRequest":
        """A copy with every dataset default applied and validated.

        Building the web space is the expensive part of a session, so
        sessions call this from :meth:`CrawlSession.open`, not at
        construction.
        """
        web = self.web
        classifier = self.classifier
        seeds = self.seeds
        relevant_urls = self.relevant_urls
        if self.dataset is not None:
            if web is not None:
                raise ConfigError("pass either web= or dataset=, not both")
            if classifier is None:
                classifier = Classifier(self.dataset.target_language)
            if classifier.mode in (ClassifierMode.META, ClassifierMode.DETECTOR):
                # Body-reading classifiers need synthesized HTML to judge.
                from repro.graphgen.htmlsynth import HtmlSynthesizer

                web = self.dataset.web(body_synthesizer=HtmlSynthesizer())
            else:
                web = self.dataset.web()
            if seeds is None:
                seeds = tuple(self.dataset.seed_urls)
            if relevant_urls is None:
                relevant_urls = self.dataset.relevant_urls()
        if web is None:
            raise ConfigError("a crawl session needs a web= space or a dataset=")
        if classifier is None:
            raise ConfigError(
                "a crawl session needs a classifier= (or a dataset= to default from)"
            )
        if seeds is None:
            raise ConfigError("a crawl session needs seeds= (or a dataset= to default from)")
        return replace(
            self,
            web=web,
            dataset=None,
            classifier=classifier,
            seeds=tuple(seeds),
            relevant_urls=relevant_urls,
        )


@dataclass(frozen=True)
class SessionConfig:
    """How a session runs: every run-shaping knob in one typed object.

    The first five fields are :class:`SimulationConfig` (the engine-level
    subset); the rest used to be ``run_crawl``'s loose keyword surface.
    ``parallel`` switches the run to the partitioned engine — a
    :class:`~repro.core.parallel.ParallelConfig` session is driven by
    :func:`repro.api.run_crawl`, never by :class:`CrawlSession` (the
    sequential lifecycle object).
    """

    max_pages: int | None = None
    sample_interval: int = 500
    extract_from_body: bool = False
    checkpoint_every: int | None = None
    checkpoint_path: str | Path | None = None
    timing: TimingModel | None = None
    #: Number of concurrent fetch slots.  None runs the round-based
    #: engine (the paper's setting); an integer K >= 1 runs the
    #: event-driven :class:`~repro.core.sched.VirtualTimeEngine`, with
    #: ``timing`` defaulting to a fresh :class:`TimingModel` when unset.
    concurrency: int | None = None
    on_fetch: FetchCallback | None = None
    instrumentation: Instrumentation | None = None
    faults: FaultModel | None = None
    resilience: ResilienceConfig | None = None
    #: Content-level adversary layer (spider traps, redirect chains,
    #: soft-404s, aliases, charset lies).  Wrapped *inside* the fault
    #: layer, so faults also strike synthetic adversarial URLs.
    adversary: AdversaryModel | None = None
    #: Engine countermeasures (:class:`~repro.adversary.DefenseConfig`).
    #: An all-default config is inert — no policy is built.
    defenses: DefenseConfig | None = None
    #: Disk-spilling frontier (:class:`~repro.core.spilling.SpillConfig`).
    #: The session wraps the strategy in a
    #: :class:`~repro.core.spilling.SpillingStrategy` at open time; over
    #: a store-backed web space the cold tail spills as URL ids into the
    #: store's arena instead of URL strings.  Mutually exclusive with
    #: checkpointing (``checkpoint_every`` / ``snapshot()``): the
    #: spilling frontier holds disk state a checkpoint cannot capture.
    spill: SpillConfig | None = None
    resume_from: CheckpointState | str | Path | None = None
    hooks: tuple[EngineHook, ...] = ()
    record_fault_journal: bool = False
    record_adversary_journal: bool = False
    parallel: "ParallelConfig | None" = None

    def __post_init__(self) -> None:
        # Accept any sequence of hooks; store the canonical tuple.
        if not isinstance(self.hooks, tuple):
            object.__setattr__(self, "hooks", tuple(self.hooks))

    def simulation(self) -> SimulationConfig:
        """The engine-level subset, as a :class:`SimulationConfig`."""
        return SimulationConfig(
            max_pages=self.max_pages,
            sample_interval=self.sample_interval,
            extract_from_body=self.extract_from_body,
            checkpoint_every=self.checkpoint_every,
            checkpoint_path=self.checkpoint_path,
        )

    @classmethod
    def from_simulation(cls, config: SimulationConfig, **extras: Any) -> "SessionConfig":
        """Upgrade a :class:`SimulationConfig` (extras fill the rest)."""
        return cls(
            max_pages=config.max_pages,
            sample_interval=config.sample_interval,
            extract_from_body=config.extract_from_body,
            checkpoint_every=config.checkpoint_every,
            checkpoint_path=config.checkpoint_path,
            **extras,
        )


@dataclass(frozen=True, slots=True)
class SessionStatus:
    """A point-in-time view of one session, cheap enough to poll."""

    state: str
    steps: int
    queue_size: int
    scheduled: int
    done: bool
    retries: int = 0
    requeued: int = 0
    dropped: int = 0
    breaker_skips: int = 0
    checkpoints_written: int = 0

    def to_dict(self) -> dict:
        return asdict(self)


class CrawlSession:
    """One crawl as a lifecycle: ``open → step(budget) → report → close``.

    The session owns the component graph the Figure-2 simulator wires —
    visitor, classifier, strategy, frontier, recorder — and drives it
    through :meth:`CrawlEngine.run`'s budgeted stepping, so callers
    choose the cadence: one-shot (``run()``), interactive
    (``step(budget)`` until :attr:`done`), or served (a
    :class:`~repro.serve.SessionManager` stepping many sessions).

    Eviction contract: :meth:`snapshot` captures the full resumable
    state **at a step boundary** (between ``step()`` calls the engine's
    loop state is always consistent — an in-flight fetch round's retries
    are either fully recorded or will be fully replayed).  A session
    rebuilt with ``SessionConfig(resume_from=snapshot)`` over the same
    request continues byte-identically — including in-flight requeue
    budgets, fault-injection indices and breaker cooldowns — which is
    the same guarantee the kill/resume differential suite pins.

    Sessions are not thread-safe; the serving layer serialises access
    per session.
    """

    def __init__(self, request: CrawlRequest, config: SessionConfig | None = None) -> None:
        if not isinstance(request, CrawlRequest):
            raise ConfigError(f"CrawlSession needs a CrawlRequest, got {type(request).__name__}")
        config = config or SessionConfig()
        if config.parallel is not None:
            raise ConfigError(
                "CrawlSession drives the sequential engine; run a ParallelConfig "
                "session through repro.api.run_crawl"
            )
        if config.checkpoint_every is not None:
            if config.checkpoint_every < 1:
                raise ConfigError("checkpoint_every must be >= 1")
            if config.checkpoint_path is None:
                raise ConfigError("checkpoint_every requires checkpoint_path")
        if config.spill is not None and (
            config.checkpoint_every is not None or config.resume_from is not None
        ):
            raise ConfigError(
                "spill= cannot combine with checkpointing/resume: the spilling "
                "frontier's disk tail is not captured by CheckpointState"
            )
        resume = config.resume_from
        if isinstance(resume, (str, Path)):
            resume = read_checkpoint(resume)
        self._request = request
        self._config = config
        self._resume_state = resume
        if config.concurrency is not None and config.concurrency < 1:
            raise ConfigError("concurrency must be >= 1")
        # The event-driven engine *is* its timing model; default one so
        # concurrency=K alone is a complete configuration.
        self._timing = config.timing
        if config.concurrency is not None and self._timing is None:
            self._timing = TimingModel()
        resilient = (
            config.faults is not None
            or config.resilience is not None
            or config.checkpoint_every is not None
            or resume is not None
        )
        self._resilience = (config.resilience or ResilienceConfig()) if resilient else None
        self._state = "new"
        self._wall = 0.0
        #: The fault-injecting web wrapper (None until open / on clean
        #: runs) — tests read its journal and injection tallies.
        self.faulty_web: FaultyWebSpace | None = None
        #: The adversarial web wrapper (None until open / without an
        #: adversary) — tests read its journal and injection tallies.
        self.adversarial_web: AdversarialWebSpace | None = None
        self._defenses: DefensePolicy | None = None
        self._engine: CrawlEngine | None = None
        self._strategy: CrawlStrategy | None = None
        self._classifier: Classifier | None = None
        self._visitor: Visitor | None = None
        self._recorder: MetricsRecorder | None = None
        self._frontier = None
        self._scheduled: set[str] | None = None
        self._breakers: HostBreakers | None = None
        self._instr: Instrumentation | None = None

    # -- lifecycle ------------------------------------------------------

    @property
    def state(self) -> str:
        """``"new"`` (not yet opened), ``"open"``, or ``"closed"``."""
        return self._state

    def open(self) -> "CrawlSession":
        """Build the component graph and seed (or resume) the frontier.

        Idempotent while open; called implicitly by the first ``step``/
        ``report``/``snapshot``.  This is where the expensive work
        happens — dataset webs are materialised here, not at
        construction.
        """
        if self._state == "open":
            return self
        if self._state == "closed":
            raise SessionError("cannot reopen a closed crawl session")
        request = self._request.resolve()
        strategy = request.build_strategy()
        if not request.seeds:
            raise SimulationError("at least one seed URL is required")
        config = self._config
        assert request.web is not None and request.classifier is not None
        if config.spill is not None:
            page_source = request.web.crawl_log
            if not (config.spill.use_page_ids and hasattr(page_source, "id_of")):
                page_source = None  # in-memory log: spill URL strings
            strategy = SpillingStrategy(
                strategy,
                memory_limit=config.spill.memory_limit,
                spill_dir=config.spill.spill_dir,
                page_source=page_source,
            )
        relevant_urls = request.relevant_urls
        if relevant_urls is None:
            relevant_urls = relevant_url_set(
                request.web.crawl_log, request.classifier.target_language
            )

        instr = _active_instrumentation(config.instrumentation)
        web: VirtualWebSpace | AdversarialWebSpace | FaultyWebSpace = request.web
        adversarial: AdversarialWebSpace | None = None
        if config.adversary is not None:
            if config.extract_from_body and not config.adversary.profile.is_empty:
                raise ConfigError(
                    "extract_from_body= cannot combine with a non-empty adversary "
                    "profile: body-parsed links bypass the adversary's outlink "
                    "rewriting, so traps and aliases would never be reachable"
                )
            adversarial = AdversarialWebSpace(
                web, config.adversary, record_journal=config.record_adversary_journal
            )
            web = adversarial
        self.adversarial_web = adversarial
        faulty: FaultyWebSpace | None = None
        if config.faults is not None:
            # Faults wrap *outside* the adversary: a flaky host is flaky
            # on its trap and alias URLs too.
            faulty = FaultyWebSpace(
                web, config.faults, record_journal=config.record_fault_journal
            )
            web = faulty
        self.faulty_web = faulty
        defenses: DefensePolicy | None = None
        if config.defenses is not None and config.defenses.enabled:
            defenses = DefensePolicy(config.defenses)
        self._defenses = defenses
        visitor = Visitor(
            web,
            extract_from_body=config.extract_from_body,
            instrumentation=instr,
        )
        classifier = request.classifier
        if instr is not None:
            classifier.bind_instrumentation(instr)
            strategy.bind_instrumentation(instr)
        frontier = strategy.make_frontier()
        recorder = MetricsRecorder(
            name=strategy.name,
            relevant_urls=relevant_urls,
            sample_interval=config.sample_interval,
        )

        resilience = self._resilience
        breakers: HostBreakers | None = None
        if resilience is not None and resilience.breaker is not None:
            breakers = HostBreakers(resilience.breaker)

        scheduled: set[str] = set()
        rstate = EngineLoopState()
        resume = self._resume_state
        if resume is not None:
            self._apply_resume(
                resume,
                strategy,
                frontier,
                recorder,
                visitor,
                scheduled,
                faulty,
                breakers,
                adversarial,
                defenses,
            )
            rstate = EngineLoopState.from_dict(resume.loop)

        self._strategy = strategy
        self._classifier = classifier
        self._visitor = visitor
        self._recorder = recorder
        self._frontier = frontier
        self._scheduled = scheduled
        self._breakers = breakers
        self._instr = instr
        components: dict[str, Any] = dict(
            frontier=frontier,
            visitor=visitor,
            classifier=classifier,
            strategy=strategy,
            scheduled=scheduled,
            recorder=recorder,
            max_pages=config.max_pages,
            timing=self._timing,
            on_fetch=config.on_fetch,
            faults=config.faults,
            retry=resilience.retry if resilience is not None else None,
            breakers=breakers,
            defenses=defenses,
            hooks=self._build_hooks(instr, resilience, rstate),
            loop_state=rstate,
        )
        engine: CrawlEngine
        if config.concurrency is not None:
            engine = VirtualTimeEngine(concurrency=config.concurrency, **components)
        else:
            engine = CrawlEngine(**components)
        self._engine = engine
        if resume is not None:
            # The sched section and the engine kind must agree: a
            # checkpoint with in-flight state needs the event-driven
            # engine to replay it, and an event-driven resume without
            # its section would silently drop issued fetches.
            if resume.sched is not None:
                if not isinstance(engine, VirtualTimeEngine):
                    raise CheckpointError(
                        "checkpoint carries in-flight scheduler state; resume "
                        "with the same concurrency= configuration"
                    )
                engine.restore_events(resume.sched)
            elif isinstance(engine, VirtualTimeEngine):
                raise CheckpointError(
                    "checkpoint was taken by the round-based engine; it cannot "
                    "resume under concurrency= — rerun it round-based"
                )
        else:
            engine.seed(list(request.seeds))
        self._state = "open"
        return self

    def step(self, budget: int | None = None) -> int:
        """Crawl up to ``budget`` pages (None = to exhaustion / page cap).

        Returns the number of crawl steps completed by this call; 0 when
        the session is already :attr:`done`.
        """
        self.open()
        assert self._engine is not None
        started = time.perf_counter()
        try:
            return self._engine.run(budget)
        finally:
            self._wall += time.perf_counter() - started

    @property
    def steps(self) -> int:
        """Completed crawl steps so far (0 before open)."""
        return self._engine.steps if self._engine is not None else 0

    @property
    def done(self) -> bool:
        """True once the frontier drained or the page cap was reached."""
        if self._engine is None:
            return False
        if not self._engine.has_pending_work:
            return True
        max_pages = self._config.max_pages
        return max_pages is not None and self._engine.steps >= max_pages

    def status(self) -> SessionStatus:
        """A cheap point-in-time view (valid in every lifecycle state)."""
        engine = self._engine
        if engine is None:
            return SessionStatus(
                state=self._state, steps=0, queue_size=0, scheduled=0, done=False
            )
        loop = engine.state
        return SessionStatus(
            state=self._state,
            steps=loop.steps,
            queue_size=len(engine.frontier),
            scheduled=len(engine.scheduled),
            done=self.done,
            retries=loop.retries,
            requeued=loop.requeued,
            dropped=loop.dropped,
            breaker_skips=loop.breaker_skips,
            checkpoints_written=loop.checkpoints_written,
        )

    def report(self) -> CrawlResult:
        """The run's :class:`CrawlResult` as of the current step count.

        Callable mid-crawl (a progress report) or after :attr:`done`
        (the final report); does not close the session.
        """
        self.open()
        assert (
            self._recorder is not None
            and self._strategy is not None
            and self._engine is not None
            and self._visitor is not None
        )
        series, summary = self._recorder.finish(self._strategy.name)
        resilience_dict: dict | None = None
        if self._resilience is not None:
            rstate = self._engine.state
            resilience_dict = ResilienceStats(
                retries=rstate.retries,
                requeued=rstate.requeued,
                dropped=rstate.dropped,
                fetches_failed=self._visitor.fetches_failed,
                breaker_skips=rstate.breaker_skips,
                breaker_opened=self._breakers.opened if self._breakers is not None else 0,
                checkpoints_written=rstate.checkpoints_written,
                faults_injected=dict(self._config.faults.injected)
                if self._config.faults
                else {},
            ).to_dict()
        adversary_dict: dict | None = None
        if self.adversarial_web is not None or self._defenses is not None:
            rstate = self._engine.state
            adversary_dict = {
                "injected": dict(self.adversarial_web.model.injected)
                if self.adversarial_web is not None
                else {},
                "defense_stats": dict(self._defenses.stats)
                if self._defenses is not None
                else {},
                "redirect_hops": rstate.redirect_hops,
                "redirect_aborts": rstate.redirect_aborts,
            }
        return CrawlResult(
            strategy=self._strategy.name,
            series=series,
            summary=summary,
            wall_seconds=self._wall,
            pages_crawled=self._recorder.steps,
            frontier_peak=self._frontier.peak_size,
            resilience=resilience_dict,
            adversary=adversary_dict,
        )

    def close(self) -> None:
        """Flush telemetry and release the frontier.  Idempotent."""
        if self._state != "open":
            self._state = "closed"
            return
        self._state = "closed"
        instr = self._instr
        engine = self._engine
        assert engine is not None and self._frontier is not None
        if instr is not None:
            instr.flush()
            instr.gauge("frontier.peak_size", self._frontier.peak_size)
            instr.gauge("frontier.pushes", self._frontier.pushes)
            instr.gauge("frontier.pops", self._frontier.pops)
            instr.count("simulator.pages", engine.state.steps)
            assert self._classifier is not None
            cache = self._classifier.cache
            if cache is not None:
                for key, value in cache.stats().items():
                    instr.gauge(f"classifier.cache.{key}", value)
            if self._breakers is not None:
                instr.gauge("breaker.open_hosts", self._breakers.open_hosts())
                instr.gauge("breaker.opened", self._breakers.opened)
            if self._config.faults is not None:
                for kind, injected in self._config.faults.injected.items():
                    instr.gauge(f"faults.injected.{kind}", injected)
            self._classifier.bind_instrumentation(None)
        self._frontier.close()

    def run(self, budget: int | None = None) -> CrawlResult:
        """The one-shot path: open, step, report, close — in one call."""
        self.open()
        try:
            self.step(budget)
            return self.report()
        finally:
            self.close()

    # -- eviction / checkpointing --------------------------------------

    def snapshot(self) -> CheckpointState:
        """The session's full resumable state, at the current step boundary.

        This is what eviction serialises.  Unlike the periodic
        :class:`~repro.core.engine.CheckpointHook` cadence, taking a
        snapshot does **not** count into ``checkpoints_written`` — an
        eviction is a property of the serving infrastructure, not of the
        run, and the resumed session's tallies must stay identical to an
        uninterrupted run's.
        """
        self.open()
        assert self._engine is not None
        rstate = self._engine.state
        return self._checkpoint_state(rstate)

    def save_checkpoint(self, path: str | Path) -> None:
        """Atomically write :meth:`snapshot` to ``path`` (JSONL)."""
        write_checkpoint(path, self.snapshot())

    def _checkpoint_state(self, rstate: EngineLoopState) -> CheckpointState:
        assert (
            self._strategy is not None
            and self._frontier is not None
            and self._scheduled is not None
            and self._recorder is not None
            and self._visitor is not None
        )
        engine = self._engine
        return CheckpointState(
            strategy=self._strategy.name,
            steps=rstate.steps,
            frontier=self._frontier.snapshot(),
            scheduled=list(self._scheduled),
            recorder=self._recorder.snapshot(),
            visitor=self._visitor.snapshot(),
            loop=rstate.to_dict(),
            timing=self._timing.snapshot() if self._timing is not None else None,
            faults=self.faulty_web.snapshot() if self.faulty_web is not None else None,
            breakers=self._breakers.snapshot() if self._breakers is not None else None,
            sched=engine.snapshot_events() if isinstance(engine, VirtualTimeEngine) else None,
            adversary=self.adversarial_web.snapshot()
            if self.adversarial_web is not None
            else None,
            defenses=self._defenses.snapshot() if self._defenses is not None else None,
        )

    # -- internals ------------------------------------------------------

    def _build_hooks(
        self,
        instr: Instrumentation | None,
        resilience: ResilienceConfig | None,
        rstate: EngineLoopState,
    ) -> tuple[EngineHook, ...]:
        """Decide which stage observers this session attaches.

        - Clean instrumented runs get the span/stage-timer profile.
        - Resilient instrumented runs get the event counters (their
          per-step cost budget has no room for span assembly).
        - A configured checkpoint cadence attaches the checkpoint hook,
          whose writer closure owns serialisation and accounting.
        - Caller-supplied hooks run last, in the order given.
        """
        hooks: list[EngineHook] = []
        if instr is not None:
            if resilience is None:
                hooks.append(StepSpanHook(instr))
            else:
                hooks.append(ResilienceCountersHook(instr))
        checkpoint_every = self._config.checkpoint_every
        if checkpoint_every is not None:

            def write_periodic(step: EngineStep) -> None:
                # Count the write before serialising so the checkpoint's
                # own tally includes it — a resumed run then reports the
                # same total as an uninterrupted one.
                rstate.steps = step.steps
                rstate.checkpoints_written += 1
                assert self._config.checkpoint_path is not None
                write_checkpoint(self._config.checkpoint_path, self._checkpoint_state(rstate))
                if instr is not None:
                    instr.count("checkpoint.writes")

            hooks.append(CheckpointHook(checkpoint_every, write_periodic))
        hooks.extend(self._config.hooks)
        return tuple(hooks)

    def _apply_resume(
        self,
        resume: CheckpointState,
        strategy: CrawlStrategy,
        frontier,
        recorder: MetricsRecorder,
        visitor: Visitor,
        scheduled: set[str],
        faulty: FaultyWebSpace | None,
        breakers: HostBreakers | None,
        adversarial: AdversarialWebSpace | None = None,
        defenses: DefensePolicy | None = None,
    ) -> None:
        """Load a checkpoint into the freshly built run components."""
        if resume.strategy and resume.strategy != strategy.name:
            raise CheckpointError(
                f"checkpoint was taken by strategy {resume.strategy!r}; "
                f"cannot resume it with {strategy.name!r}"
            )
        frontier.restore(resume.frontier)
        scheduled.update(intern_url(url) for url in resume.scheduled)
        recorder.restore(resume.recorder)
        visitor.restore(resume.visitor)
        if resume.timing is not None:
            if self._timing is None:
                raise CheckpointError(
                    "checkpoint carries timing state but no timing model is configured"
                )
            self._timing.restore(resume.timing)
        if resume.faults is not None:
            if faulty is None:
                raise CheckpointError(
                    "checkpoint carries fault-injection state but no fault model "
                    "is configured; resume with the same fault profile"
                )
            faulty.restore(resume.faults)
        if resume.breakers is not None and breakers is not None:
            breakers.restore(resume.breakers)
        if resume.adversary is not None:
            if adversarial is None:
                raise CheckpointError(
                    "checkpoint carries adversary state but no adversary is "
                    "configured; resume with the same adversary profile and seed"
                )
            adversarial.restore(resume.adversary)
        if resume.defenses is not None:
            if defenses is None:
                raise CheckpointError(
                    "checkpoint carries defense state but no defenses are armed; "
                    "resume with the same DefenseConfig"
                )
            defenses.restore(resume.defenses)

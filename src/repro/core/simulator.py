"""The Web Crawling Simulator main loop (paper §4, Figure 2).

"The simulator generates requests for web pages to the virtual web
space, according to the specified web crawling strategy."  One
:class:`Simulator` run wires the components of the paper's Figure 2
together: the **visitor** fetches and extracts, the **classifier**
judges, the **observer** (strategy) decides link expansion, and the
**URL queue** orders what comes next.

Scheduling contract (this is where the paper's discard semantics live):

- a URL enters the frontier at most once — the simulator keeps a
  ``scheduled`` set of everything ever enqueued;
- a URL *discarded* by the strategy is **not** marked scheduled, so a
  later discovery along a different path may still enqueue it.  That is
  what makes the limited-distance rule a property of crawl *paths*
  (Figure 1) rather than of pages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.core.checkpoint import CheckpointState, read_checkpoint, write_checkpoint
from repro.core.classifier import Classifier
from repro.core.events import CrawlEvent, FetchCallback
from repro.core.metrics import CrawlSummary, MetricsRecorder, MetricSeries
from repro.core.strategies.base import CrawlStrategy
from repro.core.timing import TimingModel
from repro.core.visitor import Visitor
from repro.errors import CheckpointError, ConfigError, SimulationError
from repro.faults.model import RETRYABLE_FAULTS, FaultModel, FaultyWebSpace
from repro.faults.resilience import HostBreakers, ResilienceConfig, ResilienceStats
from repro.obs import Instrumentation
from repro.obs.instrument import active as _active_instrumentation
from repro.urlkit.normalize import intern_url, url_site_key
from repro.webspace.stats import relevant_url_set
from repro.webspace.virtualweb import VirtualWebSpace


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Run-level knobs independent of the strategy under test.

    Attributes:
        max_pages: stop after this many fetches (None = run the frontier
            dry, the paper's setting).
        sample_interval: metric sampling period in pages.
        extract_from_body: parse outlinks from synthesized HTML instead
            of reading them from the crawl-log record.
        checkpoint_every: write a resumable checkpoint every this many
            crawled pages (None = never).  Requires ``checkpoint_path``.
        checkpoint_path: destination file of the periodic checkpoint
            (each write atomically replaces the previous one).
    """

    max_pages: int | None = None
    sample_interval: int = 500
    extract_from_body: bool = False
    checkpoint_every: int | None = None
    checkpoint_path: str | Path | None = None


@dataclass(frozen=True, slots=True)
class CrawlResult:
    """Everything a finished simulation reports.

    Satisfies the :class:`repro.core.summary.CrawlReport` protocol
    (``pages_crawled`` / ``coverage`` / ``to_dict``), the shape shared
    with :class:`repro.core.parallel.ParallelResult` so report code can
    render either without isinstance checks.
    """

    strategy: str
    series: MetricSeries
    summary: CrawlSummary
    wall_seconds: float
    pages_crawled: int
    frontier_peak: int
    #: Resilient-pipeline tallies (:meth:`ResilienceStats.to_dict`
    #: shape) when the run used the resilient loop; None on clean runs.
    resilience: dict | None = None

    @property
    def final_harvest_rate(self) -> float:
        return self.summary.final_harvest_rate

    @property
    def final_coverage(self) -> float:
        return self.summary.final_coverage

    @property
    def coverage(self) -> float:
        """Protocol alias of :attr:`final_coverage`."""
        return self.summary.final_coverage

    def to_dict(self) -> dict:
        """Report-friendly flat summary (the run's headline numbers)."""
        return {
            "strategy": self.strategy,
            "pages_crawled": self.summary.pages_crawled,
            "final_harvest_rate": self.summary.final_harvest_rate,
            "final_coverage": self.summary.final_coverage,
            "max_queue_size": self.summary.max_queue_size,
        }


@dataclass(slots=True)
class _ResilientLoopState:
    """Mutable bookkeeping of the resilient crawl loop.

    Everything in here is part of a checkpoint's ``loop`` section —
    the loop resumes from these exact values.
    """

    steps: int = 0
    pops: int = 0
    requeues: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    requeued: int = 0
    dropped: int = 0
    breaker_skips: int = 0
    checkpoints_written: int = 0

    def to_dict(self) -> dict:
        return {
            "steps": self.steps,
            "pops": self.pops,
            "requeues": dict(self.requeues),
            "retries": self.retries,
            "requeued": self.requeued,
            "dropped": self.dropped,
            "breaker_skips": self.breaker_skips,
            "checkpoints_written": self.checkpoints_written,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "_ResilientLoopState":
        return cls(
            steps=data["steps"],
            pops=data["pops"],
            requeues={intern_url(url): count for url, count in data["requeues"].items()},
            retries=data["retries"],
            requeued=data["requeued"],
            dropped=data["dropped"],
            breaker_skips=data["breaker_skips"],
            checkpoints_written=data["checkpoints_written"],
        )


class Simulator:
    """Drives one strategy over one virtual web space.

    The clean path — no faults, no resilience, no checkpointing — runs
    the exact hot loops the golden traces pin.  Attaching a
    :class:`~repro.faults.FaultModel`, a
    :class:`~repro.faults.ResilienceConfig`, checkpointing, or a resume
    state routes the run through the resilient loop instead, which adds
    retry/backoff, per-host circuit breaking, capped requeue and
    periodic checkpoints — and is trace-identical to the clean loop
    when no faults fire.
    """

    def __init__(
        self,
        web: VirtualWebSpace,
        strategy: CrawlStrategy,
        classifier: Classifier,
        seed_urls: Sequence[str],
        relevant_urls: frozenset[str] | None = None,
        config: SimulationConfig | None = None,
        timing: TimingModel | None = None,
        on_fetch: FetchCallback | None = None,
        instrumentation: Instrumentation | None = None,
        faults: FaultModel | None = None,
        resilience: ResilienceConfig | None = None,
        resume_from: CheckpointState | str | Path | None = None,
        record_fault_journal: bool = False,
    ) -> None:
        if not seed_urls:
            raise SimulationError("at least one seed URL is required")
        self._web = web
        self._strategy = strategy
        self._classifier = classifier
        self._seed_urls = list(seed_urls)
        if relevant_urls is None:
            relevant_urls = relevant_url_set(web.crawl_log, classifier.target_language)
        self._relevant_urls = relevant_urls
        self._config = config or SimulationConfig()
        self._timing = timing
        self._on_fetch = on_fetch
        self._instrumentation = instrumentation
        self._faults = faults
        self._record_fault_journal = record_fault_journal
        if isinstance(resume_from, (str, Path)):
            resume_from = read_checkpoint(resume_from)
        self._resume_state = resume_from
        if self._config.checkpoint_every is not None:
            if self._config.checkpoint_every < 1:
                raise ConfigError("checkpoint_every must be >= 1")
            if self._config.checkpoint_path is None:
                raise ConfigError("checkpoint_every requires checkpoint_path")
        resilient = (
            faults is not None
            or resilience is not None
            or self._config.checkpoint_every is not None
            or resume_from is not None
        )
        self._resilience = (resilience or ResilienceConfig()) if resilient else None
        #: The fault-injecting web wrapper of the last run (None on
        #: clean runs) — tests read its journal and injection tallies.
        self.faulty_web: FaultyWebSpace | None = None

    def run(self) -> CrawlResult:
        """Execute the crawl to frontier exhaustion (or the page cap)."""
        config = self._config
        strategy = self._strategy
        instr = _active_instrumentation(self._instrumentation)
        web = self._web
        faulty: FaultyWebSpace | None = None
        if self._faults is not None:
            faulty = FaultyWebSpace(
                web, self._faults, record_journal=self._record_fault_journal
            )
            web = faulty
        self.faulty_web = faulty
        visitor = Visitor(
            web,
            extract_from_body=config.extract_from_body,
            instrumentation=instr,
        )
        if instr is not None:
            self._classifier.bind_instrumentation(instr)
            strategy.bind_instrumentation(instr)
        frontier = strategy.make_frontier()
        recorder = MetricsRecorder(
            name=strategy.name,
            relevant_urls=self._relevant_urls,
            sample_interval=config.sample_interval,
        )

        resilience = self._resilience
        breakers: HostBreakers | None = None
        if resilience is not None and resilience.breaker is not None:
            breakers = HostBreakers(resilience.breaker)

        scheduled: set[str] = set()
        rstate = _ResilientLoopState()
        resume = self._resume_state
        if resume is not None:
            self._apply_resume(
                resume, strategy, frontier, recorder, visitor, scheduled, faulty, breakers
            )
            rstate = _ResilientLoopState.from_dict(resume.loop)
        else:
            for candidate in strategy.seed_candidates(self._seed_urls):
                if candidate.url not in scheduled:
                    scheduled.add(candidate.url)
                    frontier.push(candidate)

        started = time.perf_counter()
        steps = 0
        try:
            if resilience is not None:
                self._crawl_loop_resilient(
                    frontier, visitor, recorder, scheduled, instr, rstate, breakers
                )
            elif instr is None:
                self._crawl_loop(frontier, visitor, recorder, scheduled)
            else:
                self._crawl_loop_instrumented(frontier, visitor, recorder, scheduled, instr)
        finally:
            steps = recorder.steps
            frontier_peak = frontier.peak_size
            if instr is not None:
                instr.flush()
                instr.gauge("frontier.peak_size", frontier.peak_size)
                instr.gauge("frontier.pushes", frontier.pushes)
                instr.gauge("frontier.pops", frontier.pops)
                instr.count("simulator.pages", steps)
                cache = self._classifier.cache
                if cache is not None:
                    for key, value in cache.stats().items():
                        instr.gauge(f"classifier.cache.{key}", value)
                if breakers is not None:
                    instr.gauge("breaker.open_hosts", breakers.open_hosts())
                    instr.gauge("breaker.opened", breakers.opened)
                if self._faults is not None:
                    for kind, injected in self._faults.injected.items():
                        instr.gauge(f"faults.injected.{kind}", injected)
                self._classifier.bind_instrumentation(None)
            frontier.close()

        wall = time.perf_counter() - started
        series, summary = recorder.finish(strategy.name)
        resilience_dict: dict | None = None
        if resilience is not None:
            resilience_dict = ResilienceStats(
                retries=rstate.retries,
                requeued=rstate.requeued,
                dropped=rstate.dropped,
                fetches_failed=visitor.fetches_failed,
                breaker_skips=rstate.breaker_skips,
                breaker_opened=breakers.opened if breakers is not None else 0,
                checkpoints_written=rstate.checkpoints_written,
                faults_injected=dict(self._faults.injected) if self._faults else {},
            ).to_dict()
        return CrawlResult(
            strategy=strategy.name,
            series=series,
            summary=summary,
            wall_seconds=wall,
            pages_crawled=steps,
            frontier_peak=frontier_peak,
            resilience=resilience_dict,
        )

    def _apply_resume(
        self,
        resume: CheckpointState,
        strategy: CrawlStrategy,
        frontier,
        recorder: MetricsRecorder,
        visitor: Visitor,
        scheduled: set[str],
        faulty: FaultyWebSpace | None,
        breakers: HostBreakers | None,
    ) -> None:
        """Load a checkpoint into the freshly built run components."""
        if resume.strategy and resume.strategy != strategy.name:
            raise CheckpointError(
                f"checkpoint was taken by strategy {resume.strategy!r}; "
                f"cannot resume it with {strategy.name!r}"
            )
        frontier.restore(resume.frontier)
        scheduled.update(intern_url(url) for url in resume.scheduled)
        recorder.restore(resume.recorder)
        visitor.restore(resume.visitor)
        if resume.timing is not None:
            if self._timing is None:
                raise CheckpointError(
                    "checkpoint carries timing state but no timing model is configured"
                )
            self._timing.restore(resume.timing)
        if resume.faults is not None:
            if faulty is None:
                raise CheckpointError(
                    "checkpoint carries fault-injection state but no fault model "
                    "is configured; resume with the same fault profile"
                )
            faulty.restore(resume.faults)
        if resume.breakers is not None and breakers is not None:
            breakers.restore(resume.breakers)

    def _write_checkpoint(
        self,
        frontier,
        recorder: MetricsRecorder,
        scheduled: set[str],
        visitor: Visitor,
        faulty: FaultyWebSpace | None,
        breakers: HostBreakers | None,
        rstate: _ResilientLoopState,
    ) -> None:
        state = CheckpointState(
            strategy=self._strategy.name,
            steps=rstate.steps,
            frontier=frontier.snapshot(),
            scheduled=list(scheduled),
            recorder=recorder.snapshot(),
            visitor=visitor.snapshot(),
            loop=rstate.to_dict(),
            timing=self._timing.snapshot() if self._timing is not None else None,
            faults=faulty.snapshot() if faulty is not None else None,
            breakers=breakers.snapshot() if breakers is not None else None,
        )
        assert self._config.checkpoint_path is not None
        write_checkpoint(self._config.checkpoint_path, state)

    def _requeue_or_drop(
        self,
        candidate,
        frontier,
        rstate: _ResilientLoopState,
        instr,
    ) -> None:
        """Put a failed candidate back at its original priority, or drop it.

        The URL stays in ``scheduled`` either way: a dropped URL was
        genuinely attempted and given up on, so a rediscovery along
        another path must not resurrect it.
        """
        url = candidate.url
        used = rstate.requeues.get(url, 0)
        if used < self._resilience.retry.max_requeues:
            rstate.requeues[url] = used + 1
            rstate.requeued += 1
            frontier.push(candidate)
            if instr is not None:
                instr.count("frontier.requeued")
        else:
            rstate.dropped += 1
            if instr is not None:
                instr.count("frontier.dropped")

    def _crawl_loop_resilient(
        self,
        frontier,
        visitor,
        recorder,
        scheduled,
        instr,
        rstate: _ResilientLoopState,
        breakers: HostBreakers | None,
    ) -> None:
        """The crawl loop with retry, circuit breaking and checkpoints.

        A separate method for the same reason as the instrumented loop:
        the clean hot path stays untouched.  When no fault fires, every
        successful step performs the clean loop's operations in the
        clean loop's order, so a resilient run over a healthy web space
        is trace-identical to a clean run — the property the golden
        differential suite pins.

        A failed fetch round (all attempts exhausted on a retryable
        fault) is *not* a crawl step: the page was never obtained, so it
        must not dilute harvest rate or advance the page cap.  The
        candidate is requeued at its original priority until its requeue
        budget runs out.
        """
        config = self._config
        strategy = self._strategy
        timing = self._timing
        on_fetch = self._on_fetch
        faults = self._faults
        retry = self._resilience.retry
        max_pages = config.max_pages
        max_attempts = retry.max_attempts
        checkpoint_every = config.checkpoint_every
        # Same hoisting discipline as the clean loop: this runs once per
        # simulated fetch, and the no-fault iteration must cost as close
        # to a clean iteration as the extra bookkeeping allows (the
        # overhead gate in bench_fault_overhead.py holds it under 5%).
        pop = frontier.pop
        push = frontier.push
        fetch = visitor.fetch
        extract = visitor.extract
        judge = self._classifier.judge
        expand = strategy.expand
        tick = strategy.tick
        record = recorder.record
        scheduled_add = scheduled.add
        site_of = url_site_key
        has_faults = faults is not None
        # Only a fault model can make a fetch fail, and only failures put
        # hosts on the breaker board — so with no faults attached (and a
        # board that resumed empty) the board can never populate, and the
        # per-pop host lookup + breaker gate are provably dead.  Disarm
        # them up front; a healthy iteration then costs a clean iteration
        # plus a few counter updates.
        track_hosts = has_faults or (breakers is not None and breakers.open_hosts() > 0)
        allow = breakers.allow if breakers is not None and track_hosts else None
        on_success = breakers.record_success if breakers is not None and track_hosts else None
        host: str | None = None
        steps = rstate.steps
        while frontier:
            if max_pages is not None and steps >= max_pages:
                break
            candidate = pop()
            rstate.pops += 1

            if track_hosts:
                host = site_of(candidate.url)
                if allow is not None and not allow(host, rstate.pops):
                    rstate.breaker_skips += 1
                    if instr is not None:
                        instr.count("breaker.skips")
                    self._requeue_or_drop(candidate, frontier, rstate, instr)
                    continue

            response = fetch(candidate.url)
            if response.fault is not None:
                attempt = 1
                while response.fault in RETRYABLE_FAULTS and attempt < max_attempts:
                    rstate.retries += 1
                    if instr is not None:
                        instr.count("visitor.retries")
                    if timing is not None:
                        timing.delay_site(candidate.url, retry.backoff_s(attempt))
                    response = fetch(candidate.url)
                    attempt += 1

                if response.fault in RETRYABLE_FAULTS:
                    # Fetch round failed for good — breaker accounting,
                    # requeue-or-drop, and on to the next candidate.
                    if breakers is not None:
                        breakers.record_failure(host, rstate.pops)
                    self._requeue_or_drop(candidate, frontier, rstate, instr)
                    continue

            if on_success is not None:
                on_success(host)

            judgment = judge(response)
            steps += 1

            sim_time: float | None = None
            if timing is not None:
                scale = faults.latency_scale(host) if has_faults else 1.0
                timing.observe_fetch(candidate.url, response.size, scale)
                sim_time = timing.now

            outlinks = extract(response)
            for child in expand(candidate, response, judgment, outlinks):
                url = child.url
                if url not in scheduled:
                    scheduled_add(url)
                    push(child)
            tick(steps, frontier)

            record(
                url=candidate.url,
                judged_relevant=judgment.relevant,
                queue_size=len(frontier),
                sim_time=sim_time,
            )
            if on_fetch is not None:
                on_fetch(
                    CrawlEvent(
                        step=steps,
                        candidate=candidate,
                        response=response,
                        judgment=judgment,
                        queue_size=len(frontier),
                        scheduled_count=len(scheduled),
                        sim_time=sim_time,
                    )
                )
            if checkpoint_every is not None and steps % checkpoint_every == 0:
                # Count the write before serialising so the checkpoint's
                # own tally includes it — a resumed run then reports the
                # same total as an uninterrupted one.  ``rstate.steps`` is
                # only read at serialisation time, so it is synced here
                # (and at loop exit) instead of every iteration.
                rstate.steps = steps
                rstate.checkpoints_written += 1
                self._write_checkpoint(
                    frontier,
                    recorder,
                    scheduled,
                    visitor,
                    self.faulty_web,
                    breakers,
                    rstate,
                )
                if instr is not None:
                    instr.count("checkpoint.writes")
        rstate.steps = steps

    def _crawl_loop(self, frontier, visitor, recorder, scheduled) -> None:
        # This loop runs once per simulated fetch — the per-page hot
        # path.  Bound methods and loop-invariant attributes are hoisted
        # into locals: at production scale the LOAD_ATTR chains cost more
        # than some of the work they dispatch to.
        config = self._config
        strategy = self._strategy
        timing = self._timing
        on_fetch = self._on_fetch
        max_pages = config.max_pages
        pop = frontier.pop
        push = frontier.push
        fetch = visitor.fetch
        extract = visitor.extract
        judge = self._classifier.judge
        expand = strategy.expand
        tick = strategy.tick
        record = recorder.record
        scheduled_add = scheduled.add
        steps = 0
        while frontier:
            if max_pages is not None and steps >= max_pages:
                break
            candidate = pop()
            response = fetch(candidate.url)
            judgment = judge(response)
            steps += 1

            sim_time: float | None = None
            if timing is not None:
                timing.observe_fetch(candidate.url, response.size)
                # Record the global simulated clock, not this fetch's own
                # completion: with parallel connections a later-started
                # fetch can finish earlier, but elapsed time is monotone.
                sim_time = timing.now

            outlinks = extract(response)
            for child in expand(candidate, response, judgment, outlinks):
                url = child.url
                if url not in scheduled:
                    scheduled_add(url)
                    push(child)
            tick(steps, frontier)

            record(
                url=candidate.url,
                judged_relevant=judgment.relevant,
                queue_size=len(frontier),
                sim_time=sim_time,
            )
            if on_fetch is not None:
                on_fetch(
                    CrawlEvent(
                        step=steps,
                        candidate=candidate,
                        response=response,
                        judgment=judgment,
                        queue_size=len(frontier),
                        scheduled_count=len(scheduled),
                        sim_time=sim_time,
                    )
                )

    def _crawl_loop_instrumented(self, frontier, visitor, recorder, scheduled, instr) -> None:
        """The crawl loop with per-component timing and per-fetch spans.

        Kept as a separate method (instead of ``if`` guards sprinkled
        through :meth:`_crawl_loop`) so the uninstrumented path stays
        byte-for-byte what the micro benchmarks measure.  The visitor
        and classifier time themselves; this loop adds the frontier and
        strategy timers and publishes exactly one
        :class:`~repro.obs.SpanEvent` per fetch — the record the JSONL
        trace exporter writes.
        """
        config = self._config
        strategy = self._strategy
        registry = instr.registry
        perf = time.perf_counter
        steps = 0
        while frontier:
            if config.max_pages is not None and steps >= config.max_pages:
                break
            step_started = perf()
            candidate = frontier.pop()
            registry.observe("frontier.pop", perf() - step_started)

            response = visitor.fetch(candidate.url)
            judgment = self._classifier.judge(response)
            steps += 1

            sim_time: float | None = None
            if self._timing is not None:
                self._timing.observe_fetch(candidate.url, response.size)
                sim_time = self._timing.now

            outlinks = visitor.extract(response)

            expand_started = perf()
            children = strategy.expand(candidate, response, judgment, outlinks)
            registry.observe("strategy.expand", perf() - expand_started)

            push_started = perf()
            pushed = 0
            for child in children:
                if child.url in scheduled:
                    continue
                scheduled.add(child.url)
                frontier.push(child)
                pushed += 1
            registry.observe("frontier.push", perf() - push_started)
            if pushed:
                registry.add("frontier.pushed", pushed)
            strategy.tick(steps, frontier)

            recorder.record(
                url=candidate.url,
                judged_relevant=judgment.relevant,
                queue_size=len(frontier),
                sim_time=sim_time,
            )
            instr.span(
                "simulator",
                "fetch",
                start_s=step_started,
                duration_s=perf() - step_started,
                step=steps,
                url=candidate.url,
                status=response.status,
                relevant=judgment.relevant,
                queue_size=len(frontier),
                scheduled=len(scheduled),
                sim_time=sim_time,
            )
            if self._on_fetch is not None:
                self._on_fetch(
                    CrawlEvent(
                        step=steps,
                        candidate=candidate,
                        response=response,
                        judgment=judgment,
                        queue_size=len(frontier),
                        scheduled_count=len(scheduled),
                        sim_time=sim_time,
                    )
                )

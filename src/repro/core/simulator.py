"""The Web Crawling Simulator session configurator (paper §4, Figure 2).

"The simulator generates requests for web pages to the virtual web
space, according to the specified web crawling strategy."  One
:class:`Simulator` run wires the components of the paper's Figure 2
together — the **visitor** fetches and extracts, the **classifier**
judges, the **observer** (strategy) decides link expansion, and the
**URL queue** orders what comes next — and hands them to the unified
:class:`~repro.core.engine.CrawlEngine`, which owns the one crawl loop.
The simulator itself is a thin configurator: it builds the components,
decides which engine hooks attach (observability, checkpointing), and
collects the finished run into a :class:`CrawlResult`.

Scheduling contract (this is where the paper's discard semantics live):

- a URL enters the frontier at most once — the engine keeps a
  ``scheduled`` set of everything ever enqueued;
- a URL *discarded* by the strategy is **not** marked scheduled, so a
  later discovery along a different path may still enqueue it.  That is
  what makes the limited-distance rule a property of crawl *paths*
  (Figure 1) rather than of pages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.core.checkpoint import CheckpointState, read_checkpoint, write_checkpoint
from repro.core.classifier import Classifier
from repro.core.engine import CheckpointHook, CrawlEngine, EngineHook, EngineLoopState, EngineStep
from repro.core.events import FetchCallback
from repro.core.metrics import CrawlSummary, MetricsRecorder, MetricSeries
from repro.core.strategies.base import CrawlStrategy
from repro.core.timing import TimingModel
from repro.core.visitor import Visitor
from repro.errors import CheckpointError, ConfigError, SimulationError
from repro.faults.model import FaultModel, FaultyWebSpace
from repro.faults.resilience import HostBreakers, ResilienceConfig, ResilienceStats
from repro.obs import Instrumentation
from repro.obs.hooks import ResilienceCountersHook, StepSpanHook
from repro.obs.instrument import active as _active_instrumentation
from repro.urlkit.normalize import intern_url
from repro.webspace.stats import relevant_url_set
from repro.webspace.virtualweb import VirtualWebSpace


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Run-level knobs independent of the strategy under test.

    Attributes:
        max_pages: stop after this many fetches (None = run the frontier
            dry, the paper's setting).
        sample_interval: metric sampling period in pages.
        extract_from_body: parse outlinks from synthesized HTML instead
            of reading them from the crawl-log record.
        checkpoint_every: write a resumable checkpoint every this many
            crawled pages (None = never).  Requires ``checkpoint_path``.
        checkpoint_path: destination file of the periodic checkpoint
            (each write atomically replaces the previous one).
    """

    max_pages: int | None = None
    sample_interval: int = 500
    extract_from_body: bool = False
    checkpoint_every: int | None = None
    checkpoint_path: str | Path | None = None


@dataclass(frozen=True, slots=True)
class CrawlResult:
    """Everything a finished simulation reports.

    Satisfies the :class:`repro.core.summary.CrawlReport` protocol
    (``pages_crawled`` / ``coverage`` / ``to_dict``), the shape shared
    with :class:`repro.core.parallel.ParallelResult` so report code can
    render either without isinstance checks.
    """

    strategy: str
    series: MetricSeries
    summary: CrawlSummary
    wall_seconds: float
    pages_crawled: int
    frontier_peak: int
    #: Resilient-pipeline tallies (:meth:`ResilienceStats.to_dict`
    #: shape) when the run used the resilient pipeline; None on clean
    #: runs.
    resilience: dict | None = None

    @property
    def final_harvest_rate(self) -> float:
        return self.summary.final_harvest_rate

    @property
    def final_coverage(self) -> float:
        return self.summary.final_coverage

    @property
    def coverage(self) -> float:
        """Protocol alias of :attr:`final_coverage`."""
        return self.summary.final_coverage

    def to_dict(self) -> dict:
        """Report-friendly flat summary (the run's headline numbers)."""
        return {
            "strategy": self.strategy,
            "pages_crawled": self.summary.pages_crawled,
            "final_harvest_rate": self.summary.final_harvest_rate,
            "final_coverage": self.summary.final_coverage,
            "max_queue_size": self.summary.max_queue_size,
        }


class Simulator:
    """Drives one strategy over one virtual web space.

    The clean path — no faults, no resilience, no checkpointing — runs
    the engine with no policies armed and no hooks attached: the exact
    hot loop the golden traces pin.  Attaching a
    :class:`~repro.faults.FaultModel`, a
    :class:`~repro.faults.ResilienceConfig`, checkpointing, or a resume
    state arms the engine's resilience policies instead, which add
    retry/backoff, per-host circuit breaking, capped requeue and
    periodic checkpoints — and are trace-identical to the clean path
    when no faults fire.
    """

    def __init__(
        self,
        web: VirtualWebSpace,
        strategy: CrawlStrategy,
        classifier: Classifier,
        seed_urls: Sequence[str],
        relevant_urls: frozenset[str] | None = None,
        config: SimulationConfig | None = None,
        timing: TimingModel | None = None,
        on_fetch: FetchCallback | None = None,
        instrumentation: Instrumentation | None = None,
        faults: FaultModel | None = None,
        resilience: ResilienceConfig | None = None,
        resume_from: CheckpointState | str | Path | None = None,
        record_fault_journal: bool = False,
        hooks: Sequence[EngineHook] = (),
    ) -> None:
        if not seed_urls:
            raise SimulationError("at least one seed URL is required")
        self._web = web
        self._strategy = strategy
        self._classifier = classifier
        self._seed_urls = list(seed_urls)
        if relevant_urls is None:
            relevant_urls = relevant_url_set(web.crawl_log, classifier.target_language)
        self._relevant_urls = relevant_urls
        self._config = config or SimulationConfig()
        self._timing = timing
        self._on_fetch = on_fetch
        self._instrumentation = instrumentation
        self._faults = faults
        self._record_fault_journal = record_fault_journal
        self._hooks = tuple(hooks)
        if isinstance(resume_from, (str, Path)):
            resume_from = read_checkpoint(resume_from)
        self._resume_state = resume_from
        if self._config.checkpoint_every is not None:
            if self._config.checkpoint_every < 1:
                raise ConfigError("checkpoint_every must be >= 1")
            if self._config.checkpoint_path is None:
                raise ConfigError("checkpoint_every requires checkpoint_path")
        resilient = (
            faults is not None
            or resilience is not None
            or self._config.checkpoint_every is not None
            or resume_from is not None
        )
        self._resilience = (resilience or ResilienceConfig()) if resilient else None
        #: The fault-injecting web wrapper of the last run (None on
        #: clean runs) — tests read its journal and injection tallies.
        self.faulty_web: FaultyWebSpace | None = None

    def run(self) -> CrawlResult:
        """Execute the crawl to frontier exhaustion (or the page cap)."""
        config = self._config
        strategy = self._strategy
        instr = _active_instrumentation(self._instrumentation)
        web: VirtualWebSpace | FaultyWebSpace = self._web
        faulty: FaultyWebSpace | None = None
        if self._faults is not None:
            faulty = FaultyWebSpace(
                web, self._faults, record_journal=self._record_fault_journal
            )
            web = faulty
        self.faulty_web = faulty
        visitor = Visitor(
            web,
            extract_from_body=config.extract_from_body,
            instrumentation=instr,
        )
        if instr is not None:
            self._classifier.bind_instrumentation(instr)
            strategy.bind_instrumentation(instr)
        frontier = strategy.make_frontier()
        recorder = MetricsRecorder(
            name=strategy.name,
            relevant_urls=self._relevant_urls,
            sample_interval=config.sample_interval,
        )

        resilience = self._resilience
        breakers: HostBreakers | None = None
        if resilience is not None and resilience.breaker is not None:
            breakers = HostBreakers(resilience.breaker)

        scheduled: set[str] = set()
        rstate = EngineLoopState()
        resume = self._resume_state
        if resume is not None:
            self._apply_resume(
                resume, strategy, frontier, recorder, visitor, scheduled, faulty, breakers
            )
            rstate = EngineLoopState.from_dict(resume.loop)

        engine = CrawlEngine(
            frontier=frontier,
            visitor=visitor,
            classifier=self._classifier,
            strategy=strategy,
            scheduled=scheduled,
            recorder=recorder,
            max_pages=config.max_pages,
            timing=self._timing,
            on_fetch=self._on_fetch,
            faults=self._faults,
            retry=resilience.retry if resilience is not None else None,
            breakers=breakers,
            hooks=self._build_hooks(
                instr, resilience, frontier, recorder, scheduled, visitor, faulty, breakers, rstate
            ),
            loop_state=rstate,
        )
        if resume is None:
            engine.seed(self._seed_urls)

        started = time.perf_counter()
        steps = 0
        try:
            engine.run()
        finally:
            steps = recorder.steps
            frontier_peak = frontier.peak_size
            if instr is not None:
                instr.flush()
                instr.gauge("frontier.peak_size", frontier.peak_size)
                instr.gauge("frontier.pushes", frontier.pushes)
                instr.gauge("frontier.pops", frontier.pops)
                instr.count("simulator.pages", steps)
                cache = self._classifier.cache
                if cache is not None:
                    for key, value in cache.stats().items():
                        instr.gauge(f"classifier.cache.{key}", value)
                if breakers is not None:
                    instr.gauge("breaker.open_hosts", breakers.open_hosts())
                    instr.gauge("breaker.opened", breakers.opened)
                if self._faults is not None:
                    for kind, injected in self._faults.injected.items():
                        instr.gauge(f"faults.injected.{kind}", injected)
                self._classifier.bind_instrumentation(None)
            frontier.close()

        wall = time.perf_counter() - started
        series, summary = recorder.finish(strategy.name)
        resilience_dict: dict | None = None
        if resilience is not None:
            resilience_dict = ResilienceStats(
                retries=rstate.retries,
                requeued=rstate.requeued,
                dropped=rstate.dropped,
                fetches_failed=visitor.fetches_failed,
                breaker_skips=rstate.breaker_skips,
                breaker_opened=breakers.opened if breakers is not None else 0,
                checkpoints_written=rstate.checkpoints_written,
                faults_injected=dict(self._faults.injected) if self._faults else {},
            ).to_dict()
        return CrawlResult(
            strategy=strategy.name,
            series=series,
            summary=summary,
            wall_seconds=wall,
            pages_crawled=steps,
            frontier_peak=frontier_peak,
            resilience=resilience_dict,
        )

    def _build_hooks(
        self,
        instr: Instrumentation | None,
        resilience: ResilienceConfig | None,
        frontier,
        recorder: MetricsRecorder,
        scheduled: set[str],
        visitor: Visitor,
        faulty: FaultyWebSpace | None,
        breakers: HostBreakers | None,
        rstate: EngineLoopState,
    ) -> tuple[EngineHook, ...]:
        """Decide which stage observers this run attaches.

        - Clean instrumented runs get the span/stage-timer profile.
        - Resilient instrumented runs get the event counters (their
          per-step cost budget has no room for span assembly).
        - A configured checkpoint cadence attaches the checkpoint hook,
          whose writer closure owns serialisation and accounting.
        - Caller-supplied hooks run last, in the order given.
        """
        hooks: list[EngineHook] = []
        if instr is not None:
            if resilience is None:
                hooks.append(StepSpanHook(instr))
            else:
                hooks.append(ResilienceCountersHook(instr))
        checkpoint_every = self._config.checkpoint_every
        if checkpoint_every is not None:

            def write_periodic(step: EngineStep) -> None:
                # Count the write before serialising so the checkpoint's
                # own tally includes it — a resumed run then reports the
                # same total as an uninterrupted one.
                rstate.steps = step.steps
                rstate.checkpoints_written += 1
                self._write_checkpoint(
                    frontier, recorder, scheduled, visitor, faulty, breakers, rstate
                )
                if instr is not None:
                    instr.count("checkpoint.writes")

            hooks.append(CheckpointHook(checkpoint_every, write_periodic))
        hooks.extend(self._hooks)
        return tuple(hooks)

    def _apply_resume(
        self,
        resume: CheckpointState,
        strategy: CrawlStrategy,
        frontier,
        recorder: MetricsRecorder,
        visitor: Visitor,
        scheduled: set[str],
        faulty: FaultyWebSpace | None,
        breakers: HostBreakers | None,
    ) -> None:
        """Load a checkpoint into the freshly built run components."""
        if resume.strategy and resume.strategy != strategy.name:
            raise CheckpointError(
                f"checkpoint was taken by strategy {resume.strategy!r}; "
                f"cannot resume it with {strategy.name!r}"
            )
        frontier.restore(resume.frontier)
        scheduled.update(intern_url(url) for url in resume.scheduled)
        recorder.restore(resume.recorder)
        visitor.restore(resume.visitor)
        if resume.timing is not None:
            if self._timing is None:
                raise CheckpointError(
                    "checkpoint carries timing state but no timing model is configured"
                )
            self._timing.restore(resume.timing)
        if resume.faults is not None:
            if faulty is None:
                raise CheckpointError(
                    "checkpoint carries fault-injection state but no fault model "
                    "is configured; resume with the same fault profile"
                )
            faulty.restore(resume.faults)
        if resume.breakers is not None and breakers is not None:
            breakers.restore(resume.breakers)

    def _write_checkpoint(
        self,
        frontier,
        recorder: MetricsRecorder,
        scheduled: set[str],
        visitor: Visitor,
        faulty: FaultyWebSpace | None,
        breakers: HostBreakers | None,
        rstate: EngineLoopState,
    ) -> None:
        state = CheckpointState(
            strategy=self._strategy.name,
            steps=rstate.steps,
            frontier=frontier.snapshot(),
            scheduled=list(scheduled),
            recorder=recorder.snapshot(),
            visitor=visitor.snapshot(),
            loop=rstate.to_dict(),
            timing=self._timing.snapshot() if self._timing is not None else None,
            faults=faulty.snapshot() if faulty is not None else None,
            breakers=breakers.snapshot() if breakers is not None else None,
        )
        assert self._config.checkpoint_path is not None
        write_checkpoint(self._config.checkpoint_path, state)

"""The Web Crawling Simulator main loop (paper §4, Figure 2).

"The simulator generates requests for web pages to the virtual web
space, according to the specified web crawling strategy."  One
:class:`Simulator` run wires the components of the paper's Figure 2
together: the **visitor** fetches and extracts, the **classifier**
judges, the **observer** (strategy) decides link expansion, and the
**URL queue** orders what comes next.

Scheduling contract (this is where the paper's discard semantics live):

- a URL enters the frontier at most once — the simulator keeps a
  ``scheduled`` set of everything ever enqueued;
- a URL *discarded* by the strategy is **not** marked scheduled, so a
  later discovery along a different path may still enqueue it.  That is
  what makes the limited-distance rule a property of crawl *paths*
  (Figure 1) rather than of pages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.classifier import Classifier
from repro.core.events import CrawlEvent, FetchCallback
from repro.core.metrics import CrawlSummary, MetricsRecorder, MetricSeries
from repro.core.strategies.base import CrawlStrategy
from repro.core.timing import TimingModel
from repro.core.visitor import Visitor
from repro.errors import SimulationError
from repro.obs import Instrumentation
from repro.obs.instrument import active as _active_instrumentation
from repro.webspace.stats import relevant_url_set
from repro.webspace.virtualweb import VirtualWebSpace


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Run-level knobs independent of the strategy under test.

    Attributes:
        max_pages: stop after this many fetches (None = run the frontier
            dry, the paper's setting).
        sample_interval: metric sampling period in pages.
        extract_from_body: parse outlinks from synthesized HTML instead
            of reading them from the crawl-log record.
    """

    max_pages: int | None = None
    sample_interval: int = 500
    extract_from_body: bool = False


@dataclass(frozen=True, slots=True)
class CrawlResult:
    """Everything a finished simulation reports.

    Satisfies the :class:`repro.core.summary.CrawlReport` protocol
    (``pages_crawled`` / ``coverage`` / ``to_dict``), the shape shared
    with :class:`repro.core.parallel.ParallelResult` so report code can
    render either without isinstance checks.
    """

    strategy: str
    series: MetricSeries
    summary: CrawlSummary
    wall_seconds: float
    pages_crawled: int
    frontier_peak: int

    @property
    def final_harvest_rate(self) -> float:
        return self.summary.final_harvest_rate

    @property
    def final_coverage(self) -> float:
        return self.summary.final_coverage

    @property
    def coverage(self) -> float:
        """Protocol alias of :attr:`final_coverage`."""
        return self.summary.final_coverage

    def to_dict(self) -> dict:
        """Report-friendly flat summary (the run's headline numbers)."""
        return {
            "strategy": self.strategy,
            "pages_crawled": self.summary.pages_crawled,
            "final_harvest_rate": self.summary.final_harvest_rate,
            "final_coverage": self.summary.final_coverage,
            "max_queue_size": self.summary.max_queue_size,
        }


class Simulator:
    """Drives one strategy over one virtual web space."""

    def __init__(
        self,
        web: VirtualWebSpace,
        strategy: CrawlStrategy,
        classifier: Classifier,
        seed_urls: Sequence[str],
        relevant_urls: frozenset[str] | None = None,
        config: SimulationConfig | None = None,
        timing: TimingModel | None = None,
        on_fetch: FetchCallback | None = None,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        if not seed_urls:
            raise SimulationError("at least one seed URL is required")
        self._web = web
        self._strategy = strategy
        self._classifier = classifier
        self._seed_urls = list(seed_urls)
        if relevant_urls is None:
            relevant_urls = relevant_url_set(web.crawl_log, classifier.target_language)
        self._relevant_urls = relevant_urls
        self._config = config or SimulationConfig()
        self._timing = timing
        self._on_fetch = on_fetch
        self._instrumentation = instrumentation

    def run(self) -> CrawlResult:
        """Execute the crawl to frontier exhaustion (or the page cap)."""
        config = self._config
        strategy = self._strategy
        instr = _active_instrumentation(self._instrumentation)
        visitor = Visitor(
            self._web,
            extract_from_body=config.extract_from_body,
            instrumentation=instr,
        )
        if instr is not None:
            self._classifier.bind_instrumentation(instr)
            strategy.bind_instrumentation(instr)
        frontier = strategy.make_frontier()
        recorder = MetricsRecorder(
            name=strategy.name,
            relevant_urls=self._relevant_urls,
            sample_interval=config.sample_interval,
        )

        scheduled: set[str] = set()
        for candidate in strategy.seed_candidates(self._seed_urls):
            if candidate.url not in scheduled:
                scheduled.add(candidate.url)
                frontier.push(candidate)

        started = time.perf_counter()
        steps = 0
        try:
            if instr is None:
                self._crawl_loop(frontier, visitor, recorder, scheduled)
            else:
                self._crawl_loop_instrumented(frontier, visitor, recorder, scheduled, instr)
        finally:
            steps = recorder.steps
            frontier_peak = frontier.peak_size
            if instr is not None:
                instr.flush()
                instr.gauge("frontier.peak_size", frontier.peak_size)
                instr.gauge("frontier.pushes", frontier.pushes)
                instr.gauge("frontier.pops", frontier.pops)
                instr.count("simulator.pages", steps)
                cache = self._classifier.cache
                if cache is not None:
                    for key, value in cache.stats().items():
                        instr.gauge(f"classifier.cache.{key}", value)
                self._classifier.bind_instrumentation(None)
            frontier.close()

        wall = time.perf_counter() - started
        series, summary = recorder.finish(strategy.name)
        return CrawlResult(
            strategy=strategy.name,
            series=series,
            summary=summary,
            wall_seconds=wall,
            pages_crawled=steps,
            frontier_peak=frontier_peak,
        )

    def _crawl_loop(self, frontier, visitor, recorder, scheduled) -> None:
        # This loop runs once per simulated fetch — the per-page hot
        # path.  Bound methods and loop-invariant attributes are hoisted
        # into locals: at production scale the LOAD_ATTR chains cost more
        # than some of the work they dispatch to.
        config = self._config
        strategy = self._strategy
        timing = self._timing
        on_fetch = self._on_fetch
        max_pages = config.max_pages
        pop = frontier.pop
        push = frontier.push
        fetch = visitor.fetch
        extract = visitor.extract
        judge = self._classifier.judge
        expand = strategy.expand
        tick = strategy.tick
        record = recorder.record
        scheduled_add = scheduled.add
        steps = 0
        while frontier:
            if max_pages is not None and steps >= max_pages:
                break
            candidate = pop()
            response = fetch(candidate.url)
            judgment = judge(response)
            steps += 1

            sim_time: float | None = None
            if timing is not None:
                timing.observe_fetch(candidate.url, response.size)
                # Record the global simulated clock, not this fetch's own
                # completion: with parallel connections a later-started
                # fetch can finish earlier, but elapsed time is monotone.
                sim_time = timing.now

            outlinks = extract(response)
            for child in expand(candidate, response, judgment, outlinks):
                url = child.url
                if url not in scheduled:
                    scheduled_add(url)
                    push(child)
            tick(steps, frontier)

            record(
                url=candidate.url,
                judged_relevant=judgment.relevant,
                queue_size=len(frontier),
                sim_time=sim_time,
            )
            if on_fetch is not None:
                on_fetch(
                    CrawlEvent(
                        step=steps,
                        candidate=candidate,
                        response=response,
                        judgment=judgment,
                        queue_size=len(frontier),
                        scheduled_count=len(scheduled),
                        sim_time=sim_time,
                    )
                )

    def _crawl_loop_instrumented(self, frontier, visitor, recorder, scheduled, instr) -> None:
        """The crawl loop with per-component timing and per-fetch spans.

        Kept as a separate method (instead of ``if`` guards sprinkled
        through :meth:`_crawl_loop`) so the uninstrumented path stays
        byte-for-byte what the micro benchmarks measure.  The visitor
        and classifier time themselves; this loop adds the frontier and
        strategy timers and publishes exactly one
        :class:`~repro.obs.SpanEvent` per fetch — the record the JSONL
        trace exporter writes.
        """
        config = self._config
        strategy = self._strategy
        registry = instr.registry
        perf = time.perf_counter
        steps = 0
        while frontier:
            if config.max_pages is not None and steps >= config.max_pages:
                break
            step_started = perf()
            candidate = frontier.pop()
            registry.observe("frontier.pop", perf() - step_started)

            response = visitor.fetch(candidate.url)
            judgment = self._classifier.judge(response)
            steps += 1

            sim_time: float | None = None
            if self._timing is not None:
                self._timing.observe_fetch(candidate.url, response.size)
                sim_time = self._timing.now

            outlinks = visitor.extract(response)

            expand_started = perf()
            children = strategy.expand(candidate, response, judgment, outlinks)
            registry.observe("strategy.expand", perf() - expand_started)

            push_started = perf()
            pushed = 0
            for child in children:
                if child.url in scheduled:
                    continue
                scheduled.add(child.url)
                frontier.push(child)
                pushed += 1
            registry.observe("frontier.push", perf() - push_started)
            if pushed:
                registry.add("frontier.pushed", pushed)
            strategy.tick(steps, frontier)

            recorder.record(
                url=candidate.url,
                judged_relevant=judgment.relevant,
                queue_size=len(frontier),
                sim_time=sim_time,
            )
            instr.span(
                "simulator",
                "fetch",
                start_s=step_started,
                duration_s=perf() - step_started,
                step=steps,
                url=candidate.url,
                status=response.status,
                relevant=judgment.relevant,
                queue_size=len(frontier),
                scheduled=len(scheduled),
                sim_time=sim_time,
            )
            if self._on_fetch is not None:
                self._on_fetch(
                    CrawlEvent(
                        step=steps,
                        candidate=candidate,
                        response=response,
                        judgment=judgment,
                        queue_size=len(frontier),
                        scheduled_count=len(scheduled),
                        sim_time=sim_time,
                    )
                )

"""The Web Crawling Simulator session configurator (paper §4, Figure 2).

"The simulator generates requests for web pages to the virtual web
space, according to the specified web crawling strategy."  One
:class:`Simulator` run wires the components of the paper's Figure 2
together — the **visitor** fetches and extracts, the **classifier**
judges, the **observer** (strategy) decides link expansion, and the
**URL queue** orders what comes next.  Since the session redesign the
wiring itself lives in :class:`repro.core.session.CrawlSession`; the
simulator is the one-shot face of it: each :meth:`Simulator.run` opens
a fresh session over the stored request, steps it to exhaustion, and
returns its report.

Scheduling contract (this is where the paper's discard semantics live):

- a URL enters the frontier at most once — the engine keeps a
  ``scheduled`` set of everything ever enqueued;
- a URL *discarded* by the strategy is **not** marked scheduled, so a
  later discovery along a different path may still enqueue it.  That is
  what makes the limited-distance rule a property of crawl *paths*
  (Figure 1) rather than of pages.

``SimulationConfig`` and ``CrawlResult`` moved to
:mod:`repro.core.session` and are re-exported here, their historical
import path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.core.checkpoint import CheckpointState
from repro.core.classifier import Classifier
from repro.core.engine import EngineHook
from repro.core.events import FetchCallback
from repro.core.session import (
    CrawlRequest,
    CrawlResult,
    CrawlSession,
    SessionConfig,
    SimulationConfig,
)
from repro.core.strategies.base import CrawlStrategy
from repro.core.timing import TimingModel
from repro.errors import SimulationError
from repro.faults.model import FaultModel, FaultyWebSpace
from repro.faults.resilience import ResilienceConfig
from repro.obs import Instrumentation
from repro.webspace.virtualweb import VirtualWebSpace

__all__ = ["SimulationConfig", "CrawlResult", "Simulator"]


class Simulator:
    """Drives one strategy over one virtual web space, one shot per run.

    The clean path — no faults, no resilience, no checkpointing — runs
    the engine with no policies armed and no hooks attached: the exact
    hot loop the golden traces pin.  Attaching a
    :class:`~repro.faults.FaultModel`, a
    :class:`~repro.faults.ResilienceConfig`, checkpointing, or a resume
    state arms the engine's resilience policies instead, which add
    retry/backoff, per-host circuit breaking, capped requeue and
    periodic checkpoints — and are trace-identical to the clean path
    when no faults fire.
    """

    def __init__(
        self,
        web: VirtualWebSpace,
        strategy: CrawlStrategy,
        classifier: Classifier,
        seed_urls: Sequence[str],
        relevant_urls: frozenset[str] | None = None,
        config: SimulationConfig | None = None,
        timing: TimingModel | None = None,
        on_fetch: FetchCallback | None = None,
        instrumentation: Instrumentation | None = None,
        faults: FaultModel | None = None,
        resilience: ResilienceConfig | None = None,
        resume_from: CheckpointState | str | Path | None = None,
        record_fault_journal: bool = False,
        hooks: Sequence[EngineHook] = (),
    ) -> None:
        if not seed_urls:
            raise SimulationError("at least one seed URL is required")
        self._request = CrawlRequest(
            strategy=strategy,
            web=web,
            classifier=classifier,
            seeds=tuple(seed_urls),
            relevant_urls=relevant_urls,
        )
        sim_config = config or SimulationConfig()
        self._config = SessionConfig.from_simulation(
            sim_config,
            timing=timing,
            on_fetch=on_fetch,
            instrumentation=instrumentation,
            faults=faults,
            resilience=resilience,
            resume_from=resume_from,
            record_fault_journal=record_fault_journal,
            hooks=tuple(hooks),
        )
        # Validate checkpoint/resume config now, as the old constructor did.
        CrawlSession(self._request, self._config)
        #: The fault-injecting web wrapper of the last run (None on
        #: clean runs) — tests read its journal and injection tallies.
        self.faulty_web: FaultyWebSpace | None = None

    def run(self) -> CrawlResult:
        """Execute the crawl to frontier exhaustion (or the page cap)."""
        session = CrawlSession(self._request, self._config)
        try:
            return session.run()
        finally:
            self.faulty_web = session.faulty_web

"""Disk-spilling URL frontier.

The paper's motivating failure mode is queue memory: "Scaling up this to
the case of the real Web, we would end up with the exhaustion of
physical space for the URL queue" (§5.2.1).  The limited-distance
strategy attacks that by *discarding* URLs; this module is the
complementary engineering answer a production crawler uses — keep the
high-priority head of the queue in memory and spill the cold tail to
disk.

:class:`SpillingFrontier` is a priority queue with a bounded in-memory
resident set: when the memory budget is exceeded, the lowest-priority
entries are appended to an on-disk JSONL spill file; when the in-memory
queue drains, a batch is loaded back.  Ordering among spilled entries
degrades from strict priority/FIFO to spill-then-batch order — the
classic trade a spilling queue makes — while hot (high-priority) work
stays resident, so a soft-focused crawl over a spilling frontier reaches
the same coverage with a small, fixed resident set.

When the crawl runs over a columnar :class:`~repro.webspace.store.PageStore`
(see :mod:`repro.webspace.store`), pass it as ``page_source``: candidates
whose URL is in the store's URL table spill as ``{"i": url_id}`` —
an integer reference into the store's arena instead of the URL string —
and are re-decoded (and re-interned) from the memory map on refill.
URLs the store does not know (adversary-minted trap/alias URLs, for
example) fall back to the string wire format, so the two entry kinds
coexist in one spill file.

Sessions opt in through ``SessionConfig(spill=SpillConfig(...))``;
:class:`repro.core.session.CrawlSession` wraps the strategy in a
:class:`SpillingStrategy` at open time.  A spilling frontier does not
implement checkpoint ``snapshot``/``restore`` (the spill file *is* disk
state already), so combining ``spill=`` with ``checkpoint_every=`` /
``snapshot()`` raises :class:`~repro.errors.CheckpointError`.
"""

from __future__ import annotations

import heapq
import json
import os
import tempfile
import time
from dataclasses import dataclass

from repro.core.frontier import (
    Candidate,
    Frontier,
    _HeapEntry,
    candidate_from_dict,
    candidate_to_dict,
)
from repro.core.strategies.base import CrawlStrategy
from repro.errors import FrontierError
from repro.urlkit.normalize import intern_url

#: How many spilled candidates to reload per refill.
_REFILL_BATCH = 1024


@dataclass(frozen=True, slots=True)
class SpillConfig:
    """Session-level opt-in to the spilling frontier.

    Attributes:
        memory_limit: maximum candidates resident in memory (the spill
            threshold); the coldest ~10% spill when it is exceeded.
        spill_dir: directory for the spill file (default: the system
            temporary directory).
        use_page_ids: spill store-backed candidates as integer URL ids
            when the session's web space is backed by a
            :class:`~repro.webspace.store.PageStore` (ignored for
            in-memory crawl logs, which have no URL table).
    """

    memory_limit: int = 10_000
    spill_dir: str | None = None
    use_page_ids: bool = True


@dataclass(frozen=True, slots=True)
class SpillStats:
    """Accounting of a spilling frontier's disk traffic."""

    spilled: int
    reloaded: int
    peak_resident: int
    peak_total: int


def spill_entry(candidate: Candidate, page_source=None) -> dict:
    """Wire form of one spilled candidate.

    With a ``page_source`` exposing ``id_of`` (a
    :class:`~repro.webspace.store.PageStore`), candidates whose URL is in
    the store's URL table serialise as ``{"i": url_id}`` — 8-ish bytes of
    JSON instead of the URL string, and no string resurrection cost until
    refill.  Referrers compress the same way (``"ri"``).  Everything else
    falls back to :func:`repro.core.candidate.candidate_to_dict`.
    """
    if page_source is None:
        return candidate_to_dict(candidate)
    uid = page_source.id_of(candidate.url)
    if uid is None:
        return candidate_to_dict(candidate)
    entry: dict = {"i": int(uid)}
    if candidate.priority:
        entry["p"] = candidate.priority
    if candidate.distance:
        entry["d"] = candidate.distance
    if candidate.referrer is not None:
        rid = page_source.id_of(candidate.referrer)
        if rid is None:
            entry["r"] = candidate.referrer
        else:
            entry["ri"] = int(rid)
    return entry


def candidate_from_spill(entry: dict, page_source=None) -> Candidate:
    """Inverse of :func:`spill_entry`; id entries decode from the store."""
    if "i" not in entry:
        return candidate_from_dict(entry)
    if page_source is None:
        raise FrontierError("id-keyed spill entry but no page source to decode it")
    if "ri" in entry:
        referrer = intern_url(page_source.url_of(entry["ri"]))
    else:
        referrer = entry.get("r")
    return Candidate(
        url=intern_url(page_source.url_of(entry["i"])),
        priority=entry.get("p", 0),
        distance=entry.get("d", 0),
        referrer=referrer,
    )


class SpillingFrontier(Frontier):
    """Priority frontier with a bounded in-memory resident set.

    Args:
        memory_limit: maximum candidates held in memory; beyond it the
            lowest-priority entries spill to disk.
        spill_dir: directory for the spill file (a private temporary
            directory by default; the file is deleted on ``close``).
        instrumentation: optional :class:`repro.obs.Instrumentation`;
            when given, spill/refill batches are timed
            ("frontier.spill" / "frontier.refill") and disk traffic is
            counted ("frontier.spilled" / "frontier.reloaded").
        page_source: optional :class:`~repro.webspace.store.PageStore`
            (anything with ``id_of``/``url_of``); spilled candidates the
            store knows are written by URL id, not URL string.
    """

    def __init__(
        self,
        memory_limit: int = 10_000,
        spill_dir: str | None = None,
        instrumentation=None,
        page_source=None,
    ) -> None:
        if memory_limit < 2:
            raise FrontierError("memory_limit must be >= 2")
        super().__init__()
        self._instr = instrumentation
        self._page_source = page_source
        self._limit = memory_limit
        self._heap: list[_HeapEntry] = []
        self._counter = 0
        self._spill_file = tempfile.NamedTemporaryFile(
            mode="w+", suffix=".spill.jsonl", dir=spill_dir, delete=False
        )
        self._spill_path = self._spill_file.name
        self._pending_on_disk = 0
        self._read_offset = 0
        self.spilled = 0
        self.reloaded = 0
        self._peak_resident = 0

    # -- core queue operations ----------------------------------------------

    def push(self, candidate: Candidate) -> None:
        counter = self._counter
        self._counter = counter + 1
        heapq.heappush(self._heap, (-candidate.priority, counter, candidate))
        if len(self._heap) > self._limit:
            self._spill_coldest()
        if len(self._heap) > self._peak_resident:
            self._peak_resident = len(self._heap)
        self._note_size()

    def pop(self) -> Candidate:
        if not self._heap and self._pending_on_disk:
            self._refill()
        if not self._heap:
            raise FrontierError("pop from empty spilling frontier")
        self.pops += 1
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap) + self._pending_on_disk

    @property
    def resident_size(self) -> int:
        """Candidates currently held in memory."""
        return len(self._heap)

    def stats(self) -> SpillStats:
        return SpillStats(
            spilled=self.spilled,
            reloaded=self.reloaded,
            peak_resident=self._peak_resident,
            peak_total=self.peak_size,
        )

    def close(self) -> None:
        """Remove the spill file.  The frontier is unusable afterwards."""
        try:
            self._spill_file.close()
        finally:
            if os.path.exists(self._spill_path):
                os.unlink(self._spill_path)

    def __enter__(self) -> "SpillingFrontier":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- spill mechanics ------------------------------------------------------

    def _spill_coldest(self) -> None:
        """Spill the coldest ~10% of resident entries to disk in a batch.

        Batch spilling keeps amortised push cost O(log n): one O(n)
        partition pays for limit/10 subsequent pushes.
        """
        started = time.perf_counter() if self._instr is not None else 0.0
        batch = max(1, self._limit // 10)
        self._heap.sort()
        victims = self._heap[-batch:]
        del self._heap[-batch:]
        heapq.heapify(self._heap)

        self._spill_file.seek(0, os.SEEK_END)
        for _, _, candidate in victims:
            record = spill_entry(candidate, self._page_source)
            self._spill_file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._spill_file.flush()
        self._pending_on_disk += len(victims)
        self.spilled += len(victims)
        if self._instr is not None:
            self._instr.observe("frontier.spill", time.perf_counter() - started)
            self._instr.count("frontier.spilled", len(victims))

    def _refill(self) -> None:
        """Load the next batch of spilled candidates back into memory."""
        started = time.perf_counter() if self._instr is not None else 0.0
        self._spill_file.seek(self._read_offset)
        batch = min(_REFILL_BATCH, self._limit)
        loaded = 0
        while loaded < batch:
            line = self._spill_file.readline()
            if not line:
                break
            self._read_offset = self._spill_file.tell()
            candidate = candidate_from_spill(json.loads(line), self._page_source)
            counter = self._counter
            self._counter = counter + 1
            heapq.heappush(self._heap, (-candidate.priority, counter, candidate))
            loaded += 1
        self._pending_on_disk -= loaded
        self.reloaded += loaded
        if self._instr is not None:
            self._instr.observe("frontier.refill", time.perf_counter() - started)
            self._instr.count("frontier.reloaded", loaded)


class SpillingStrategy(CrawlStrategy):
    """Run any strategy's link selection over a :class:`SpillingFrontier`.

    A thin wrapper (same pattern as
    :class:`repro.core.politeness.PoliteOrderingStrategy`): the inner
    strategy keeps deciding what enters the queue and at what priority;
    only the queue's *storage* changes.  ``last_stats`` exposes the spill
    accounting of the most recent crawl.
    """

    def __init__(
        self,
        inner,
        memory_limit: int = 10_000,
        spill_dir: str | None = None,
        page_source=None,
    ) -> None:
        self.inner = inner
        self.memory_limit = memory_limit
        self._spill_dir = spill_dir
        self._page_source = page_source
        self.name = f"spilling({inner.name}, mem={memory_limit})"
        self.wants_link_contexts = inner.wants_link_contexts
        self._frontier: SpillingFrontier | None = None

    def bind_instrumentation(self, instrumentation) -> None:
        super().bind_instrumentation(instrumentation)
        self.inner.bind_instrumentation(instrumentation)

    def make_frontier(self) -> SpillingFrontier:
        self._frontier = SpillingFrontier(
            memory_limit=self.memory_limit,
            spill_dir=self._spill_dir,
            instrumentation=self.instrumentation,
            page_source=self._page_source,
        )
        return self._frontier

    def seed_candidates(self, seed_urls):
        return self.inner.seed_candidates(seed_urls)

    def max_priority(self) -> int:
        return self.inner.max_priority()

    def expand(self, parent, response, judgment, outlinks, link_contexts=None):
        return self.inner.expand(parent, response, judgment, outlinks, link_contexts)

    def tick(self, step, frontier) -> None:
        self.inner.tick(step, frontier)

    @property
    def last_stats(self) -> SpillStats | None:
        if self._frontier is None:
            return None
        return self._frontier.stats()

"""Disk-spilling URL frontier.

The paper's motivating failure mode is queue memory: "Scaling up this to
the case of the real Web, we would end up with the exhaustion of
physical space for the URL queue" (§5.2.1).  The limited-distance
strategy attacks that by *discarding* URLs; this module is the
complementary engineering answer a production crawler uses — keep the
high-priority head of the queue in memory and spill the cold tail to
disk.

:class:`SpillingFrontier` is a priority queue with a bounded in-memory
resident set: when the memory budget is exceeded, the lowest-priority
entries are appended to an on-disk JSONL spill file; when the in-memory
queue drains, a batch is loaded back.  Ordering among spilled entries
degrades from strict priority/FIFO to spill-then-batch order — the
classic trade a spilling queue makes — while hot (high-priority) work
stays resident, so a soft-focused crawl over a spilling frontier reaches
the same coverage with a small, fixed resident set.
"""

from __future__ import annotations

import heapq
import json
import os
import tempfile
import time
from dataclasses import dataclass

from repro.core.frontier import (
    Candidate,
    Frontier,
    _HeapEntry,
    candidate_from_dict,
    candidate_to_dict,
)
from repro.core.strategies.base import CrawlStrategy
from repro.errors import FrontierError

#: How many spilled candidates to reload per refill.
_REFILL_BATCH = 1024


@dataclass(frozen=True, slots=True)
class SpillStats:
    """Accounting of a spilling frontier's disk traffic."""

    spilled: int
    reloaded: int
    peak_resident: int
    peak_total: int


class SpillingFrontier(Frontier):
    """Priority frontier with a bounded in-memory resident set.

    Args:
        memory_limit: maximum candidates held in memory; beyond it the
            lowest-priority entries spill to disk.
        spill_dir: directory for the spill file (a private temporary
            directory by default; the file is deleted on ``close``).
        instrumentation: optional :class:`repro.obs.Instrumentation`;
            when given, spill/refill batches are timed
            ("frontier.spill" / "frontier.refill") and disk traffic is
            counted ("frontier.spilled" / "frontier.reloaded").
    """

    def __init__(
        self,
        memory_limit: int = 10_000,
        spill_dir: str | None = None,
        instrumentation=None,
    ) -> None:
        if memory_limit < 2:
            raise FrontierError("memory_limit must be >= 2")
        super().__init__()
        self._instr = instrumentation
        self._limit = memory_limit
        self._heap: list[_HeapEntry] = []
        self._counter = 0
        self._spill_file = tempfile.NamedTemporaryFile(
            mode="w+", suffix=".spill.jsonl", dir=spill_dir, delete=False
        )
        self._spill_path = self._spill_file.name
        self._pending_on_disk = 0
        self._read_offset = 0
        self.spilled = 0
        self.reloaded = 0
        self._peak_resident = 0

    # -- core queue operations ----------------------------------------------

    def push(self, candidate: Candidate) -> None:
        counter = self._counter
        self._counter = counter + 1
        heapq.heappush(self._heap, (-candidate.priority, counter, candidate))
        if len(self._heap) > self._limit:
            self._spill_coldest()
        if len(self._heap) > self._peak_resident:
            self._peak_resident = len(self._heap)
        self._note_size()

    def pop(self) -> Candidate:
        if not self._heap and self._pending_on_disk:
            self._refill()
        if not self._heap:
            raise FrontierError("pop from empty spilling frontier")
        self.pops += 1
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap) + self._pending_on_disk

    @property
    def resident_size(self) -> int:
        """Candidates currently held in memory."""
        return len(self._heap)

    def stats(self) -> SpillStats:
        return SpillStats(
            spilled=self.spilled,
            reloaded=self.reloaded,
            peak_resident=self._peak_resident,
            peak_total=self.peak_size,
        )

    def close(self) -> None:
        """Remove the spill file.  The frontier is unusable afterwards."""
        try:
            self._spill_file.close()
        finally:
            if os.path.exists(self._spill_path):
                os.unlink(self._spill_path)

    def __enter__(self) -> "SpillingFrontier":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- spill mechanics ------------------------------------------------------

    def _spill_coldest(self) -> None:
        """Spill the coldest ~10% of resident entries to disk in a batch.

        Batch spilling keeps amortised push cost O(log n): one O(n)
        partition pays for limit/10 subsequent pushes.
        """
        started = time.perf_counter() if self._instr is not None else 0.0
        batch = max(1, self._limit // 10)
        self._heap.sort()
        victims = self._heap[-batch:]
        del self._heap[-batch:]
        heapq.heapify(self._heap)

        self._spill_file.seek(0, os.SEEK_END)
        for _, _, candidate in victims:
            record = candidate_to_dict(candidate)
            self._spill_file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._spill_file.flush()
        self._pending_on_disk += len(victims)
        self.spilled += len(victims)
        if self._instr is not None:
            self._instr.observe("frontier.spill", time.perf_counter() - started)
            self._instr.count("frontier.spilled", len(victims))

    def _refill(self) -> None:
        """Load the next batch of spilled candidates back into memory."""
        started = time.perf_counter() if self._instr is not None else 0.0
        self._spill_file.seek(self._read_offset)
        batch = min(_REFILL_BATCH, self._limit)
        loaded = 0
        while loaded < batch:
            line = self._spill_file.readline()
            if not line:
                break
            self._read_offset = self._spill_file.tell()
            candidate = candidate_from_dict(json.loads(line))
            counter = self._counter
            self._counter = counter + 1
            heapq.heappush(self._heap, (-candidate.priority, counter, candidate))
            loaded += 1
        self._pending_on_disk -= loaded
        self.reloaded += loaded
        if self._instr is not None:
            self._instr.observe("frontier.refill", time.perf_counter() - started)
            self._instr.count("frontier.reloaded", loaded)


class SpillingStrategy(CrawlStrategy):
    """Run any strategy's link selection over a :class:`SpillingFrontier`.

    A thin wrapper (same pattern as
    :class:`repro.core.politeness.PoliteOrderingStrategy`): the inner
    strategy keeps deciding what enters the queue and at what priority;
    only the queue's *storage* changes.  ``last_stats`` exposes the spill
    accounting of the most recent crawl.
    """

    def __init__(self, inner, memory_limit: int = 10_000, spill_dir: str | None = None) -> None:
        self.inner = inner
        self.memory_limit = memory_limit
        self._spill_dir = spill_dir
        self.name = f"spilling({inner.name}, mem={memory_limit})"
        self._frontier: SpillingFrontier | None = None

    def make_frontier(self) -> SpillingFrontier:
        self._frontier = SpillingFrontier(
            memory_limit=self.memory_limit,
            spill_dir=self._spill_dir,
            instrumentation=self.instrumentation,
        )
        return self._frontier

    def seed_candidates(self, seed_urls):
        return self.inner.seed_candidates(seed_urls)

    def max_priority(self) -> int:
        return self.inner.max_priority()

    def expand(self, parent, response, judgment, outlinks):
        return self.inner.expand(parent, response, judgment, outlinks)

    def tick(self, step, frontier) -> None:
        self.inner.tick(step, frontier)

    @property
    def last_stats(self) -> SpillStats | None:
        if self._frontier is None:
            return None
        return self._frontier.stats()

"""Priority-assignment strategies (paper §3.3).

Every strategy is a :class:`~repro.core.strategies.base.CrawlStrategy`:
it chooses the frontier discipline, stamps seed candidates, and decides —
per crawled page — which extracted URLs enter the queue and at what
priority.  The names used by the CLI, benchmarks and experiment configs
resolve through the shared :mod:`~repro.core.strategies.registry`
(:func:`get_strategy` / :func:`register_strategy`); the paper's
strategies are registered here.
"""

from repro.core.strategies.backlink import BacklinkCountStrategy
from repro.core.strategies.base import CrawlStrategy
from repro.core.strategies.breadth_first import BreadthFirstStrategy
from repro.core.strategies.combined import hard_limited_strategy, soft_limited_strategy
from repro.core.strategies.context_graph import ContextGraphStrategy
from repro.core.strategies.distilled import DistilledSoftStrategy
from repro.core.strategies.hybrid import PalContentLinkStrategy, PDDHybridStrategy
from repro.core.strategies.infospiders import InfoSpidersStrategy
from repro.core.strategies.limited_distance import LimitedDistanceStrategy
from repro.core.strategies.registry import (
    available_strategies,
    get_strategy,
    iter_strategy_names,
    register_strategy,
)
from repro.core.strategies.simple import SimpleStrategy

__all__ = [
    "CrawlStrategy",
    "BreadthFirstStrategy",
    "SimpleStrategy",
    "LimitedDistanceStrategy",
    "DistilledSoftStrategy",
    "BacklinkCountStrategy",
    "ContextGraphStrategy",
    "PDDHybridStrategy",
    "PalContentLinkStrategy",
    "InfoSpidersStrategy",
    "hard_limited_strategy",
    "soft_limited_strategy",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "iter_strategy_names",
    "strategy_by_name",
]

register_strategy(
    "breadth-first",
    BreadthFirstStrategy,
    description="FIFO baseline: crawl in discovery order (paper §3.3.1)",
)
register_strategy(
    "soft-focused",
    description="follow every link, relevant parents first (paper §3.3.2)",
)(lambda **params: SimpleStrategy(mode="soft", **params))
register_strategy(
    "hard-focused",
    description="follow links from relevant pages only (paper §3.3.2)",
)(lambda **params: SimpleStrategy(mode="hard", **params))
register_strategy(
    "limited-distance",
    LimitedDistanceStrategy,
    description="tunnel up to n irrelevant hops (params: n, prioritized; paper §3.3.3)",
)
register_strategy(
    "distilled-soft",
    DistilledSoftStrategy,
    description="soft-focused with topic-distillation hub boosts",
)
register_strategy(
    "backlink-count",
    BacklinkCountStrategy,
    description="prioritise by observed in-link count",
)
register_strategy(
    "pdd-hybrid",
    PDDHybridStrategy,
    description="weighted link-structure + content relevance (params: language, content_weight, link_weight)",
)
register_strategy(
    "pal-content-link",
    PalContentLinkStrategy,
    description="content and link-structure priority per Pal et al. (params: language, weights)",
)
register_strategy(
    "infospiders",
    InfoSpidersStrategy,
    description="anchor/around textual-cue scoring (params: language, anchor_weight, around_weight)",
)
register_strategy(
    "hard+limited",
    hard_limited_strategy,
    description="hard-focused capture with n-hop tunnelling (params: n; paper §4)",
)
register_strategy(
    "soft+limited",
    soft_limited_strategy,
    description="soft-focused capture with n-hop tunnelling (params: n; paper §4)",
)

#: Backwards-compatible alias of :func:`get_strategy` (the pre-registry
#: entry point's name).
strategy_by_name = get_strategy

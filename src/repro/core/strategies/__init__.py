"""Priority-assignment strategies (paper §3.3).

Every strategy is a :class:`~repro.core.strategies.base.CrawlStrategy`:
it chooses the frontier discipline, stamps seed candidates, and decides —
per crawled page — which extracted URLs enter the queue and at what
priority.  The registry at the bottom maps the names used by the CLI,
benchmarks and experiment configs to constructors.
"""

from repro.core.strategies.backlink import BacklinkCountStrategy
from repro.core.strategies.base import CrawlStrategy
from repro.core.strategies.breadth_first import BreadthFirstStrategy
from repro.core.strategies.combined import hard_limited_strategy, soft_limited_strategy
from repro.core.strategies.context_graph import ContextGraphStrategy
from repro.core.strategies.distilled import DistilledSoftStrategy
from repro.core.strategies.limited_distance import LimitedDistanceStrategy
from repro.core.strategies.simple import SimpleStrategy

from repro.errors import ConfigError

__all__ = [
    "CrawlStrategy",
    "BreadthFirstStrategy",
    "SimpleStrategy",
    "LimitedDistanceStrategy",
    "DistilledSoftStrategy",
    "BacklinkCountStrategy",
    "ContextGraphStrategy",
    "hard_limited_strategy",
    "soft_limited_strategy",
    "strategy_by_name",
]

_SIMPLE_FACTORIES = {
    "breadth-first": BreadthFirstStrategy,
    "limited-distance": LimitedDistanceStrategy,
    "distilled-soft": DistilledSoftStrategy,
    "backlink-count": BacklinkCountStrategy,
}


def strategy_by_name(name: str, **kwargs) -> CrawlStrategy:
    """Construct a strategy from its registry name.

    Recognised names: ``breadth-first``, ``hard-focused``,
    ``soft-focused``, ``limited-distance`` (kwarg ``n``, optional
    ``prioritized=True``), ``distilled-soft``, ``backlink-count``.
    """
    if name == "hard-focused":
        return SimpleStrategy(mode="hard", **kwargs)
    if name == "soft-focused":
        return SimpleStrategy(mode="soft", **kwargs)
    factory = _SIMPLE_FACTORIES.get(name)
    if factory is None:
        known = ["hard-focused", "soft-focused", *sorted(_SIMPLE_FACTORIES)]
        raise ConfigError(f"unknown strategy {name!r}; expected one of {', '.join(known)}")
    return factory(**kwargs)

"""Backlink-count crawl ordering (Cho, Garcia-Molina & Page — the
paper's reference [3], "Efficient Crawling Through URL Ordering").

Priority of a queued URL = the number of crawled pages seen linking to
it so far.  This is the classic *importance*-driven ordering the paper's
related work discusses; it is language-blind, so on a language-specific
task it serves as the strongest non-focused baseline — well-linked hub
pages surface early whether or not they are in the target language.

Requires the reprioritizable frontier: a URL's backlink count keeps
growing while it sits in the queue.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

from repro.core.classifier import Judgment
from repro.core.frontier import Candidate, Frontier, ReprioritizableFrontier
from repro.core.strategies.base import CrawlStrategy
from repro.urlkit.extract import LinkContext
from repro.webspace.virtualweb import FetchResponse


class BacklinkCountStrategy(CrawlStrategy):
    """Crawl the most-referenced known URL first."""

    name = "backlink-count"

    def __init__(self) -> None:
        self._backlinks: dict[str, int] = defaultdict(int)
        self._frontier: ReprioritizableFrontier | None = None

    def make_frontier(self) -> Frontier:
        # make_frontier is the per-run reset point (see base.py): a reused
        # instance must not inherit backlink counts from a previous run.
        self._backlinks = defaultdict(int)
        self._frontier = ReprioritizableFrontier()
        return self._frontier

    def expand(
        self,
        parent: Candidate,
        response: FetchResponse,
        judgment: Judgment,
        outlinks: Iterable[str],
        link_contexts: Sequence[LinkContext] | None = None,
    ) -> list[Candidate]:
        children = []
        for url in outlinks:
            self._backlinks[url] += 1
            count = self._backlinks[url]
            # Already queued: bump its priority in place.  Not queued:
            # emit a candidate (the simulator drops it if already
            # crawled).
            if self._frontier is not None and self._frontier.update_priority(url, count):
                continue
            children.append(Candidate(url=url, priority=count, referrer=parent.url))
        return children

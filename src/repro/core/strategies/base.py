"""The strategy interface (the paper's "observer" component).

"An observer is an implementation of the web crawling strategy to be
evaluated" (paper §4).  A strategy sees each crawled page — its fetch
response, its relevance judgment, and the candidate bookkeeping it was
scheduled with — and answers with the candidates to enqueue.

Strategies are deliberately *stateless with respect to the crawl* (all
path information travels inside :class:`~repro.core.frontier.Candidate`),
which keeps them trivially reusable across simulator runs and makes the
limited-distance semantics exactly the per-path rule of the paper's
Figure 1.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING

from repro.core.classifier import Judgment
from repro.core.frontier import Candidate, Frontier
from repro.webspace.virtualweb import FetchResponse

if TYPE_CHECKING:
    from repro.obs import Instrumentation
    from repro.urlkit.extract import LinkContext


class CrawlStrategy(ABC):
    """Decides frontier discipline and link expansion for one crawl."""

    #: Human-readable name used in reports and figure legends.
    name: str = "strategy"

    #: True for strategies that score links on textual context (anchor /
    #: around text).  The engine only computes link contexts when the
    #: active strategy asks for them, so the flag keeps the hot path of
    #: every context-blind strategy — and all golden traces — unchanged.
    wants_link_contexts: bool = False

    #: Per-run telemetry hub, bound by the simulator before
    #: ``make_frontier`` (None on uninstrumented runs).
    instrumentation: Instrumentation | None = None

    def bind_instrumentation(self, instrumentation: Instrumentation | None) -> None:
        """Attach a :class:`repro.obs.Instrumentation` for the next run.

        The simulator calls this before ``make_frontier`` on
        instrumented runs, so wrapper strategies (spilling, politeness)
        can hand the hub down to the frontiers they build.  The default
        just stores it.
        """
        self.instrumentation = instrumentation

    @abstractmethod
    def make_frontier(self) -> Frontier:
        """A fresh frontier of the discipline this strategy requires."""

    def seed_candidates(self, seed_urls: Sequence[str]) -> list[Candidate]:
        """Wrap seed URLs into candidates (distance 0, top priority)."""
        return [Candidate(url=url, priority=self.max_priority(), distance=0) for url in seed_urls]

    def max_priority(self) -> int:
        """The priority stamped on seeds (top band by default)."""
        return 0

    @abstractmethod
    def expand(
        self,
        parent: Candidate,
        response: FetchResponse,
        judgment: Judgment,
        outlinks: Iterable[str],
        link_contexts: Sequence["LinkContext"] | None = None,
    ) -> list[Candidate]:
        """Candidates to schedule from a just-crawled page.

        Args:
            parent: the candidate that was just popped and fetched.
            response: what the virtual web answered.
            judgment: the classifier's relevance verdict for the page.
            outlinks: URLs extracted from the page (already normalised,
                duplicates removed; empty for non-OK/non-HTML pages).
            link_contexts: per-outlink textual context (aligned with
                ``outlinks``), passed only when
                :attr:`wants_link_contexts` is True — and even then it
                may be ``None`` (e.g. callers predating the argument or
                sources that cannot produce contexts).  Every strategy
                must accept ``link_contexts=None`` and fall back to
                context-blind behaviour; that compatibility rule is what
                keeps the existing zoo and the golden fixtures
                byte-identical.

        Returns:
            Candidates the simulator should enqueue.  URLs already
            scheduled (queued or visited) are filtered out by the
            simulator, *not* by the strategy — discarding and
            re-discovery semantics depend on that split.
        """

    def tick(self, step: int, frontier: Frontier) -> None:
        """Hook invoked by the simulator after every crawl step.

        The default is a no-op.  Strategies that run periodic global
        work — the distiller's intermittent hub analysis, for instance —
        override this; ``frontier`` is the live queue, so strategies
        paired with a :class:`~repro.core.frontier.ReprioritizableFrontier`
        may adjust priorities of queued URLs here.
        """

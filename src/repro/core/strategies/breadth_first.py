"""Breadth-first baseline.

The unfocused comparator of Figures 3 and 4: every extracted URL is
enqueued in discovery order, no relevance information is used.  Its
harvest rate therefore tracks the dataset's relevance ratio, which is
exactly why it separates clearly from the focused strategies on the Thai
dataset (ratio ≈ 0.35) and barely at all on the Japanese one (≈ 0.71).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.classifier import Judgment
from repro.core.frontier import Candidate, FIFOFrontier, Frontier
from repro.core.strategies.base import CrawlStrategy
from repro.urlkit.extract import LinkContext
from repro.webspace.virtualweb import FetchResponse


class BreadthFirstStrategy(CrawlStrategy):
    """Crawl in pure discovery (FIFO) order."""

    name = "breadth-first"

    def make_frontier(self) -> Frontier:
        return FIFOFrontier()

    def expand(
        self,
        parent: Candidate,
        response: FetchResponse,
        judgment: Judgment,
        outlinks: Iterable[str],
        link_contexts: Sequence[LinkContext] | None = None,
    ) -> list[Candidate]:
        return [Candidate(url=url, referrer=parent.url) for url in outlinks]

"""Combined capture strategies (paper §5.1).

The authors produced their datasets with combinations of the basic
strategies: "In the case of Japanese dataset, we used a combination of
hard focused with limited distance strategies ... In the case of Thai
dataset, a combination of soft focused with limited distance strategy
was used."

In this framework those combinations *are* limited-distance instances:

- hard-focused + limited distance ≡ non-prioritized limited distance
  (keep following a path for up to N irrelevant hops, no priorities);
- soft-focused + limited distance ≡ prioritized limited distance
  (the same pruning, with closer-to-relevant URLs crawled first).

These helpers exist so the capture code in
:mod:`repro.experiments.datasets` reads like the paper.  They are also
registered as ``hard+limited`` / ``soft+limited`` (with an ``n=``
parameter, defaulting to the paper's N=3 capture setting) so the
combinations are reachable from the CLI and the wire protocol.
"""

from __future__ import annotations

from repro.core.strategies.limited_distance import LimitedDistanceStrategy

#: Paper §5.1 capture setting ("limited distance of N=3").
DEFAULT_N = 3


def hard_limited_strategy(n: int = DEFAULT_N) -> LimitedDistanceStrategy:
    """Hard-focused with limited-distance tunneling (Japanese capture)."""
    strategy = LimitedDistanceStrategy(n=n, prioritized=False)
    strategy.name = f"hard+limited(N={n})"
    return strategy


def soft_limited_strategy(n: int = DEFAULT_N) -> LimitedDistanceStrategy:
    """Soft-focused with limited-distance tunneling (Thai capture)."""
    strategy = LimitedDistanceStrategy(n=n, prioritized=True)
    strategy.name = f"soft+limited(N={n})"
    return strategy

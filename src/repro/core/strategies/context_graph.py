"""Simplified context focused crawler (paper §2.2; Diligenti et al. [4]).

The tunneling approach that *predates* the limited-distance strategy:
"The context focused crawler uses a best-first search heuristic.  The
classifiers learn the layers representing a set of pages that are at
some distance to the pages in the target class (layer 0) ... the next
URL to be visited by the crawler is chosen from the nearest nonempty
queue.  Although this approach clearly solves the problem of tunneling,
its major limitation is the requirement to construct a context graph
which, in turn, requires reverse links of the seed sets to exist at a
known search engine."

This implementation keeps that exact structure, simplified to the
charset-relevance world of this paper:

- **Context-graph construction** (offline, before the crawl): walk
  *backward* from the seed set for ``layers`` levels using a
  :class:`~repro.webspace.linkdb.LinkDB` — the stand-in for the search
  engine's reverse-link index the paper says is required.
- **Layer classifier**: the real CFC trains text classifiers per layer;
  with binary charset relevance there is no text to learn from, so we
  learn a *host-level* layer table (host → smallest layer any of its
  pages appeared in), which captures the same idea: "pages on hosts that
  tend to sit near the target class lead to the target class".
- **Crawling**: one queue per layer, always pop from the nearest
  non-empty one — implemented as a priority frontier with
  ``priority = layers - layer``.  Nothing is ever discarded (the CFC
  tunnels by ordering, not pruning), so coverage matches soft-focused.

The benchmark contrasts it with limited distance: similar focusing, but
only *with* the reverse-link oracle — precisely the trade the paper's
§2.2 critique describes.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

from repro.core.classifier import Judgment
from repro.core.frontier import Candidate, Frontier, PriorityFrontier
from repro.core.strategies.base import CrawlStrategy
from repro.errors import ConfigError, UrlError
from repro.urlkit.extract import LinkContext
from repro.urlkit.normalize import url_host
from repro.webspace.linkdb import LinkDB
from repro.webspace.virtualweb import FetchResponse


def build_context_layers(
    linkdb: LinkDB, seed_urls: Sequence[str], layers: int
) -> dict[str, int]:
    """Backward-BFS layer assignment from the seed set.

    Layer 0 is the seeds themselves; layer i the pages that reach a
    seed in i forward hops (found by walking *backward* links — the
    reverse-link-index requirement).  Returns URL → smallest layer.
    """
    layer_of: dict[str, int] = {url: 0 for url in seed_urls}
    frontier = deque(seed_urls)
    while frontier:
        url = frontier.popleft()
        layer = layer_of[url]
        if layer >= layers:
            continue
        for source in linkdb.backward(url):
            if source not in layer_of:
                layer_of[source] = layer + 1
                frontier.append(source)
    return layer_of


def host_layer_table(layer_of: dict[str, int]) -> dict[str, int]:
    """Collapse URL layers to per-host minima (the trained 'classifier')."""
    table: dict[str, int] = {}
    for url, layer in layer_of.items():
        try:
            host = url_host(url)
        except UrlError:
            continue
        if layer < table.get(host, 1_000_000):
            table[host] = layer
    return table


class ContextGraphStrategy(CrawlStrategy):
    """Layered best-first crawling from a precomputed context graph."""

    def __init__(
        self,
        linkdb: LinkDB,
        seed_urls: Sequence[str],
        layers: int = 3,
    ) -> None:
        if layers < 1:
            raise ConfigError("context graph needs at least one layer")
        self.layers = layers
        self.name = f"context-graph(layers={layers})"
        layer_of = build_context_layers(linkdb, seed_urls, layers)
        self._host_layer = host_layer_table(layer_of)
        #: URLs assigned to each layer during construction (diagnostics).
        self.context_sizes = {
            layer: sum(1 for value in layer_of.values() if value == layer)
            for layer in range(layers + 1)
        }

    def make_frontier(self) -> Frontier:
        return PriorityFrontier()

    def max_priority(self) -> int:
        return self.layers + 1

    def _layer_priority(self, url: str) -> int:
        """Priority of a URL: nearest layer pops first.

        Unknown hosts sit below every learned layer — the CFC's
        "other" class.
        """
        try:
            host = url_host(url)
        except UrlError:
            return 0
        layer = self._host_layer.get(host)
        if layer is None:
            return 0
        return self.layers + 1 - layer

    def seed_candidates(self, seed_urls: Sequence[str]) -> list[Candidate]:
        return [
            Candidate(url=url, priority=self.max_priority(), distance=0)
            for url in seed_urls
        ]

    def expand(
        self,
        parent: Candidate,
        response: FetchResponse,
        judgment: Judgment,
        outlinks: Iterable[str],
        link_contexts: Sequence[LinkContext] | None = None,
    ) -> list[Candidate]:
        return [
            Candidate(url=url, priority=self._layer_priority(url), referrer=parent.url)
            for url in outlinks
        ]

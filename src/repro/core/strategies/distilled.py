"""Soft-focused crawling with the distiller (paper §2.1, completed).

The paper's language-specific crawler adapts two of the three focused
crawling components and leaves the distiller out.  This strategy puts it
back: a soft-focused base policy whose queue is periodically re-ranked by
relevance-weighted hub analysis — "the priority values of URLs identified
as hubs and their immediate neighbors are raised".

Priorities use a widened band so the hub bonus can express itself between
the two referrer-relevance bands:

- base: relevant referrer → ``BAND``; irrelevant referrer → 0
- bonus: + up to ``BAND - 1`` for neighbors of strong hubs

so a hub-endorsed URL from an irrelevant referrer can outrank plain
irrelevant-referrer URLs but never a relevant-referrer URL — focusing
remains the primary signal, exactly as in the original system.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.classifier import Judgment
from repro.core.distiller import Distiller
from repro.core.frontier import Candidate, Frontier, ReprioritizableFrontier
from repro.core.strategies.base import CrawlStrategy
from repro.urlkit.extract import LinkContext
from repro.webspace.virtualweb import FetchResponse


class DistilledSoftStrategy(CrawlStrategy):
    """Soft-focused + intermittent distillation."""

    name = "distilled-soft"

    #: priority band width; hub bonus occupies [1, BAND-1].
    BAND = 10

    def __init__(self, distill_every: int = 1000, top_fraction: float = 0.05) -> None:
        if distill_every < 1:
            raise ValueError("distill_every must be >= 1")
        self.distill_every = distill_every
        self._distiller = Distiller(top_fraction=top_fraction)
        self._frontier: ReprioritizableFrontier | None = None
        self.distillations = 0
        self.reprioritized = 0

    def make_frontier(self) -> Frontier:
        self._frontier = ReprioritizableFrontier()
        return self._frontier

    def max_priority(self) -> int:
        return self.BAND

    def expand(
        self,
        parent: Candidate,
        response: FetchResponse,
        judgment: Judgment,
        outlinks: Iterable[str],
        link_contexts: Sequence[LinkContext] | None = None,
    ) -> list[Candidate]:
        outlinks = tuple(outlinks)
        self._distiller.observe(parent.url, outlinks, judgment.relevant)
        base = self.BAND if judgment.relevant else 0
        return [Candidate(url=url, priority=base, referrer=parent.url) for url in outlinks]

    def tick(self, step: int, frontier: Frontier) -> None:
        if step % self.distill_every != 0:
            return
        if not isinstance(frontier, ReprioritizableFrontier):
            return
        hubs = self._distiller.top_hubs()
        if not hubs:
            return
        self.distillations += 1
        for url, score in self._distiller.hub_neighbors(hubs).items():
            current = frontier.priority_of(url)
            if current is None or current >= self.BAND:
                continue  # not queued, or already in the top band
            bonus = max(1, int(score * (self.BAND - 1)))
            if bonus > current:
                frontier.update_priority(url, bonus)
                self.reprioritized += 1

"""Content+link hybrid orderings (related-work family, PAPERS.md).

Two strategies the paper is usually compared against, expressed over the
link-context hand-off:

- :class:`PDDHybridStrategy` (``pdd-hybrid``) — PDD-crawler-style
  weighted combination of *link structure* (observed backlink count,
  saturating) and *content relevance* (parent judgment + anchor-text
  language affinity).  Both halves keep improving while a URL is queued,
  so it runs over :class:`~repro.core.frontier.ReprioritizableFrontier`
  and re-ranks in place.

- :class:`PalContentLinkStrategy` (``pal-content-link``) — Pal et al.'s
  content-and-link-structure priority: parent relevance, anchor cue and
  a link-structure *distance* term (how far the path has wandered from
  the last relevant page), with no global backlink table.

Both are stateless across runs: every table is rebuilt in
``make_frontier``.  Both accept ``link_contexts=None`` (the base-class
compatibility rule) and degrade to context-blind behaviour — the anchor
term is simply 0.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.charset.languages import Language
from repro.core.classifier import Judgment
from repro.core.frontier import Candidate, Frontier, ReprioritizableFrontier
from repro.core.strategies.base import CrawlStrategy
from repro.core.strategies.textcues import language_char_fraction, resolve_language
from repro.errors import ConfigError
from repro.urlkit.extract import LinkContext
from repro.webspace.virtualweb import FetchResponse

#: Float scores are mapped to integer frontier priorities at this scale.
SCORE_SCALE = 1000

#: Backlink count at which the link-structure term saturates.
_BACKLINK_SATURATION = 8


class PDDHybridStrategy(CrawlStrategy):
    """Weighted link-structure + content relevance ordering."""

    name = "pdd-hybrid"
    wants_link_contexts = True

    def __init__(
        self,
        language: Language | str = Language.THAI,
        content_weight: float = 0.6,
        link_weight: float = 0.4,
    ) -> None:
        if content_weight < 0 or link_weight < 0 or content_weight + link_weight <= 0:
            raise ConfigError("pdd-hybrid weights must be non-negative and not both 0")
        self.language = resolve_language(language)
        self.content_weight = content_weight
        self.link_weight = link_weight
        self.name = f"pdd-hybrid({self.language.value})"
        self._frontier: ReprioritizableFrontier | None = None
        self._backlinks: dict[str, int] = {}
        self._content: dict[str, float] = {}

    def make_frontier(self) -> Frontier:
        # Per-run reset point: a reused instance must not inherit the
        # backlink/content tables of a previous run.
        self._backlinks = {}
        self._content = {}
        self._frontier = ReprioritizableFrontier()
        return self._frontier

    def max_priority(self) -> int:
        return SCORE_SCALE

    def _priority(self, url: str) -> int:
        link_term = min(1.0, self._backlinks[url] / _BACKLINK_SATURATION)
        score = self.content_weight * self._content[url] + self.link_weight * link_term
        return int(score * SCORE_SCALE)

    def expand(
        self,
        parent: Candidate,
        response: FetchResponse,
        judgment: Judgment,
        outlinks: Iterable[str],
        link_contexts: Sequence[LinkContext] | None = None,
    ) -> list[Candidate]:
        parent_term = 1.0 if judgment.relevant else 0.0
        frontier = self._frontier
        children: list[Candidate] = []
        for index, url in enumerate(outlinks):
            anchor_term = 0.0
            if link_contexts is not None:
                context = link_contexts[index]
                anchor_term = max(
                    language_char_fraction(context.anchor_text, self.language),
                    0.5 * language_char_fraction(context.around_text, self.language),
                )
            content = 0.5 * parent_term + 0.5 * anchor_term
            self._content[url] = max(content, self._content.get(url, 0.0))
            self._backlinks[url] = self._backlinks.get(url, 0) + 1
            priority = self._priority(url)
            if frontier is not None and frontier.update_priority(url, priority):
                continue
            children.append(Candidate(url=url, priority=priority, referrer=parent.url))
        return children


class PalContentLinkStrategy(CrawlStrategy):
    """Content and link-structure priority per Pal et al."""

    name = "pal-content-link"
    wants_link_contexts = True

    def __init__(
        self,
        language: Language | str = Language.THAI,
        content_weight: float = 0.5,
        anchor_weight: float = 0.3,
        distance_weight: float = 0.2,
    ) -> None:
        for field_name, value in (
            ("content_weight", content_weight),
            ("anchor_weight", anchor_weight),
            ("distance_weight", distance_weight),
        ):
            if value < 0:
                raise ConfigError(f"pal-content-link {field_name} must be >= 0")
        self.language = resolve_language(language)
        self.content_weight = content_weight
        self.anchor_weight = anchor_weight
        self.distance_weight = distance_weight
        self.name = f"pal-content-link({self.language.value})"
        self._frontier: ReprioritizableFrontier | None = None

    def make_frontier(self) -> Frontier:
        self._frontier = ReprioritizableFrontier()
        return self._frontier

    def max_priority(self) -> int:
        return SCORE_SCALE

    def expand(
        self,
        parent: Candidate,
        response: FetchResponse,
        judgment: Judgment,
        outlinks: Iterable[str],
        link_contexts: Sequence[LinkContext] | None = None,
    ) -> list[Candidate]:
        # Candidate.distance carries hops-since-last-relevant-page, the
        # same path bookkeeping the limited-distance family uses — here
        # it decays the link-structure term instead of pruning.
        child_distance = 0 if judgment.relevant else parent.distance + 1
        parent_term = 1.0 if judgment.relevant else 0.0
        distance_term = 1.0 / (1.0 + child_distance)
        frontier = self._frontier
        children: list[Candidate] = []
        for index, url in enumerate(outlinks):
            anchor_term = 0.0
            if link_contexts is not None:
                context = link_contexts[index]
                anchor_term = max(
                    language_char_fraction(context.anchor_text, self.language),
                    0.5 * language_char_fraction(context.around_text, self.language),
                )
            score = (
                self.content_weight * parent_term
                + self.anchor_weight * anchor_term
                + self.distance_weight * distance_term
            )
            priority = int(score * SCORE_SCALE)
            if frontier is not None:
                current = frontier.priority_of(url)
                if current is not None:
                    # Queued already: keep the best score seen on any path.
                    if priority > current:
                        frontier.update_priority(url, priority)
                    continue
            children.append(
                Candidate(
                    url=url,
                    priority=priority,
                    distance=child_distance,
                    referrer=parent.url,
                )
            )
        return children

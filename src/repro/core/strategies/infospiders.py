"""InfoSpiders-style textual-cue ordering (Menczer et al., PAPERS.md).

"Navigating the Small World Web by Textual Cues": the agent judges each
link *before* following it, purely from the text in and around the
anchor.  This adaptation keeps that idea in the charset-relevance world
of the paper — the cue detector is the Unicode-block character fraction
of :mod:`~repro.core.strategies.textcues`, anchor text weighted above
surrounding text — and runs best-first over a
:class:`~repro.core.frontier.ReprioritizableFrontier` so a URL whose cue
improves on a later sighting moves up in place.

Unlike the hybrid family this ordering uses *no* link-structure signal
and no parent judgment: a link from an irrelevant page with a
target-language anchor outranks a cue-less link from a relevant page,
which is exactly the tunnelling behaviour textual cues buy.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.charset.languages import Language
from repro.core.classifier import Judgment
from repro.core.frontier import Candidate, Frontier, ReprioritizableFrontier
from repro.core.strategies.base import CrawlStrategy
from repro.core.strategies.hybrid import SCORE_SCALE
from repro.core.strategies.textcues import language_char_fraction, resolve_language
from repro.errors import ConfigError
from repro.urlkit.extract import LinkContext
from repro.webspace.virtualweb import FetchResponse


class InfoSpidersStrategy(CrawlStrategy):
    """Score links by anchor/around textual cues, best cue first."""

    name = "infospiders"
    wants_link_contexts = True

    def __init__(
        self,
        language: Language | str = Language.THAI,
        anchor_weight: float = 0.7,
        around_weight: float = 0.3,
    ) -> None:
        if anchor_weight < 0 or around_weight < 0 or anchor_weight + around_weight <= 0:
            raise ConfigError("infospiders weights must be non-negative and not both 0")
        self.language = resolve_language(language)
        self.anchor_weight = anchor_weight
        self.around_weight = around_weight
        self.name = f"infospiders({self.language.value})"
        self._frontier: ReprioritizableFrontier | None = None

    def make_frontier(self) -> Frontier:
        self._frontier = ReprioritizableFrontier()
        return self._frontier

    def max_priority(self) -> int:
        return SCORE_SCALE

    def _score(self, context: LinkContext) -> float:
        anchor = language_char_fraction(context.anchor_text, self.language)
        around = language_char_fraction(context.around_text, self.language)
        return self.anchor_weight * anchor + self.around_weight * around

    def expand(
        self,
        parent: Candidate,
        response: FetchResponse,
        judgment: Judgment,
        outlinks: Iterable[str],
        link_contexts: Sequence[LinkContext] | None = None,
    ) -> list[Candidate]:
        frontier = self._frontier
        children: list[Candidate] = []
        for index, url in enumerate(outlinks):
            priority = 0
            if link_contexts is not None:
                priority = int(self._score(link_contexts[index]) * SCORE_SCALE)
            if frontier is not None:
                current = frontier.priority_of(url)
                if current is not None:
                    # Re-sighted while queued: keep the strongest cue.
                    if priority > current:
                        frontier.update_priority(url, priority)
                    continue
            children.append(Candidate(url=url, priority=priority, referrer=parent.url))
        return children

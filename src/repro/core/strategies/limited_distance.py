"""The limited distance strategy (paper §3.3.2, Figure 1).

"The crawler is allowed to proceed along the same path until a number of
irrelevant pages, say N, are encountered consecutively."  Each candidate
carries its *distance*: the count of consecutive irrelevant pages between
it and the latest relevant page on the path it was discovered through.

- A **relevant** page resets its children's distance to 0 (and they are
  always enqueued).
- An **irrelevant** page at distance d produces children at distance
  d + 1, which are enqueued only while d + 1 ≤ N.

Two priority modes (paper §3.3.2):

- ``prioritized=False`` — all URLs get equal priority (FIFO frontier).
- ``prioritized=True`` — priority decreases with distance, so URLs close
  to a relevant page crawl first; implemented as N + 1 priority bands
  ``priority = N - distance`` on the priority frontier.

Note the degenerate cases tying the strategy family together: N = 0 in
non-prioritized mode is exactly the hard-focused simple strategy, and an
unbounded N in prioritized mode behaves like soft-focused with a finer
priority scale.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.classifier import Judgment
from repro.core.frontier import Candidate, FIFOFrontier, Frontier, PriorityFrontier
from repro.core.strategies.base import CrawlStrategy
from repro.errors import ConfigError
from repro.urlkit.extract import LinkContext
from repro.webspace.virtualweb import FetchResponse


class LimitedDistanceStrategy(CrawlStrategy):
    """Tunnel through at most N consecutive irrelevant pages."""

    def __init__(self, n: int = 2, prioritized: bool = False) -> None:
        if n < 0:
            raise ConfigError(f"limited-distance parameter N must be >= 0, got {n}")
        self.n = n
        self.prioritized = prioritized
        flavor = "prioritized" if prioritized else "non-prioritized"
        self.name = f"{flavor}-limited-distance(N={n})"

    def make_frontier(self) -> Frontier:
        if self.prioritized:
            return PriorityFrontier()
        return FIFOFrontier()

    def max_priority(self) -> int:
        return self.n if self.prioritized else 0

    def expand(
        self,
        parent: Candidate,
        response: FetchResponse,
        judgment: Judgment,
        outlinks: Iterable[str],
        link_contexts: Sequence[LinkContext] | None = None,
    ) -> list[Candidate]:
        if judgment.relevant:
            child_distance = 0
        else:
            child_distance = parent.distance + 1
            if child_distance > self.n:
                return []  # path exhausted its irrelevant budget

        priority = (self.n - child_distance) if self.prioritized else 0
        return [
            Candidate(
                url=url,
                priority=priority,
                distance=child_distance,
                referrer=parent.url,
            )
            for url in outlinks
        ]

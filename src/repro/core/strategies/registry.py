"""The strategy registry: one name→factory table for the whole repo.

Before this module, api.py, cli.py, the experiment runners and the
reproduction scripts each kept their own strategy-construction table —
N copies of the same mapping, drifting independently.  Now every entry
point resolves strategy names through :func:`get_strategy`, and the CLI
lists what is available from :func:`available_strategies`.

Registering is open: packs and experiments can add their own named
strategies with :func:`register_strategy` (or the decorator form) and
have them reachable from the CLI and config files immediately.
Strategies whose constructors need run-specific objects (for example
:class:`~repro.core.strategies.context_graph.ContextGraphStrategy`,
which needs the link database and seed set) are deliberately *not*
registered — a name must be constructible from plain parameters alone.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.core.strategies.base import CrawlStrategy
from repro.errors import ConfigError

#: A registered factory: plain keyword parameters in, strategy out.
StrategyFactory = Callable[..., CrawlStrategy]

_REGISTRY: dict[str, tuple[StrategyFactory, str]] = {}


def register_strategy(
    name: str,
    factory: StrategyFactory | None = None,
    *,
    description: str = "",
) -> StrategyFactory | Callable[[StrategyFactory], StrategyFactory]:
    """Register ``factory`` under ``name``; also usable as a decorator.

    Re-registering a name replaces the previous entry (last writer
    wins), so a pack can override a built-in under the same name.
    """

    def _register(fn: StrategyFactory) -> StrategyFactory:
        _REGISTRY[name] = (fn, description)
        return fn

    if factory is None:
        return _register
    return _register(factory)


def get_strategy(name: str, **params: Any) -> CrawlStrategy:
    """Construct a registered strategy from its name.

    Unknown names and parameters the factory does not accept both raise
    :class:`~repro.errors.ConfigError` — the message names the available
    strategies so a typo is self-diagnosing.
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(f"unknown strategy {name!r}; expected one of {known}")
    factory, _ = entry
    try:
        return factory(**params)
    except TypeError as exc:
        raise ConfigError(f"invalid parameters for strategy {name!r}: {exc}") from None


def available_strategies() -> dict[str, str]:
    """Mapping of registered name → one-line description, sorted by name."""
    return {name: _REGISTRY[name][1] for name in sorted(_REGISTRY)}


def iter_strategy_names() -> Iterator[str]:
    """Registered names in sorted order."""
    return iter(sorted(_REGISTRY))

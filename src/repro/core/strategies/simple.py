"""The simple strategy (paper §3.3.1, Table 2).

Priority of each URL is assigned from the relevance score of its
*referrer* page:

=============  =====================  ============================
Mode           Relevant referrer      Irrelevant referrer
=============  =====================  ============================
hard-focused   add to URL queue       **discard** extracted links
soft-focused   add with high priority  add with low priority
=============  =====================  ============================

Hard-focused needs no priority queue (everything kept is equal), so it
runs on a FIFO frontier; soft-focused uses the two-band priority queue.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.classifier import Judgment
from repro.core.frontier import Candidate, FIFOFrontier, Frontier, PriorityFrontier
from repro.core.strategies.base import CrawlStrategy
from repro.errors import ConfigError
from repro.urlkit.extract import LinkContext
from repro.webspace.virtualweb import FetchResponse

#: Priority bands of the soft-focused mode.
HIGH_PRIORITY = 1
LOW_PRIORITY = 0


class SimpleStrategy(CrawlStrategy):
    """Referrer-relevance priority assignment, hard or soft."""

    def __init__(self, mode: str = "soft") -> None:
        if mode not in ("hard", "soft"):
            raise ConfigError(f"SimpleStrategy mode must be 'hard' or 'soft', got {mode!r}")
        self.mode = mode
        self.name = f"{mode}-focused"

    def make_frontier(self) -> Frontier:
        if self.mode == "hard":
            return FIFOFrontier()
        return PriorityFrontier()

    def max_priority(self) -> int:
        return HIGH_PRIORITY

    def expand(
        self,
        parent: Candidate,
        response: FetchResponse,
        judgment: Judgment,
        outlinks: Iterable[str],
        link_contexts: Sequence[LinkContext] | None = None,
    ) -> list[Candidate]:
        if self.mode == "hard":
            if not judgment.relevant:
                return []  # Table 2: discard extracted links
            return [Candidate(url=url, referrer=parent.url) for url in outlinks]

        priority = HIGH_PRIORITY if judgment.relevant else LOW_PRIORITY
        return [Candidate(url=url, priority=priority, referrer=parent.url) for url in outlinks]

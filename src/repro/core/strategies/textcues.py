"""Textual-cue scoring shared by the context-aware strategies.

The hybrid and InfoSpiders-style orderings judge a link by how strongly
its anchor/around text *looks like* the target language.  With no text
classifier in the loop (the paper's world is charset-based relevance),
the detector is a Unicode-block character fraction — language-specific
scripts (Thai, kana/kanji, hangul) are unambiguous, and for Latin-script
targets plain ASCII letters are counted instead.
"""

from __future__ import annotations

from repro.charset.languages import Language
from repro.errors import ConfigError

#: Inclusive codepoint ranges per script-identified language.
_BLOCKS: dict[Language, tuple[tuple[int, int], ...]] = {
    Language.THAI: ((0x0E00, 0x0E7F),),
    Language.JAPANESE: ((0x3040, 0x30FF), (0x4E00, 0x9FFF)),
    Language.KOREAN: ((0x1100, 0x11FF), (0xAC00, 0xD7AF)),
}


def resolve_language(language: Language | str) -> Language:
    """Accept a :class:`Language` or its string value (registry params)."""
    if isinstance(language, Language):
        return language
    try:
        return Language(language)
    except ValueError as exc:
        raise ConfigError(f"unknown language {language!r}") from exc


def language_char_fraction(text: str, language: Language) -> float:
    """Fraction of non-space characters of ``text`` in ``language``'s script.

    Returns 0.0 for empty text.  For languages without a dedicated
    script block (OTHER/UNKNOWN) ASCII letters are counted, which makes
    the score meaningful on Latin-script targets and near zero on CJK or
    Thai text.
    """
    blocks = _BLOCKS.get(language)
    total = 0
    hits = 0
    for char in text:
        if char.isspace():
            continue
        total += 1
        if blocks is None:
            if char.isascii() and char.isalpha():
                hits += 1
            continue
        point = ord(char)
        for low, high in blocks:
            if low <= point <= high:
                hits += 1
                break
    if total == 0:
        return 0.0
    return hits / total

"""The summary protocol shared by sequential and parallel crawl results.

:class:`~repro.core.simulator.CrawlResult` and
:class:`~repro.core.parallel.ParallelResult` report different details
(metric series vs partition accounting), but every consumer that just
wants "how did the run go" needs the same three things.  This protocol
names them, so report code — ``summary_rows`` in
:mod:`repro.experiments.runner`, the CLI tables — renders either result
type without isinstance checks.
"""

from __future__ import annotations

from typing import Protocol


class CrawlReport(Protocol):
    """What any finished crawl can tell a report.

    - ``pages_crawled`` — total fetches performed;
    - ``coverage`` — fraction of the dataset's relevant pages found;
    - ``to_dict()`` — the run's headline numbers as a flat,
      JSON-serialisable dict (one table row).
    """

    @property
    def pages_crawled(self) -> int: ...

    @property
    def coverage(self) -> float: ...

    def to_dict(self) -> dict: ...

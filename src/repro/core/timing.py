"""Optional crawl timing model.

The paper's simulator "has been implemented with the omission of details
such as elapsed time and per-server queue", and §6 names "incorporating
transfer delays and access intervals" as future work.  This module is
that extension: a simulated clock for a polite, multi-connection crawler.

Model: the crawler owns ``connections`` download slots.  A fetch starts
when both (a) a slot is free and (b) the target server's politeness
window has elapsed since its previous request; it then takes
``latency + size / bandwidth`` seconds.  The model is deliberately
sequential-in-schedule-order — it answers "how long would this crawl
order take", not "what order would a real crawler pick".
"""

from __future__ import annotations

import heapq

from repro.errors import ConfigError
from repro.urlkit.normalize import url_site_key


class TimingModel:
    """Simulated clock for fetch completion times."""

    def __init__(
        self,
        bandwidth_bytes_per_s: float = 2_000_000.0,
        latency_s: float = 0.05,
        politeness_interval_s: float = 1.0,
        connections: int = 64,
    ) -> None:
        if bandwidth_bytes_per_s <= 0:
            raise ConfigError("bandwidth_bytes_per_s must be > 0")
        if latency_s < 0 or politeness_interval_s < 0:
            raise ConfigError("latency and politeness interval must be >= 0")
        if connections < 1:
            raise ConfigError("connections must be >= 1")
        self.bandwidth = bandwidth_bytes_per_s
        self.latency = latency_s
        self.politeness = politeness_interval_s
        # Min-heap of slot-free times, one entry per connection.
        self._slots: list[float] = [0.0] * connections
        heapq.heapify(self._slots)
        self._site_available: dict[str, float] = {}
        self.now = 0.0

    def observe_fetch(
        self,
        url: str,
        size: int,
        latency_scale: float = 1.0,
        bandwidth_scale: float = 1.0,
    ) -> float:
        """Account for one fetch; returns its simulated completion time.

        ``latency_scale`` multiplies the per-request latency and
        ``bandwidth_scale`` the effective transfer rate — the hooks the
        fault layer's slow-host model and per-fetch jitter use (1.0 for
        healthy hosts, which keeps the arithmetic bit-identical to the
        unscaled path).
        """
        site = url_site_key(url)
        slot_free = heapq.heappop(self._slots)
        start = max(slot_free, self._site_available.get(site, 0.0))
        latency = self.latency if latency_scale == 1.0 else self.latency * latency_scale
        rate = self.bandwidth if bandwidth_scale == 1.0 else self.bandwidth * bandwidth_scale
        completion = start + latency + size / rate
        heapq.heappush(self._slots, completion)
        self._site_available[site] = start + self.politeness
        if completion > self.now:
            self.now = completion
        return completion

    def reserve_fetch(
        self,
        url: str,
        size: int,
        not_before: float = 0.0,
        latency_scale: float = 1.0,
        bandwidth_scale: float = 1.0,
    ) -> tuple[float, float]:
        """Book one fetch for the event-driven scheduler; returns
        ``(start, completion)``.

        Unlike :meth:`observe_fetch`, this does **not** consume a
        connection slot — the caller (:class:`repro.core.sched.
        VirtualTimeEngine`) owns the slots via its event heap and passes
        the issue-time clock as ``not_before``.  Per-site politeness is
        booked here: the fetch starts at the later of ``not_before`` and
        the site's availability, and the site's next request cannot
        start before ``start + politeness``.
        """
        site = url_site_key(url)
        start = max(not_before, self._site_available.get(site, 0.0))
        latency = self.latency if latency_scale == 1.0 else self.latency * latency_scale
        rate = self.bandwidth if bandwidth_scale == 1.0 else self.bandwidth * bandwidth_scale
        completion = start + latency + size / rate
        self._site_available[site] = start + self.politeness
        if completion > self.now:
            self.now = completion
        return start, completion

    def delay_site(self, url: str, seconds: float) -> None:
        """Push ``url``'s site availability ``seconds`` into the future.

        This is how retry backoff spends *simulated* time: the next
        request to the site cannot start before the backoff has elapsed
        on the simulated clock.  Wall time is never slept.
        """
        if seconds <= 0:
            return
        site = url_site_key(url)
        base = max(self._site_available.get(site, 0.0), self.now)
        self._site_available[site] = base + seconds

    # -- checkpoint support --------------------------------------------------

    def snapshot(self) -> dict:
        """Serialisable clock state (see :mod:`repro.core.checkpoint`)."""
        return {
            "bandwidth": self.bandwidth,
            "latency": self.latency,
            "politeness": self.politeness,
            "slots": list(self._slots),
            "site_available": dict(self._site_available),
            "now": self.now,
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot`; the model resumes mid-crawl exactly."""
        self.bandwidth = state["bandwidth"]
        self.latency = state["latency"]
        self.politeness = state["politeness"]
        self._slots = list(state["slots"])  # serialised heap-ordered
        self._site_available = dict(state["site_available"])
        self.now = state["now"]

"""The visitor: crawler mechanics over the virtual web space.

"A visitor simulates various operations of a crawler i.e. managing the
URL queue, downloading of web pages, and extracting new URLs" (paper §4).
Queue management lives in :mod:`repro.core.frontier`; this class covers
the other two: downloading (delegated to the virtual web space) and URL
extraction — either straight from the crawl-log record, or by actually
parsing the synthesized HTML body when the simulation runs with bodies
enabled.
"""

from __future__ import annotations

from time import perf_counter

from repro.graphgen.linkcontext import synthesize_link_contexts
from repro.urlkit.extract import LinkContext, extract_link_contexts, extract_links
from repro.webspace.virtualweb import FetchResponse


class Visitor:
    """Fetch-and-extract front end used by the simulator.

    Transfer accounting is honest about failure: a fetch that produced
    no page — an unknown-URL 404 or an injected fault, both recognisable
    by ``response.record is None`` — increments :attr:`fetches_failed`
    instead of :attr:`pages_fetched`/:attr:`bytes_fetched`, so
    harvest-rate denominators and the ``visitor.bytes`` counter stay
    meaningful under fault injection.

    With an :class:`repro.obs.Instrumentation` attached, the visitor
    times its two operations ("visitor.fetch", "visitor.extract") and
    counts transferred bytes ("visitor.bytes") and failed fetches
    ("visitor.fetches_failed"); without one, the only cost per call is
    a ``None`` check.
    """

    def __init__(
        self,
        web,
        extract_from_body: bool = False,
        instrumentation=None,
    ) -> None:
        self._web = web
        self._extract_from_body = extract_from_body
        self._instr = instrumentation
        self.pages_fetched = 0
        self.bytes_fetched = 0
        self.fetches_failed = 0

    @property
    def web(self):
        return self._web

    def fetch(self, url: str) -> FetchResponse:
        """Simulate downloading ``url`` and update transfer accounting."""
        instr = self._instr
        if instr is None:
            response = self._web.fetch(url)
        else:
            started = perf_counter()
            response = self._web.fetch(url)
            instr.observe("visitor.fetch", perf_counter() - started)
        if response.record is None:
            self.fetches_failed += 1
            if instr is not None:
                instr.count("visitor.fetches_failed")
        else:
            self.pages_fetched += 1
            self.bytes_fetched += response.size
            if instr is not None:
                instr.count("visitor.bytes", response.size)
        return response

    def extract(self, response: FetchResponse) -> tuple[str, ...]:
        """Outlinks of a fetched page.

        With ``extract_from_body`` enabled (and a body present), links
        are parsed out of the HTML; otherwise the crawl-log record's
        outlinks are used directly.  For synthesized pages the two agree
        — a property the integration tests pin down.
        """
        instr = self._instr
        if instr is None:
            return self._extract(response)
        started = perf_counter()
        outlinks = self._extract(response)
        instr.observe("visitor.extract", perf_counter() - started)
        return outlinks

    def _extract(self, response: FetchResponse) -> tuple[str, ...]:
        if not response.ok or not response.is_html:
            return ()
        if self._extract_from_body and response.body is not None:
            return tuple(extract_links(response.body, response.url))
        return response.outlinks

    def extract_contexts(
        self, response: FetchResponse, outlinks: tuple[str, ...]
    ) -> tuple[LinkContext, ...] | None:
        """Per-outlink textual contexts, aligned 1:1 with ``outlinks``.

        Only called when the active strategy sets
        ``wants_link_contexts`` — context-blind runs never pay for it.
        With ``extract_from_body`` (and a body present) the contexts are
        parsed out of the HTML; otherwise they are synthesized
        deterministically from the crawl-log record
        (:func:`repro.graphgen.linkcontext.synthesize_link_contexts`),
        so record-mode runs see the same anchor text a body parse of the
        synthesized page would.  ``outlinks`` is the engine's
        post-defense link list, which may be a filtered subset of the
        raw extraction — contexts are re-aligned to it, with an empty
        context for any URL the underlying parse did not cover.  Returns
        None when no context source exists (failed fetch, no record).
        """
        if not outlinks or not response.ok or not response.is_html:
            return ()
        if self._extract_from_body and response.body is not None:
            raw = extract_link_contexts(response.body, response.url)
        elif response.record is not None:
            raw = synthesize_link_contexts(response.record)
        else:
            return None
        by_url = {context.url: context for context in raw}
        return tuple(
            by_url.get(url) or LinkContext(url, "", "") for url in outlinks
        )

    # -- checkpoint support --------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "pages_fetched": self.pages_fetched,
            "bytes_fetched": self.bytes_fetched,
            "fetches_failed": self.fetches_failed,
        }

    def restore(self, state: dict) -> None:
        self.pages_fetched = state["pages_fetched"]
        self.bytes_fetched = state["bytes_fetched"]
        self.fetches_failed = state.get("fetches_failed", 0)

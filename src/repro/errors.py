"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still letting genuine programming errors (``TypeError`` and friends)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class UrlError(ReproError):
    """A URL could not be parsed or normalised."""


class UnknownPageError(ReproError, KeyError):
    """A URL was requested that does not exist in the virtual web space."""

    def __init__(self, url: str) -> None:
        super().__init__(url)
        self.url = url

    def __str__(self) -> str:  # KeyError quotes its repr; keep a clean message
        return f"unknown page: {self.url!r}"


class CrawlLogError(ReproError):
    """A crawl log file was malformed or written with an unsupported version."""


class DetectionError(ReproError):
    """The charset detector was used incorrectly (e.g. fed after close())."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class FrontierError(ReproError):
    """A frontier operation violated its contract (e.g. pop from empty)."""


class SessionError(ReproError):
    """A crawl session was driven outside its lifecycle contract."""


class CheckpointError(ReproError):
    """A crawl checkpoint could not be written, read, or applied."""

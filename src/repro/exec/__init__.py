"""Deterministic multiprocess sweep execution.

The paper's evidence base is sweeps — strategy sweeps, fault-rate
grids, seed robustness runs, ablations — and every point of a sweep is
an independent simulation.  This package scales them out:

- :class:`~repro.exec.executor.SweepExecutor` — serial in-process
  backend by default (``workers=0``), a
  :class:`~concurrent.futures.ProcessPoolExecutor` fan-out for
  ``workers >= 1``; results always merge in submission order, so
  parallel output is byte-identical to serial.
- :class:`~repro.exec.spec.RunSpec` / :class:`~repro.exec.spec.DatasetSpec`
  — the picklable task recipes workers rebuild runs from, with a
  per-process cache of the run-invariant state.

Entry points that accept ``workers=`` —
:func:`repro.experiments.runner.run_strategies`,
:func:`repro.experiments.faultsweep.fault_sweep`,
:func:`repro.experiments.robustness.seed_sweep` and the ablation
sweeps — route through here; the CLI exposes the same knob as
``--workers N``.
"""

from repro.exec.executor import SweepExecutor
from repro.exec.spec import (
    DatasetSpec,
    RunSpec,
    TimingSpec,
    execute_run,
    result_from_payload,
    result_to_payload,
)

__all__ = [
    "SweepExecutor",
    "DatasetSpec",
    "RunSpec",
    "TimingSpec",
    "execute_run",
    "result_from_payload",
    "result_to_payload",
]

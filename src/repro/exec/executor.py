"""The deterministic sweep executor.

:class:`SweepExecutor` fans independent tasks out to worker processes
— or runs them in-process when ``workers=0``, the default and the
fallback the differential tests compare against.  The determinism
contract is simple and strict:

- tasks are **independent**: no task reads another's output, so they
  may run in any order on any worker;
- results are **merged in submission order**
  (:meth:`concurrent.futures.Executor.map` preserves it), so the
  caller sees exactly the list a serial ``[fn(x) for x in items]``
  would produce;
- each task is a pure function of its (picklable) spec — see
  :mod:`repro.exec.spec` — so ``workers=N`` output is byte-identical
  to ``workers=0`` output for every N.

The executor deliberately has no shared state, no callbacks and no
streaming: a sweep is submit-everything, collect-everything.  That is
what makes the serial backend a *semantic* fallback rather than a
degraded mode.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import ConfigError
from repro.exec.spec import RunSpec, execute_run, result_from_payload

_T = TypeVar("_T")
_R = TypeVar("_R")

__all__ = ["SweepExecutor"]


class SweepExecutor:
    """Run independent tasks serially or over a process pool.

    Args:
        workers: ``0`` (default) runs every task in-process, in order —
            no pool, no pickling, no subprocess cost.  ``N >= 1`` fans
            tasks out to ``N`` worker processes; submission order is
            preserved in the result list either way.
    """

    def __init__(self, workers: int = 0) -> None:
        if workers < 0:
            raise ConfigError(f"workers must be >= 0, got {workers}")
        self.workers = workers

    @property
    def parallel(self) -> bool:
        return self.workers > 0

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """``[fn(item) for item in items]``, possibly across processes.

        ``fn`` must be picklable (a module-level function, or a
        :func:`functools.partial` of one over picklable arguments) when
        ``workers > 0``.  A single-item batch always runs in-process —
        there is nothing to overlap, so the pool would be pure overhead.
        """
        items = list(items)
        if self.workers == 0 or len(items) <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, items))

    def run(self, specs: Sequence[RunSpec]) -> list:
        """Execute :class:`~repro.exec.spec.RunSpec` tasks, in order.

        Returns rehydrated results
        (:class:`~repro.core.simulator.CrawlResult` /
        :class:`~repro.core.parallel.ParallelResult`), one per spec.
        """
        return [result_from_payload(payload) for payload in self.map(execute_run, specs)]

"""Picklable task specs and the worker-side run function.

A sweep fans *independent runs* out to worker processes; what crosses
the process boundary is never a live object graph (web spaces, caches
and strategies hold unpicklable or mutable state) but a **spec**: the
recipe to rebuild the run from scratch, deterministically.

Picklability rules — everything in a spec must be

- **frozen**: specs are dataclasses with ``frozen=True``; workers key
  their caches on them, so hashability matters;
- **constructive**: a registry *name* plus plain keyword parameters,
  not a strategy instance; a :class:`~repro.graphgen.config.DatasetProfile`
  plus capture parameters, not a built dataset; a
  :class:`~repro.faults.FaultProfile` plus seed, not a live
  :class:`~repro.faults.FaultModel` (whose injection counters mutate);
- **process-independent**: nothing derived from ``id()``, ``hash()``
  or iteration order of unsorted containers.  Partition ownership in
  particular goes through :func:`repro.webspace.query.host_bucket`
  (keyed FNV-1a), never Python's salted ``hash``.

Workers rebuild the expensive run-invariant state — the dataset, its
virtual web space, the recall denominator and a classifier cache —
once per process via :func:`_sweep_cache`, keyed by
:class:`DatasetSpec`: the per-worker equivalent of
:func:`~repro.experiments.runner.run_strategies`' sweep-invariant
sharing.  Results come back as ``to_dict()``-level payloads
(:func:`result_to_payload`) and are rehydrated driver-side
(:func:`result_from_payload`), so nothing engine-internal needs to
pickle.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any

from repro.adversary import AdversaryProfile, DefenseConfig
from repro.core.metrics import CrawlSummary, MetricSeries
from repro.core.simulator import CrawlResult
from repro.errors import ConfigError
from repro.faults.model import FaultProfile
from repro.graphgen.config import DatasetProfile
from repro.webspace.query import host_bucket

if TYPE_CHECKING:
    from repro.core.parallel import ParallelResult
    from repro.core.timing import TimingModel
    from repro.experiments.datasets import Dataset

__all__ = [
    "DatasetSpec",
    "TimingSpec",
    "RunSpec",
    "execute_run",
    "result_to_payload",
    "result_from_payload",
]


@dataclass(frozen=True, slots=True)
class TimingSpec:
    """Recipe to rebuild a :class:`~repro.core.timing.TimingModel`.

    The model itself holds per-run mutable clock state (slot heap, site
    availability), so sweeps ship this spec and build a **fresh** model
    per run — serial and worker paths alike, which is what keeps
    ``workers > 0`` byte-identical to serial under timing.
    """

    bandwidth_bytes_per_s: float = 2_000_000.0
    latency_s: float = 0.05
    politeness_interval_s: float = 1.0
    connections: int = 64

    def build(self) -> "TimingModel":
        from repro.core.timing import TimingModel

        return TimingModel(
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s,
            latency_s=self.latency_s,
            politeness_interval_s=self.politeness_interval_s,
            connections=self.connections,
        )


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """Recipe to rebuild a :class:`~repro.experiments.datasets.Dataset`.

    ``capture_kind="none"`` wraps the raw universe with no capture crawl
    (the ablations' comparison basis); the other kinds replay the
    dataset pipeline, reading the shared disk cache when ``use_cache``
    is set — a worker of a sweep whose driver already built the dataset
    then pays one cache read, not a rebuild.

    A ``store_path`` short-circuits everything: the worker memory-maps
    the columnar page store at that path
    (:func:`repro.experiments.datasets.open_dataset_store`) instead of
    generating anything — the out-of-core path, where N workers crawling
    a million-page web share one on-disk copy and pay no per-process
    materialisation.  The path string is the cache key, so it must be
    readable from every worker.
    """

    profile: DatasetProfile | None = None
    capture_kind: str = "none"
    capture_n: int = 0
    use_cache: bool = True
    store_path: str | None = None

    @classmethod
    def from_dataset(cls, dataset: "Dataset", use_cache: bool = True) -> "DatasetSpec":
        return cls(
            profile=dataset.profile,
            capture_kind=dataset.capture_kind,
            capture_n=dataset.capture_n,
            use_cache=use_cache,
        )

    @classmethod
    def from_store(cls, path) -> "DatasetSpec":
        """A spec that opens the page store at ``path`` in each worker."""
        return cls(store_path=str(path))

    def build(self) -> "Dataset":
        # Local imports: repro.experiments modules import repro.exec at
        # module level (for SweepExecutor); the spec layer imports them
        # lazily to keep the dependency acyclic.
        if self.store_path is not None:
            from repro.experiments.datasets import open_dataset_store

            return open_dataset_store(self.store_path)
        if self.profile is None:
            raise ConfigError("DatasetSpec needs a profile= or a store_path=")
        if self.capture_kind == "none":
            from repro.experiments.ablations import universe_dataset

            return universe_dataset(self.profile)
        if self.use_cache:
            from repro.experiments.datasets import load_or_build_dataset

            return load_or_build_dataset(self.profile, self.capture_kind, self.capture_n)
        from repro.experiments.datasets import build_dataset

        return build_dataset(self.profile, self.capture_kind, self.capture_n)


@dataclass(frozen=True, slots=True)
class RunSpec:
    """One independent crawl run, as plain (picklable) parameters.

    ``strategy`` is a registry name resolved through
    :func:`repro.core.strategies.get_strategy` in the worker; ``params``
    is its keyword arguments as a sorted tuple of pairs (tuples keep the
    spec hashable).  A ``fault_profile`` makes the worker build a fresh
    :class:`~repro.faults.FaultModel` seeded with ``fault_seed`` — the
    model itself never crosses the boundary, so its injection counters
    cannot leak between runs.

    ``partitions`` switches the run to the partitioned engine
    (:class:`~repro.core.parallel.ParallelCrawlSimulator`) under
    ``partition_mode``; ``seed_owners`` then carries the driver's
    expected seed → partition assignment (:meth:`for_parallel` computes
    it with :func:`~repro.webspace.query.host_bucket`), which the worker
    re-derives and verifies — a cheap guard that driver and worker agree
    on partition ownership before any pages are fetched.
    """

    dataset: DatasetSpec
    strategy: str
    params: tuple[tuple[str, Any], ...] = ()
    classifier_mode: str = "charset"
    max_pages: int | None = None
    sample_interval: int | None = None
    extract_from_body: bool = False
    synthesize_bodies: bool = False
    fault_profile: FaultProfile | None = None
    fault_seed: int = 0
    #: A timing spec makes the worker build a fresh clock per run; with
    #: ``concurrency`` set the run goes through the event-driven
    #: :class:`~repro.core.sched.VirtualTimeEngine` (K fetch slots).
    timing: "TimingSpec | None" = None
    concurrency: int | None = None
    #: An adversary profile makes the worker build a fresh
    #: :class:`~repro.adversary.AdversaryModel` seeded with
    #: ``adversary_seed`` — like faults, the live model (whose injection
    #: tallies mutate) never crosses the process boundary.
    adversary_profile: AdversaryProfile | None = None
    adversary_seed: int = 0
    #: Engine countermeasures; the config is frozen, the per-run
    #: :class:`~repro.adversary.DefensePolicy` is built session-side.
    defenses: DefenseConfig | None = None
    partitions: int | None = None
    partition_mode: str = "exchange"
    seed_owners: tuple[tuple[str, int], ...] | None = None

    @classmethod
    def for_parallel(
        cls,
        dataset: "Dataset",
        strategy: str,
        partitions: int,
        partition_mode: str = "exchange",
        **kwargs: Any,
    ) -> "RunSpec":
        """A partition-aware spec: seed ownership is pinned driver-side."""
        return cls(
            dataset=DatasetSpec.from_dataset(dataset),
            strategy=strategy,
            partitions=partitions,
            partition_mode=partition_mode,
            seed_owners=tuple(
                (url, host_bucket(url, partitions)) for url in dataset.seed_urls
            ),
            **kwargs,
        )


class _SweepCache:
    """Run-invariant state shared by every run of one dataset spec."""

    def __init__(self, dataset: "Dataset") -> None:
        from repro.core.classifier import ClassifierCache

        self.dataset = dataset
        self.relevant_urls = dataset.relevant_urls()
        self.classifier_cache = ClassifierCache()
        self._webs: dict[bool, Any] = {}

    def web(self, needs_bodies: bool):
        web = self._webs.get(needs_bodies)
        if web is None:
            if needs_bodies:
                from repro.graphgen.htmlsynth import HtmlSynthesizer

                web = self.dataset.web(body_synthesizer=HtmlSynthesizer())
            else:
                web = self.dataset.web()
            self._webs[needs_bodies] = web
        return web


#: Per-process cache: each worker rebuilds a dataset's run-invariant
#: state once and reuses it for every spec that names the same dataset.
_PROCESS_CACHE: dict[DatasetSpec, _SweepCache] = {}


def _sweep_cache(spec: DatasetSpec) -> _SweepCache:
    cache = _PROCESS_CACHE.get(spec)
    if cache is None:
        cache = _SweepCache(spec.build())
        _PROCESS_CACHE[spec] = cache
    return cache


def result_to_payload(result: CrawlResult) -> dict:
    """Flatten a :class:`CrawlResult` to plain JSON-able dicts."""
    return {
        "kind": "crawl",
        "strategy": result.strategy,
        "series": result.series.to_dict(),
        "summary": asdict(result.summary),
        "wall_seconds": result.wall_seconds,
        "pages_crawled": result.pages_crawled,
        "frontier_peak": result.frontier_peak,
        "resilience": result.resilience,
        "adversary": result.adversary,
    }


def result_from_payload(payload: dict) -> "CrawlResult | ParallelResult":
    """Rehydrate a worker's payload into the result it flattened."""
    if payload.get("kind") == "parallel":
        from repro.core.parallel import ParallelResult, PartitionMode

        return ParallelResult(
            mode=PartitionMode(payload["mode"]),
            partitions=payload["partitions"],
            pages_crawled=payload["pages_crawled"],
            covered_relevant=payload["covered_relevant"],
            total_relevant=payload["total_relevant"],
            messages_exchanged=payload["messages_exchanged"],
            messages_accepted=payload["messages_accepted"],
            dropped_foreign_links=payload["dropped_foreign_links"],
            per_crawler_pages=tuple(payload["per_crawler_pages"]),
        )
    return CrawlResult(
        strategy=payload["strategy"],
        series=MetricSeries.from_dict(payload["series"]),
        summary=CrawlSummary(**payload["summary"]),
        wall_seconds=payload["wall_seconds"],
        pages_crawled=payload["pages_crawled"],
        frontier_peak=payload["frontier_peak"],
        resilience=payload["resilience"],
        adversary=payload.get("adversary"),
    )


def execute_run(spec: RunSpec) -> dict:
    """Worker entry point: rebuild, run, flatten.

    Module-level (and therefore picklable by reference) so
    :class:`~repro.exec.executor.SweepExecutor` can ship it to a
    :class:`~concurrent.futures.ProcessPoolExecutor` directly.
    """
    from repro.adversary import AdversaryModel
    from repro.core.classifier import ClassifierMode
    from repro.core.strategies.registry import get_strategy
    from repro.faults.model import FaultModel

    ctx = _sweep_cache(spec.dataset)
    mode = ClassifierMode(spec.classifier_mode)
    faults = (
        FaultModel(profile=spec.fault_profile, seed=spec.fault_seed)
        if spec.fault_profile is not None
        else None
    )
    adversary = (
        AdversaryModel(profile=spec.adversary_profile, seed=spec.adversary_seed)
        if spec.adversary_profile is not None
        else None
    )

    if spec.partitions is not None:
        return _execute_parallel(spec, ctx, faults)

    from repro.experiments.runner import run_strategy

    needs_bodies = (
        spec.synthesize_bodies
        or spec.extract_from_body
        or mode in (ClassifierMode.META, ClassifierMode.DETECTOR)
    )
    result = run_strategy(
        ctx.dataset,
        get_strategy(spec.strategy, **dict(spec.params)),
        classifier_mode=mode,
        max_pages=spec.max_pages,
        sample_interval=spec.sample_interval,
        extract_from_body=spec.extract_from_body,
        web=ctx.web(needs_bodies),
        relevant_urls=ctx.relevant_urls,
        classifier_cache=ctx.classifier_cache,
        faults=faults,
        timing=spec.timing.build() if spec.timing is not None else None,
        concurrency=spec.concurrency,
        adversary=adversary,
        defenses=spec.defenses,
    )
    return result_to_payload(result)


def _execute_parallel(spec: RunSpec, ctx: _SweepCache, faults) -> dict:
    from repro.api import run_crawl
    from repro.core.parallel import ParallelConfig, PartitionMode
    from repro.core.session import CrawlRequest, SessionConfig
    from repro.core.strategies.registry import get_strategy

    partitions = spec.partitions
    assert partitions is not None
    if spec.seed_owners is not None:
        # Re-derive the driver's partition plan; host_bucket is process-
        # independent, so any disagreement means the spec was built for
        # a different partition count (or a corrupted transfer) — fail
        # before fetching anything.
        derived = tuple(
            (url, host_bucket(url, partitions)) for url, _ in spec.seed_owners
        )
        if derived != spec.seed_owners:
            raise ConfigError(
                "seed partition ownership diverged between driver and worker: "
                f"expected {spec.seed_owners!r}, derived {derived!r}"
            )
    result = run_crawl(
        CrawlRequest(
            strategy=lambda: get_strategy(spec.strategy, **dict(spec.params)),
            web=ctx.web(False),
            classifier=_classifier_for(ctx.dataset, spec.classifier_mode),
            seeds=tuple(ctx.dataset.seed_urls),
            relevant_urls=ctx.relevant_urls,
        ),
        config=SessionConfig(
            faults=faults,
            parallel=ParallelConfig(
                partitions=partitions,
                mode=PartitionMode(spec.partition_mode),
                max_pages=spec.max_pages,
            ),
        ),
    )
    return {
        "kind": "parallel",
        "mode": result.mode.value,
        "partitions": result.partitions,
        "pages_crawled": result.pages_crawled,
        "covered_relevant": result.covered_relevant,
        "total_relevant": result.total_relevant,
        "messages_exchanged": result.messages_exchanged,
        "messages_accepted": result.messages_accepted,
        "dropped_foreign_links": result.dropped_foreign_links,
        "per_crawler_pages": list(result.per_crawler_pages),
    }


def _classifier_for(dataset: "Dataset", classifier_mode: str):
    from repro.core.classifier import Classifier

    return Classifier(dataset.target_language, mode=classifier_mode)

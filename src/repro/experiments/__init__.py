"""Evaluation harness (paper §5).

- :mod:`~repro.experiments.datasets` — build (and cache) the Thai and
  Japanese datasets: generate a universe, then *capture* it by crawling
  from seeds the way the authors did.
- :mod:`~repro.experiments.runner` — run strategies over datasets.
- :mod:`~repro.experiments.figures` — series producers for Figures 3-7.
- :mod:`~repro.experiments.tables` — Tables 1-3.
- :mod:`~repro.experiments.report` — plain-text rendering.
- :mod:`~repro.experiments.ablations` — locality / classifier / scale
  sweeps beyond the paper.
- :mod:`~repro.experiments.faultsweep` — harvest/coverage degradation
  versus fault rate under the resilient fetch pipeline.
"""

from repro.experiments.datasets import Dataset, build_dataset, load_or_build_dataset
from repro.experiments.export import export_figure_gnuplot, export_figure_json
from repro.experiments.faultsweep import (
    FaultSweepPoint,
    fault_sweep,
    write_faultsweep_json,
)
from repro.experiments.figures import (
    FigureResult,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.experiments.reproduce import reproduce_all
from repro.experiments.robustness import seed_sweep, sweep_summary
from repro.experiments.runner import run_strategies, run_strategy
from repro.experiments.tables import table1, table2, table3

__all__ = [
    "Dataset",
    "build_dataset",
    "load_or_build_dataset",
    "run_strategy",
    "run_strategies",
    "FigureResult",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "table1",
    "table2",
    "table3",
    "export_figure_json",
    "export_figure_gnuplot",
    "reproduce_all",
    "seed_sweep",
    "sweep_summary",
    "FaultSweepPoint",
    "fault_sweep",
    "write_faultsweep_json",
]

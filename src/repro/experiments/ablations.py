"""Ablations beyond the paper's figures.

Three studies the paper motivates but does not run:

- **A1 locality sweep** — the entire approach rests on "language
  locality in the Web" (§3).  Sweeping the generator's locality knob
  shows how strategy separation collapses as locality fades.
- **A2 classifier choice** — META-declared charsets versus the byte
  detector versus ground truth quantifies the §3.2 discussion about
  mislabeled pages.
- **A3 scale sweep** — shape stability of the headline results across
  dataset sizes, justifying the scaled-down reproduction.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.core.classifier import ClassifierMode
from repro.exec import DatasetSpec, RunSpec, SweepExecutor
from repro.experiments.datasets import Dataset, build_dataset
from repro.experiments.runner import run_strategy
from repro.graphgen.config import DatasetProfile
from repro.graphgen.generator import generate_universe

DEFAULT_LOCALITIES = (0.5, 0.65, 0.8, 0.9, 0.95)
DEFAULT_SCALES = (0.25, 0.5, 1.0)


@dataclass(frozen=True, slots=True)
class AblationRow:
    """One measured configuration of an ablation sweep."""

    label: str
    early_harvest_hard: float
    early_harvest_bfs: float
    coverage_hard: float
    max_queue_soft: int

    def to_dict(self) -> dict:
        return {
            "config": self.label,
            "early_harvest_hard": round(self.early_harvest_hard, 3),
            "early_harvest_bfs": round(self.early_harvest_bfs, 3),
            "coverage_hard": round(self.coverage_hard, 3),
            "max_queue_soft": self.max_queue_soft,
        }


def _measure(dataset: Dataset, label: str) -> AblationRow:
    early_at = max(1, len(dataset.crawl_log) // 5)
    hard = run_strategy(dataset, "hard-focused")
    soft = run_strategy(dataset, "soft-focused")
    bfs = run_strategy(dataset, "breadth-first")
    return AblationRow(
        label=label,
        early_harvest_hard=hard.series.harvest_at(early_at),
        early_harvest_bfs=bfs.series.harvest_at(early_at),
        coverage_hard=hard.final_coverage,
        max_queue_soft=soft.summary.max_queue_size,
    )


def universe_dataset(profile: DatasetProfile) -> Dataset:
    """Wrap a *raw* universe as a Dataset (no capture crawl).

    Ablations that vary a generator knob compare on the raw universe so
    the dataset composition stays fixed — a capture crawl would itself
    respond to the knob and confound the measurement.
    """
    universe = generate_universe(profile)
    return Dataset(
        name=profile.name,
        profile=profile,
        crawl_log=universe.crawl_log,
        seed_urls=universe.seed_urls,
        capture_kind="none",
        capture_n=0,
    )


def _measure_locality(base_profile: DatasetProfile, locality: float) -> AblationRow:
    """One locality row; module-level so a worker process can run it."""
    dataset = universe_dataset(base_profile.with_locality(locality))
    return _measure(dataset, label=f"locality={locality:g}")


def _measure_scale(base_profile: DatasetProfile, scale: float) -> AblationRow:
    """One scale row; module-level so a worker process can run it."""
    dataset = build_dataset(base_profile.scaled(scale))
    return _measure(dataset, label=f"scale={scale:g}")


def locality_sweep(
    base_profile: DatasetProfile,
    localities: tuple[float, ...] = DEFAULT_LOCALITIES,
    workers: int = 0,
) -> list[AblationRow]:
    """A1: how language locality drives focused-crawling gains.

    Runs on raw universes (identical page mix across localities), so a
    change in focused-vs-breadth-first separation is attributable to the
    link structure alone.  Each row is an independent universe, so
    ``workers > 0`` fans rows out over a
    :class:`~repro.exec.SweepExecutor` process pool.
    """
    return SweepExecutor(workers).map(
        functools.partial(_measure_locality, base_profile), localities
    )


_CLASSIFIER_SWEEP_MODES = (
    ClassifierMode.CHARSET,
    ClassifierMode.META,
    ClassifierMode.DETECTOR,
    ClassifierMode.ORACLE,
)


def _classifier_row(mode: ClassifierMode, result) -> dict:
    return {
        "classifier": mode.value,
        "pages_crawled": result.pages_crawled,
        "final_harvest_rate": round(result.final_harvest_rate, 3),
        "coverage_of_charset_set": round(result.final_coverage, 3),
    }


def classifier_sweep(dataset: Dataset, workers: int = 0) -> list[dict]:
    """A2: harvest/coverage of hard-focused under each classifier mode.

    Harvest is judged by the classifier under test while coverage is
    measured against the charset-based reference set, so the rows
    directly expose classifier disagreement.  ``workers > 0`` runs the
    modes as :class:`~repro.exec.RunSpec` tasks over a process pool —
    each worker rebuilds the dataset from its spec rather than
    pickling the crawl log.
    """
    if workers:
        spec = DatasetSpec.from_dataset(dataset)
        specs = [
            RunSpec(dataset=spec, strategy="hard-focused", classifier_mode=mode.value)
            for mode in _CLASSIFIER_SWEEP_MODES
        ]
        results = SweepExecutor(workers).run(specs)
        return [
            _classifier_row(mode, result)
            for mode, result in zip(_CLASSIFIER_SWEEP_MODES, results)
        ]
    rows = []
    for mode in _CLASSIFIER_SWEEP_MODES:
        result = run_strategy(dataset, "hard-focused", classifier_mode=mode)
        rows.append(_classifier_row(mode, result))
    return rows


def scale_sweep(
    base_profile: DatasetProfile,
    scales: tuple[float, ...] = DEFAULT_SCALES,
    workers: int = 0,
) -> list[AblationRow]:
    """A3: shape stability across dataset sizes.

    ``workers > 0`` builds and measures each scale in its own worker
    process.
    """
    return SweepExecutor(workers).map(
        functools.partial(_measure_scale, base_profile), scales
    )

"""Ablations beyond the paper's figures.

Three studies the paper motivates but does not run:

- **A1 locality sweep** — the entire approach rests on "language
  locality in the Web" (§3).  Sweeping the generator's locality knob
  shows how strategy separation collapses as locality fades.
- **A2 classifier choice** — META-declared charsets versus the byte
  detector versus ground truth quantifies the §3.2 discussion about
  mislabeled pages.
- **A3 scale sweep** — shape stability of the headline results across
  dataset sizes, justifying the scaled-down reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classifier import ClassifierMode
from repro.experiments.datasets import Dataset, build_dataset
from repro.experiments.runner import run_strategy
from repro.graphgen.config import DatasetProfile
from repro.graphgen.generator import generate_universe

DEFAULT_LOCALITIES = (0.5, 0.65, 0.8, 0.9, 0.95)
DEFAULT_SCALES = (0.25, 0.5, 1.0)


@dataclass(frozen=True, slots=True)
class AblationRow:
    """One measured configuration of an ablation sweep."""

    label: str
    early_harvest_hard: float
    early_harvest_bfs: float
    coverage_hard: float
    max_queue_soft: int

    def to_dict(self) -> dict:
        return {
            "config": self.label,
            "early_harvest_hard": round(self.early_harvest_hard, 3),
            "early_harvest_bfs": round(self.early_harvest_bfs, 3),
            "coverage_hard": round(self.coverage_hard, 3),
            "max_queue_soft": self.max_queue_soft,
        }


def _measure(dataset: Dataset, label: str) -> AblationRow:
    early_at = max(1, len(dataset.crawl_log) // 5)
    hard = run_strategy(dataset, "hard-focused")
    soft = run_strategy(dataset, "soft-focused")
    bfs = run_strategy(dataset, "breadth-first")
    return AblationRow(
        label=label,
        early_harvest_hard=hard.series.harvest_at(early_at),
        early_harvest_bfs=bfs.series.harvest_at(early_at),
        coverage_hard=hard.final_coverage,
        max_queue_soft=soft.summary.max_queue_size,
    )


def universe_dataset(profile: DatasetProfile) -> Dataset:
    """Wrap a *raw* universe as a Dataset (no capture crawl).

    Ablations that vary a generator knob compare on the raw universe so
    the dataset composition stays fixed — a capture crawl would itself
    respond to the knob and confound the measurement.
    """
    universe = generate_universe(profile)
    return Dataset(
        name=profile.name,
        profile=profile,
        crawl_log=universe.crawl_log,
        seed_urls=universe.seed_urls,
        capture_kind="none",
        capture_n=0,
    )


def locality_sweep(
    base_profile: DatasetProfile,
    localities: tuple[float, ...] = DEFAULT_LOCALITIES,
) -> list[AblationRow]:
    """A1: how language locality drives focused-crawling gains.

    Runs on raw universes (identical page mix across localities), so a
    change in focused-vs-breadth-first separation is attributable to the
    link structure alone.
    """
    rows = []
    for locality in localities:
        dataset = universe_dataset(base_profile.with_locality(locality))
        rows.append(_measure(dataset, label=f"locality={locality:g}"))
    return rows


def classifier_sweep(dataset: Dataset) -> list[dict]:
    """A2: harvest/coverage of hard-focused under each classifier mode.

    Harvest is judged by the classifier under test while coverage is
    measured against the charset-based reference set, so the rows
    directly expose classifier disagreement.
    """
    rows = []
    for mode in (ClassifierMode.CHARSET, ClassifierMode.META, ClassifierMode.DETECTOR, ClassifierMode.ORACLE):
        result = run_strategy(dataset, "hard-focused", classifier_mode=mode)
        rows.append(
            {
                "classifier": mode.value,
                "pages_crawled": result.pages_crawled,
                "final_harvest_rate": round(result.final_harvest_rate, 3),
                "coverage_of_charset_set": round(result.final_coverage, 3),
            }
        )
    return rows


def scale_sweep(
    base_profile: DatasetProfile,
    scales: tuple[float, ...] = DEFAULT_SCALES,
) -> list[AblationRow]:
    """A3: shape stability across dataset sizes."""
    rows = []
    for scale in scales:
        dataset = build_dataset(base_profile.scaled(scale))
        rows.append(_measure(dataset, label=f"scale={scale:g}"))
    return rows

"""Adversarial survival matrix: strategies × scenarios × seeds, twice.

Every cell of the grid crawls the same golden-style web through an
:class:`~repro.adversary.AdversarialWebSpace` — once with engine
defenses off (the degradation baseline) and once with the
:meth:`~repro.adversary.DefenseConfig.standard` preset — and the
summary compares both against the clean crawl.  The headline number per
(strategy, scenario) is the **recovery ratio**::

    gap       = clean_coverage - off_coverage        # what the adversary cost
    recovered = on_coverage    - off_coverage        # what defenses won back
    ratio     = recovered / gap

Coverage (explicit recall) is the survival metric, not harvest rate:
session-alias fetches keep the canonical page's record, so harvest
barely moves under an alias attack while coverage collapses — the
alias URL earns no recall credit.  Defenses can push the ratio above
1.0: the consecutive-irrelevant host budget also stops *honest* hosts
that merely waste fetches, so a defended crawl can beat the clean one.

``benchmarks/bench_adversarial_survival.py`` renders and gates the
payload; CI runs the small ``python -m repro.experiments.adversweep``
smoke with a digest-equality determinism check.  Cells are independent
runs fanned out through :class:`~repro.exec.SweepExecutor`, so
``workers=N`` is byte-identical to serial by the executor's contract.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.adversary import AdversaryProfile, DefenseConfig
from repro.exec import DatasetSpec, RunSpec, SweepExecutor
from repro.experiments.concurrency import sweep_digest
from repro.experiments.datasets import Dataset, load_or_build_dataset
from repro.graphgen.profiles import thai_profile

__all__ = [
    "DEFAULT_SEEDS",
    "DEFAULT_STRATEGIES",
    "SCENARIOS",
    "adversarial_sweep",
    "recovery_summary",
]

#: The adversarial web of each named scenario.  Rates are tuned to the
#: golden-scale Thai web so every scenario produces a *visible* coverage
#: dent within the golden page cap — an adversary that does not hurt
#: cannot demonstrate a defense.
SCENARIOS: dict[str, AdversaryProfile] = {
    "clean": AdversaryProfile(),
    "traps": AdversaryProfile(trap_host_rate=0.3, trap_fanout=4),
    "redirects": AdversaryProfile(redirect_rate=0.3, redirect_hops=4, redirect_loop_rate=0.3),
    "soft404": AdversaryProfile(soft404_rate=0.8, soft404_fanout=3),
    "aliases": AdversaryProfile(alias_host_rate=0.3),
    "mislabel": AdversaryProfile(mislabel_rate=0.3),
    "combined": AdversaryProfile(
        trap_host_rate=0.2,
        trap_fanout=3,
        redirect_rate=0.15,
        redirect_hops=4,
        redirect_loop_rate=0.3,
        soft404_rate=0.5,
        alias_host_rate=0.2,
        mislabel_rate=0.15,
    ),
}

#: The simple strategies plus the paper's combined best — the pair the
#: survival gate holds to the half-gap bar, plus one harder case.
DEFAULT_STRATEGIES: tuple[str, ...] = ("breadth-first", "soft-focused", "hard-focused")

#: Adversary seeds averaged per cell: two seeds keep the matrix honest
#: about seed-robustness without doubling CI cost for every extra seed.
DEFAULT_SEEDS: tuple[int, ...] = (7, 11)


def adversarial_sweep(
    dataset: Dataset,
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
    scenarios: tuple[str, ...] = tuple(SCENARIOS),
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    max_pages: int | None = None,
    workers: int = 0,
) -> dict:
    """Run the (strategy × scenario × seed × defenses) grid.

    The clean scenario runs with no adversary wrapper at all (the true
    baseline, one run per strategy per defense arm — seeds only vary
    adversary draws, so clean cells are seed-invariant and run once).
    """
    unknown = [name for name in scenarios if name not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown adversweep scenarios: {unknown}; known: {sorted(SCENARIOS)}")

    dataset_spec = DatasetSpec.from_dataset(dataset)
    standard = DefenseConfig.standard()
    cells: list[tuple[str, str, int, bool]] = []
    for strategy in strategies:
        for scenario in scenarios:
            scenario_seeds = (seeds[0],) if scenario == "clean" else seeds
            for seed in scenario_seeds:
                for defended in (False, True):
                    cells.append((strategy, scenario, seed, defended))

    specs = [
        RunSpec(
            dataset=dataset_spec,
            strategy=strategy,
            max_pages=max_pages,
            adversary_profile=None if scenario == "clean" else SCENARIOS[scenario],
            adversary_seed=seed,
            defenses=standard if defended else None,
        )
        for strategy, scenario, seed, defended in cells
    ]
    results = SweepExecutor(workers).run(specs)

    rows = []
    for (strategy, scenario, seed, defended), result in zip(cells, results):
        adversary = result.adversary or {}
        rows.append(
            {
                "strategy": result.strategy,
                "scenario": scenario,
                "seed": seed,
                "defended": defended,
                "pages": result.pages_crawled,
                "harvest_rate": round(result.summary.final_harvest_rate, 6),
                "coverage": round(result.summary.final_coverage, 6),
                "injected": adversary.get("injected", {}),
                "defense_stats": adversary.get("defense_stats", {}),
                "redirect_hops": adversary.get("redirect_hops", 0),
                "redirect_aborts": adversary.get("redirect_aborts", 0),
            }
        )

    payload = {
        "experiment": "adversarial-survival",
        "dataset": dataset.name,
        "pages_in_dataset": len(dataset.crawl_log),
        "max_pages": max_pages,
        "strategies": list(strategies),
        "scenarios": list(scenarios),
        "seeds": list(seeds),
        "defenses": standard.to_json_dict(),
        "rows": rows,
        "summary": recovery_summary(rows),
    }
    payload["digest_sha256"] = sweep_digest(payload)
    return payload


def recovery_summary(rows: list[dict]) -> list[dict]:
    """Per (strategy, scenario) recovery ratios, seed-averaged.

    Clean rows anchor the baseline; adversarial scenarios without a
    clean sibling in the same row set are skipped (a partial sweep can
    still serialise, it just carries no summary for those cells).
    """

    def mean_coverage(predicate) -> float | None:
        values = [row["coverage"] for row in rows if predicate(row)]
        if not values:
            return None
        return sum(values) / len(values)

    strategies = list(dict.fromkeys(row["strategy"] for row in rows))
    scenarios = list(dict.fromkeys(row["scenario"] for row in rows))
    summary = []
    for strategy in strategies:
        clean = mean_coverage(
            lambda r: r["strategy"] == strategy
            and r["scenario"] == "clean"
            and not r["defended"]
        )
        for scenario in scenarios:
            if scenario == "clean" or clean is None:
                continue
            off = mean_coverage(
                lambda r: r["strategy"] == strategy
                and r["scenario"] == scenario
                and not r["defended"]
            )
            on = mean_coverage(
                lambda r: r["strategy"] == strategy
                and r["scenario"] == scenario
                and r["defended"]
            )
            if off is None or on is None:
                continue
            gap = clean - off
            recovered = on - off
            summary.append(
                {
                    "strategy": strategy,
                    "scenario": scenario,
                    "clean_coverage": round(clean, 6),
                    "off_coverage": round(off, 6),
                    "on_coverage": round(on, 6),
                    "gap": round(gap, 6),
                    "recovered": round(recovered, 6),
                    "recovery_ratio": round(recovered / gap, 4) if gap > 1e-9 else None,
                }
            )
    return summary


def _parse_names(flag: str, text: str, known: tuple[str, ...] | None = None) -> tuple[str, ...]:
    names = tuple(part.strip() for part in text.split(",") if part.strip())
    if not names:
        raise argparse.ArgumentTypeError(f"{flag} needs at least one name")
    if known is not None:
        unknown = [name for name in names if name not in known]
        if unknown:
            raise argparse.ArgumentTypeError(f"{flag}: unknown {unknown}; known: {sorted(known)}")
    return names


def _parse_seeds(text: str) -> tuple[int, ...]:
    try:
        seeds = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"--seeds needs comma-separated integers, got {text!r}")
    if not seeds:
        raise argparse.ArgumentTypeError("--seeds needs at least one integer")
    return seeds


def _main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.adversweep",
        description="Adversarial survival matrix: defenses on/off per scenario (Thai profile)",
    )
    parser.add_argument("--scale", type=float, default=0.02, help="universe scale factor")
    parser.add_argument(
        "--strategies",
        type=lambda t: _parse_names("--strategies", t),
        default=DEFAULT_STRATEGIES,
        help="comma-separated strategy registry names",
    )
    parser.add_argument(
        "--scenarios",
        type=lambda t: _parse_names("--scenarios", t, tuple(SCENARIOS)),
        default=tuple(SCENARIOS),
        help=f"comma-separated scenario names (known: {', '.join(SCENARIOS)})",
    )
    parser.add_argument(
        "--seeds", type=_parse_seeds, default=DEFAULT_SEEDS, help="adversary seeds per cell"
    )
    parser.add_argument("--max-pages", type=int, default=1100, help="page cap per run")
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N", help="sweep worker processes"
    )
    parser.add_argument("--output", default=None, help="write the JSON payload here")
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run the sweep twice (second pass serial) and require digest equality",
    )
    args = parser.parse_args(argv)

    dataset = load_or_build_dataset(thai_profile().scaled(args.scale))
    payload = adversarial_sweep(
        dataset,
        strategies=args.strategies,
        scenarios=args.scenarios,
        seeds=args.seeds,
        max_pages=args.max_pages,
        workers=args.workers,
    )
    if args.check_determinism:
        again = adversarial_sweep(
            dataset,
            strategies=args.strategies,
            scenarios=args.scenarios,
            seeds=args.seeds,
            max_pages=args.max_pages,
            workers=0,
        )
        if again["digest_sha256"] != payload["digest_sha256"]:
            print(
                "determinism check FAILED: "
                f"workers={args.workers} digest {payload['digest_sha256']} != "
                f"serial digest {again['digest_sha256']}",
                file=sys.stderr,
            )
            return 1
        print(f"determinism check ok: {payload['digest_sha256']}")

    rendered = json.dumps(payload, indent=2, sort_keys=True)
    if args.output is not None:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(rendered + "\n")
        print(f"wrote {output}")
    else:
        for line in payload["summary"]:
            print(json.dumps(line, sort_keys=True))
        print(f"digest: {payload['digest_sha256']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())

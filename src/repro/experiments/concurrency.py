"""Figure-5 queue dynamics under K concurrent fetch slots.

The paper's Figure 5 plots URL-queue size for the hard- and soft-focused
strategies with an instantaneous fetch model.  Under the virtual-time
scheduler (:class:`~repro.core.sched.VirtualTimeEngine`) the same sweep
gains a new axis: with K fetches in flight, frontier order — and
therefore queue growth — depends on latency, bandwidth and per-site
politeness.  This module produces that sweep as a machine-readable
payload; ``benchmarks/bench_fig5_concurrency.py`` renders and gates it,
and CI runs the small ``python -m repro.experiments.concurrency`` smoke
with a digest-equality determinism check.

Every cell of the (strategy × K) grid is an independent run, so the
sweep fans out through :class:`~repro.exec.SweepExecutor` — ``workers=N``
is byte-identical to serial by the executor's contract, and the payload
digest makes that checkable across invocations.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

from repro.exec import DatasetSpec, RunSpec, SweepExecutor, TimingSpec
from repro.experiments.datasets import Dataset, load_or_build_dataset
from repro.graphgen.profiles import thai_profile

__all__ = ["DEFAULT_KS", "DEFAULT_STRATEGIES", "concurrency_sweep", "sweep_digest"]

#: The concurrency ladder of the headline sweep: serial equivalence
#: anchor, a small politeness-bound fleet, and two saturation points.
DEFAULT_KS: tuple[int, ...] = (1, 8, 64, 256)

#: Figure 5's pair: the strategies whose queue dynamics the paper plots.
DEFAULT_STRATEGIES: tuple[str, ...] = ("hard-focused", "soft-focused")


def concurrency_sweep(
    dataset: Dataset,
    ks: tuple[int, ...] = DEFAULT_KS,
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
    max_pages: int | None = None,
    timing_spec: TimingSpec | None = None,
    workers: int = 0,
) -> dict:
    """Run the (strategy × K) grid; returns the Fig-5 payload.

    Each cell runs the event-driven engine with ``concurrency=K`` under
    a fresh clock built from ``timing_spec`` (default: the stock
    :class:`~repro.exec.TimingSpec`).  Cells are independent runs and go
    through :class:`~repro.exec.SweepExecutor`, so ``workers=N`` fans
    them out without changing a byte of the results.
    """
    spec = timing_spec if timing_spec is not None else TimingSpec()
    dataset_spec = DatasetSpec.from_dataset(dataset)
    cells = [(strategy, k) for strategy in strategies for k in ks]
    specs = [
        RunSpec(
            dataset=dataset_spec,
            strategy=strategy,
            max_pages=max_pages,
            timing=spec,
            concurrency=k,
        )
        for strategy, k in cells
    ]
    results = SweepExecutor(workers).run(specs)

    rows = []
    for (strategy, k), result in zip(cells, results):
        sim_seconds = result.summary.simulated_seconds
        rows.append(
            {
                "strategy": result.strategy,
                "concurrency": k,
                "pages": result.pages_crawled,
                "max_queue_size": result.summary.max_queue_size,
                "final_queue_size": result.series.queue_size[-1],
                "harvest_rate": round(result.summary.final_harvest_rate, 6),
                "coverage": round(result.summary.final_coverage, 6),
                "sim_seconds": round(sim_seconds, 3),
                "pages_per_virtual_second": (
                    round(result.pages_crawled / sim_seconds, 3) if sim_seconds > 0 else None
                ),
                "queue_series": list(result.series.queue_size),
            }
        )
    payload = {
        "figure": "5-concurrency",
        "dataset": dataset.name,
        "pages_in_dataset": len(dataset.crawl_log),
        "max_pages": max_pages,
        "ks": list(ks),
        "strategies": list(strategies),
        "timing": {
            "bandwidth_bytes_per_s": spec.bandwidth_bytes_per_s,
            "latency_s": spec.latency_s,
            "politeness_interval_s": spec.politeness_interval_s,
        },
        "rows": rows,
    }
    payload["digest_sha256"] = sweep_digest(payload)
    return payload


def sweep_digest(payload: dict) -> str:
    """Canonical sha256 of a sweep payload's deterministic content.

    Hashes the rows (series and summaries included) plus the grid
    parameters — everything except the digest field itself.  Two
    invocations of the same sweep, at any worker count, must agree.
    """
    canonical = json.dumps(
        {key: value for key, value in payload.items() if key != "digest_sha256"},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def _parse_ks(text: str) -> tuple[int, ...]:
    try:
        ks = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"--ks needs comma-separated integers, got {text!r}")
    if not ks or any(k < 1 for k in ks):
        raise argparse.ArgumentTypeError("--ks needs at least one integer >= 1")
    return ks


def _main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.concurrency",
        description="Fig-5 queue-size sweep across concurrency levels (Thai profile)",
    )
    parser.add_argument("--scale", type=float, default=0.05, help="universe scale factor")
    parser.add_argument(
        "--ks", type=_parse_ks, default=DEFAULT_KS, help="comma-separated concurrency levels"
    )
    parser.add_argument("--max-pages", type=int, default=None, help="page cap per run")
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N", help="sweep worker processes"
    )
    parser.add_argument("--output", default=None, help="write the JSON payload here")
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run the sweep twice (second pass serial) and require digest equality",
    )
    args = parser.parse_args(argv)

    dataset = load_or_build_dataset(thai_profile().scaled(args.scale))
    payload = concurrency_sweep(
        dataset, ks=args.ks, max_pages=args.max_pages, workers=args.workers
    )
    if args.check_determinism:
        again = concurrency_sweep(dataset, ks=args.ks, max_pages=args.max_pages, workers=0)
        if again["digest_sha256"] != payload["digest_sha256"]:
            print(
                "determinism check FAILED: "
                f"workers={args.workers} digest {payload['digest_sha256']} != "
                f"serial digest {again['digest_sha256']}",
                file=sys.stderr,
            )
            return 1
        print(f"determinism check ok: {payload['digest_sha256']}")

    rendered = json.dumps(payload, indent=2, sort_keys=True)
    if args.output is not None:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(rendered + "\n")
        print(f"wrote {output}")
    else:
        print(rendered)
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())

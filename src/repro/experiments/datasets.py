"""Dataset construction: generate a universe, then capture it.

The paper's crawl logs "were acquired by actually crawling the Web to
get the snapshot of the real Web space" (§5.1) — with hard-focused +
limited-distance for the Japanese set and soft-focused +
limited-distance for the Thai set.  We replicate that two-stage process:

1. :func:`repro.graphgen.generate_universe` synthesizes a raw web;
2. a **capture crawl** with the corresponding combined strategy walks it
   from the seeds; every *visited* URL's record (full outlink list
   included) becomes the dataset.

Replayed experiments then run against the captured log, which gives the
same closure property the paper relies on: the soft-focused strategy can
reach 100% coverage because everything in the log was reachable when the
log was captured.

Datasets are cached on disk keyed by the profile fingerprint and capture
parameters; set ``REPRO_LSWC_CACHE`` to relocate the cache, or pass
``cache_dir=None`` to disable caching.
"""

from __future__ import annotations

import json
import os
from collections.abc import Set as AbstractSet
from dataclasses import dataclass
from pathlib import Path

from repro.charset.languages import Language
from repro.core.classifier import Classifier
from repro.core.session import CrawlRequest, CrawlSession, SessionConfig
from repro.core.strategies.combined import hard_limited_strategy, soft_limited_strategy
from repro.errors import ConfigError
from repro.graphgen.config import DatasetProfile
from repro.graphgen.generator import generate_universe
from repro.graphgen.profiles import profile_by_name
from repro.webspace.base import PageSource
from repro.webspace.crawllog import CrawlLog
from repro.webspace.stats import DatasetStats, compute_stats, relevant_url_set
from repro.webspace.store import PageStore, StoreBuilder
from repro.webspace.virtualweb import VirtualWebSpace

#: Capture tunneling depth per capture kind (paper does not publish the
#: authors' N; these are chosen so the captured relevance ratios land on
#: the published Table 3 values).
DEFAULT_CAPTURE_N = {"soft-limited": 3, "hard-limited": 3}


@dataclass(frozen=True, slots=True)
class Dataset:
    """A captured, replayable snapshot plus its bookkeeping.

    ``crawl_log`` is any :class:`~repro.webspace.base.PageSource`: the
    in-memory :class:`~repro.webspace.crawllog.CrawlLog` or a
    memory-mapped :class:`~repro.webspace.store.PageStore` opened by
    :func:`open_dataset_store` — every consumer downstream (web space,
    stats, coverage denominator) is backend-agnostic.
    """

    name: str
    profile: DatasetProfile
    crawl_log: PageSource
    seed_urls: tuple[str, ...]
    capture_kind: str
    capture_n: int

    @property
    def target_language(self) -> Language:
        return self.profile.target_language

    def stats(self) -> DatasetStats:
        """Table 3 characteristics of this dataset."""
        return compute_stats(self.crawl_log, self.target_language)

    def relevant_urls(self) -> AbstractSet[str]:
        """The explicit-recall denominator set.

        Store-backed datasets answer with a lazy column-computed view
        (:class:`~repro.webspace.store.StoreRelevantSet`) — same
        membership and size, no full-record scan.
        """
        lazy = getattr(self.crawl_log, "relevant_url_view", None)
        if lazy is not None:
            return lazy(self.target_language)
        return relevant_url_set(self.crawl_log, self.target_language)

    def web(self, body_synthesizer=None) -> VirtualWebSpace:
        """A fresh virtual web space over this dataset."""
        return VirtualWebSpace(self.crawl_log, body_synthesizer=body_synthesizer)


def capture_kind_for(profile: DatasetProfile) -> str:
    """The paper's capture strategy for a profile's kind of web space."""
    return "hard-limited" if profile.target_language is Language.JAPANESE else "soft-limited"


def build_dataset(
    profile: DatasetProfile,
    capture_kind: str | None = None,
    capture_n: int | None = None,
) -> Dataset:
    """Generate a universe and capture it into a dataset (no caching)."""
    if capture_kind is None:
        capture_kind = capture_kind_for(profile)
    if capture_kind not in ("soft-limited", "hard-limited"):
        raise ConfigError(f"capture_kind must be soft-limited or hard-limited, got {capture_kind!r}")
    if capture_n is None:
        capture_n = DEFAULT_CAPTURE_N[capture_kind]
    if capture_n < 0:
        raise ConfigError("capture_n must be >= 0")

    universe = generate_universe(profile)
    if capture_kind == "soft-limited":
        strategy = soft_limited_strategy(capture_n)
    else:
        strategy = hard_limited_strategy(capture_n)

    visited: list[str] = []
    CrawlSession(
        CrawlRequest(
            strategy=strategy,
            web=VirtualWebSpace(universe.crawl_log),
            classifier=Classifier(profile.target_language),
            seeds=tuple(universe.seed_urls),
            relevant_urls=frozenset(),  # capture needs no coverage accounting
        ),
        SessionConfig(
            sample_interval=1_000_000,
            on_fetch=lambda event: visited.append(event.url),
        ),
    ).run()

    captured = CrawlLog(
        universe.crawl_log[url] for url in visited if url in universe.crawl_log
    )
    return Dataset(
        name=profile.name,
        profile=profile,
        crawl_log=captured,
        seed_urls=universe.seed_urls,
        capture_kind=capture_kind,
        capture_n=capture_n,
    )


# --------------------------------------------------------------------------
# Columnar on-disk datasets
# --------------------------------------------------------------------------

def build_dataset_store(
    profile: DatasetProfile,
    path: Path | str,
    capture_kind: str | None = None,
    capture_n: int | None = None,
) -> Path:
    """Build a dataset straight into a columnar page store at ``path``.

    ``capture_kind="none"`` writes the raw universe via the streaming
    generator — no :class:`~repro.webspace.page.PageRecord` objects are
    materialised, so this path scales to million-page webs.  The capture
    kinds run the same capture crawl as :func:`build_dataset`, but over a
    store-backed universe: the universe is staged to ``path + ".universe.tmp"``,
    crawled through a memory-mapped :class:`~repro.webspace.store.PageStore`,
    and only the *visited* records pass through a
    :class:`~repro.webspace.store.StoreBuilder` into the final file.

    Returns ``path`` (as a :class:`~pathlib.Path`).
    """
    from repro.graphgen.stream import write_universe_store

    path = Path(path)
    if capture_kind is None:
        capture_kind = capture_kind_for(profile)
    if capture_kind == "none":
        write_universe_store(profile, path)
        return path
    if capture_kind not in ("soft-limited", "hard-limited"):
        raise ConfigError(
            f"capture_kind must be none, soft-limited or hard-limited, got {capture_kind!r}"
        )
    if capture_n is None:
        capture_n = DEFAULT_CAPTURE_N[capture_kind]
    if capture_n < 0:
        raise ConfigError("capture_n must be >= 0")

    universe_path = path.with_name(path.name + ".universe.tmp")
    write_universe_store(profile, universe_path)
    try:
        with PageStore.open(universe_path) as universe:
            if capture_kind == "soft-limited":
                strategy = soft_limited_strategy(capture_n)
            else:
                strategy = hard_limited_strategy(capture_n)
            seed_urls = universe.seed_urls
            visited: list[str] = []
            CrawlSession(
                CrawlRequest(
                    strategy=strategy,
                    web=VirtualWebSpace(universe),
                    classifier=Classifier(profile.target_language),
                    seeds=seed_urls,
                    relevant_urls=frozenset(),
                ),
                SessionConfig(
                    sample_interval=1_000_000,
                    on_fetch=lambda event: visited.append(event.url),
                ),
            ).run()

            builder = StoreBuilder()
            for url in visited:
                record = universe.get(url)
                if record is not None:
                    builder.add(record)
            builder.finish(
                path,
                meta={
                    "name": profile.name,
                    "profile": profile.to_json_dict(),
                    "seed_urls": list(seed_urls),
                    "capture_kind": capture_kind,
                    "capture_n": capture_n,
                },
            )
    finally:
        universe_path.unlink(missing_ok=True)
    return path


def open_dataset_store(path: Path | str) -> Dataset:
    """Open a store file written by :func:`build_dataset_store` as a Dataset.

    The returned dataset's ``crawl_log`` is the memory-mapped
    :class:`~repro.webspace.store.PageStore`; close it (or use it as a
    context manager) when done to release the maps.
    """
    store = PageStore.open(path)
    meta = store.meta
    try:
        profile = DatasetProfile.from_json_dict(meta["profile"])
    except (KeyError, TypeError) as exc:
        store.close()
        raise ConfigError(f"store at {path} carries no dataset profile: {exc}") from None
    return Dataset(
        name=meta.get("name", profile.name),
        profile=profile,
        crawl_log=store,
        seed_urls=tuple(meta.get("seed_urls", ())),
        capture_kind=meta.get("capture_kind", "none"),
        capture_n=int(meta.get("capture_n", 0)),
    )


# --------------------------------------------------------------------------
# Disk cache
# --------------------------------------------------------------------------

def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_LSWC_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-lswc"


def _cache_key(profile: DatasetProfile, capture_kind: str, capture_n: int) -> str:
    return f"{profile.name}-{profile.fingerprint()}-{capture_kind}-n{capture_n}"


def load_or_build_dataset(
    profile: DatasetProfile | str,
    capture_kind: str | None = None,
    capture_n: int | None = None,
    cache_dir: Path | str | None = "default",
    force: bool = False,
) -> Dataset:
    """Like :func:`build_dataset`, but memoised on disk.

    Args:
        profile: a :class:`DatasetProfile` or a registered profile name
            (``"thai"`` / ``"japanese"``).
        capture_kind: ``soft-limited`` / ``hard-limited``; defaults per
            the paper's choice for the profile's language.
        capture_n: tunneling depth of the capture crawl.
        cache_dir: ``"default"`` → ``$REPRO_LSWC_CACHE`` or
            ``~/.cache/repro-lswc``; ``None`` disables caching.
        force: rebuild even when a cached copy exists.
    """
    if isinstance(profile, str):
        profile = profile_by_name(profile)
    if capture_kind is None:
        capture_kind = capture_kind_for(profile)
    if capture_n is None:
        capture_n = DEFAULT_CAPTURE_N[capture_kind]

    if cache_dir is None:
        return build_dataset(profile, capture_kind, capture_n)
    directory = default_cache_dir() if cache_dir == "default" else Path(cache_dir)
    key = _cache_key(profile, capture_kind, capture_n)
    log_path = directory / f"{key}.jsonl.gz"
    meta_path = directory / f"{key}.meta.json"

    if not force and log_path.exists() and meta_path.exists():
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        return Dataset(
            name=profile.name,
            profile=profile,
            crawl_log=CrawlLog.load(log_path),
            seed_urls=tuple(meta["seed_urls"]),
            capture_kind=meta["capture_kind"],
            capture_n=meta["capture_n"],
        )

    dataset = build_dataset(profile, capture_kind, capture_n)
    directory.mkdir(parents=True, exist_ok=True)
    dataset.crawl_log.save(log_path)
    with open(meta_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "seed_urls": list(dataset.seed_urls),
                "capture_kind": dataset.capture_kind,
                "capture_n": dataset.capture_n,
                "profile_fingerprint": profile.fingerprint(),
            },
            handle,
            indent=2,
        )
    return dataset

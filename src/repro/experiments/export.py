"""Exporting figure data: JSON, CSV and gnuplot.

The paper's figures are gnuplot plots; this module writes each
regenerated figure in formats a downstream user (or the original
authors) could plot directly:

- ``<figN>.json`` — the full series per strategy, self-describing;
- ``<figN>_<label>.dat`` — whitespace-separated columns
  ``pages harvest_rate coverage queue_size`` per strategy, the classic
  gnuplot input;
- ``<figN>.gp`` — a gnuplot script reproducing the paper's panels from
  those .dat files (percent-scaled axes, matching titles).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.experiments.figures import FigureResult

_METRIC_AXIS = {
    "harvest_rate": "Harvest Rate [%]",
    "coverage": "Coverage [%]",
    "queue_size": "URL Queue Size [URLs]",
}

_METRIC_COLUMN = {"harvest_rate": 2, "coverage": 3, "queue_size": 4}

_PERCENT = {"harvest_rate", "coverage"}


def _slug(label: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", label.lower()).strip("_")


def export_figure_json(figure: FigureResult, path: str | Path) -> Path:
    """Write the figure's complete series as one JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(figure.to_dict(), handle, indent=2)
    return path


def export_figure_gnuplot(figure: FigureResult, directory: str | Path) -> list[Path]:
    """Write per-strategy .dat files and a .gp script for the figure.

    Returns the list of written paths (data files first, script last).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    data_files: dict[str, Path] = {}
    for label, result in figure.results.items():
        series = result.series
        data_path = directory / f"fig{figure.figure}_{_slug(label)}.dat"
        with open(data_path, "w", encoding="utf-8") as handle:
            handle.write("# pages harvest_rate[%] coverage[%] queue_size\n")
            rows = zip(series.pages, series.harvest_rate, series.coverage, series.queue_size)
            for pages, harvest, coverage, queue in rows:
                handle.write(f"{pages} {100 * harvest:.4f} {100 * coverage:.4f} {queue}\n")
        data_files[label] = data_path
        written.append(data_path)

    script_path = directory / f"fig{figure.figure}.gp"
    with open(script_path, "w", encoding="utf-8") as handle:
        handle.write(f"# Figure {figure.figure}: {figure.title} [{figure.dataset} dataset]\n")
        handle.write("set key bottom right\nset xlabel 'pages crawled'\n\n")
        for panel_index, metric in enumerate(figure.panels, start=1):
            column = _METRIC_COLUMN[metric]
            handle.write(f"# panel ({chr(96 + panel_index)}): {_METRIC_AXIS[metric]}\n")
            handle.write(f"set ylabel '{_METRIC_AXIS[metric]}'\n")
            if metric in _PERCENT:
                handle.write("set yrange [0:100]\n")
            else:
                handle.write("set yrange [0:*]\n")
            plots = ", \\\n     ".join(
                f"'{data_files[label].name}' using 1:{column} with linespoints title '{label}'"
                for label in figure.results
            )
            handle.write(f"plot {plots}\n")
            handle.write("pause -1 'panel done — press enter'\n\n")
    written.append(script_path)
    return written

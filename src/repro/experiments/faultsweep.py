"""Fault sweep: crawl quality degradation versus failure rate.

The paper's evaluation assumes a perfectly reliable web; a national-scale
archiving crawl does not get one.  This experiment measures how each
strategy's headline metrics — harvest rate and coverage — degrade as the
simulated web gets less reliable, with the resilient fetch pipeline
(retry, circuit breaking, capped requeue) doing its best against each
fault level.

One sweep point is one ``(strategy, fault_rate)`` run.  ``fault_rate``
parameterises a :class:`~repro.faults.FaultProfile` where the transient
error rate equals the sweep rate and timeouts/truncations run at half of
it — a mix that exercises all three recovery layers.  Fault decisions
are seeded, so the whole sweep is reproducible.

Output is machine-readable JSON (``write_faultsweep_json``) with one row
per sweep point, consumed by the CI smoke job and plottable directly::

    python -m repro.experiments.faultsweep --scale 0.05 \
        --rates 0,0.1,0.2 --output faultsweep.json
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.strategies import get_strategy
from repro.errors import ConfigError
from repro.exec import DatasetSpec, RunSpec, SweepExecutor
from repro.experiments.datasets import Dataset
from repro.experiments.runner import run_strategy
from repro.faults import FaultModel, FaultProfile

DEFAULT_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)

#: The paper's strategy set as picklable ``(registry name, params)``
#: pairs — the form a ``workers > 0`` sweep ships to worker processes.
DEFAULT_STRATEGY_SPECS = (
    ("breadth-first", {}),
    ("hard-focused", {}),
    ("soft-focused", {}),
    ("limited-distance", {"n": 2}),
)


def default_strategies():
    """The paper's strategy set, fresh instances per call."""
    return tuple(
        get_strategy(name, **params) for name, params in DEFAULT_STRATEGY_SPECS
    )


def profile_for_rate(rate: float) -> FaultProfile:
    """The sweep's fault mix at one sweep rate.

    Transient errors at the full rate, timeouts and truncations at half:
    retries recover most transients, timeouts burn whole fetch rounds,
    truncations degrade pages to irrelevant — so the sweep stresses
    recovery, accounting and classification at once.
    """
    return FaultProfile(
        transient_error_rate=rate,
        timeout_rate=rate / 2,
        truncation_rate=rate / 2,
    )


@dataclass(frozen=True, slots=True)
class FaultSweepPoint:
    """One strategy's outcome under one fault rate."""

    strategy: str
    fault_rate: float
    pages_crawled: int
    harvest_rate: float
    coverage: float
    fetches_failed: int
    retries: int
    requeued: int
    dropped: int
    faults_injected: int

    def to_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "fault_rate": self.fault_rate,
            "pages_crawled": self.pages_crawled,
            "harvest_rate": round(self.harvest_rate, 4),
            "coverage": round(self.coverage, 4),
            "fetches_failed": self.fetches_failed,
            "retries": self.retries,
            "requeued": self.requeued,
            "dropped": self.dropped,
            "faults_injected": self.faults_injected,
        }


def _sweep_point(strategy_name: str, rate: float, result) -> FaultSweepPoint:
    """One sweep row from a finished run — shared by both backends."""
    resilience = result.resilience or {}
    return FaultSweepPoint(
        strategy=strategy_name,
        fault_rate=rate,
        pages_crawled=result.pages_crawled,
        harvest_rate=result.final_harvest_rate,
        coverage=result.final_coverage,
        fetches_failed=resilience.get("fetches_failed", 0),
        retries=resilience.get("retries", 0),
        requeued=resilience.get("requeued", 0),
        dropped=resilience.get("dropped", 0),
        faults_injected=sum(resilience.get("faults_injected", {}).values()),
    )


def fault_sweep(
    dataset: Dataset,
    rates: tuple[float, ...] = DEFAULT_RATES,
    strategies=None,
    max_pages: int | None = None,
    fault_seed: int = 0,
    workers: int = 0,
) -> list[FaultSweepPoint]:
    """Measure every strategy at every fault rate.

    The same ``fault_seed`` is used at every sweep point, so two
    strategies at the same rate face the *same* unreliable web — the
    per-URL fault decisions agree wherever their crawls overlap.

    ``workers > 0`` distributes the (strategy × rate) grid over a
    :class:`~repro.exec.SweepExecutor` process pool; ``strategies``
    must then be ``(name, params)`` pairs or plain registry names
    (defaulting to :data:`DEFAULT_STRATEGY_SPECS`), and the returned
    points are identical to the serial sweep's.
    """
    if workers:
        return _fault_sweep_workers(dataset, rates, strategies, max_pages, fault_seed, workers)
    points: list[FaultSweepPoint] = []
    for rate in rates:
        for strategy in strategies if strategies is not None else default_strategies():
            faults = (
                FaultModel(profile=profile_for_rate(rate), seed=fault_seed)
                if rate > 0
                else None
            )
            result = run_strategy(
                dataset,
                strategy,
                max_pages=max_pages,
                faults=faults,
            )
            points.append(_sweep_point(strategy.name, rate, result))
    return points


def _fault_sweep_workers(
    dataset: Dataset,
    rates: tuple[float, ...],
    strategies,
    max_pages: int | None,
    fault_seed: int,
    workers: int,
) -> list[FaultSweepPoint]:
    if strategies is None:
        strategies = DEFAULT_STRATEGY_SPECS
    dataset_spec = DatasetSpec.from_dataset(dataset)
    labels: list[tuple[str, float]] = []
    specs: list[RunSpec] = []
    for rate in rates:
        for strategy in strategies:
            if isinstance(strategy, tuple):
                name, params = strategy
            elif isinstance(strategy, str):
                name, params = strategy, {}
            else:
                raise ConfigError(
                    "fault_sweep(workers>0) needs registry-name strategies (a "
                    f"name or (name, params) pair), got instance {strategy!r}"
                )
            labels.append((get_strategy(name, **params).name, rate))
            specs.append(
                RunSpec(
                    dataset=dataset_spec,
                    strategy=name,
                    params=tuple(sorted(params.items())),
                    max_pages=max_pages,
                    fault_profile=profile_for_rate(rate) if rate > 0 else None,
                    fault_seed=fault_seed,
                )
            )
    results = SweepExecutor(workers).run(specs)
    return [
        _sweep_point(name, rate, result)
        for (name, rate), result in zip(labels, results)
    ]


def write_faultsweep_json(
    points: list[FaultSweepPoint],
    path: str | Path,
    dataset: Dataset | None = None,
) -> None:
    """Serialise a sweep to the JSON artifact shape CI uploads."""
    payload = {
        "experiment": "faultsweep",
        "dataset": dataset.name if dataset is not None else None,
        "dataset_pages": len(dataset.crawl_log) if dataset is not None else None,
        "points": [point.to_dict() for point in points],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def main(argv=None) -> int:
    import argparse

    from repro.experiments.datasets import load_or_build_dataset
    from repro.experiments.report import render_table
    from repro.graphgen.profiles import profile_by_name

    parser = argparse.ArgumentParser(
        description="Harvest/coverage degradation vs fault rate, per strategy"
    )
    parser.add_argument("--profile", default="thai", choices=["thai", "japanese", "korean"])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument(
        "--rates",
        default=",".join(str(rate) for rate in DEFAULT_RATES),
        help="comma-separated fault rates in [0, 1]",
    )
    parser.add_argument("--max-pages", type=int, default=None)
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--output", default=None, metavar="FILE.json")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="fan sweep points out to N worker processes (0 = serial, default)",
    )
    args = parser.parse_args(argv)

    profile = profile_by_name(args.profile)
    if args.scale != 1.0:
        profile = profile.scaled(args.scale)
    dataset = load_or_build_dataset(profile, cache_dir=None if args.no_cache else "default")
    rates = tuple(float(token) for token in args.rates.split(",") if token.strip())
    points = fault_sweep(
        dataset,
        rates=rates,
        max_pages=args.max_pages,
        fault_seed=args.fault_seed,
        workers=args.workers,
    )
    print(
        render_table(
            [point.to_dict() for point in points],
            title="Fault sweep (harvest/coverage vs fault rate)",
        )
    )
    if args.output:
        write_faultsweep_json(points, args.output, dataset=dataset)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Series producers for the paper's figures.

Each ``figureN`` function reruns the corresponding experiment and
returns a :class:`FigureResult` holding the metric series per strategy
label — the same curves the paper plots — plus which metric each panel
shows.  Rendering to text is in :mod:`repro.experiments.report`; the
benchmarks assert the *shape* criteria from DESIGN.md against these
results.

Paper → producer map:

- Figure 3: simple strategy on Thai — harvest (a) and coverage (b).
- Figure 4: simple strategy on Japanese — harvest (a) and coverage (b).
- Figure 5: URL queue size of the simple strategy on Thai.
- Figure 6: non-prioritized limited distance, N = 1..4 — queue (a),
  harvest (b), coverage (c).
- Figure 7: prioritized limited distance, N = 1..4 — same panels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import MetricSeries
from repro.core.simulator import CrawlResult
from repro.experiments.datasets import Dataset
from repro.experiments.runner import run_strategies

#: The N sweep of Figures 6 and 7.
LIMITED_DISTANCE_NS = (1, 2, 3, 4)


@dataclass(slots=True)
class FigureResult:
    """Everything needed to render / assert one paper figure."""

    figure: str
    title: str
    dataset: str
    panels: tuple[str, ...]  # metric names: harvest_rate / coverage / queue_size
    results: dict[str, CrawlResult] = field(default_factory=dict)

    def series(self) -> dict[str, MetricSeries]:
        return {label: result.series for label, result in self.results.items()}

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "title": self.title,
            "dataset": self.dataset,
            "panels": list(self.panels),
            "series": {label: series.to_dict() for label, series in self.series().items()},
        }


def _simple_strategy_runs(dataset: Dataset, **kwargs) -> dict[str, CrawlResult]:
    return run_strategies(
        dataset, ["breadth-first", "hard-focused", "soft-focused"], **kwargs
    )


def figure3(dataset: Dataset, **kwargs) -> FigureResult:
    """Simple strategy on the Thai dataset (harvest + coverage)."""
    return FigureResult(
        figure="3",
        title="Simulation results of the Simple Strategy on Thai dataset",
        dataset=dataset.name,
        panels=("harvest_rate", "coverage"),
        results=_simple_strategy_runs(dataset, **kwargs),
    )


def figure4(dataset: Dataset, **kwargs) -> FigureResult:
    """Simple strategy on the Japanese dataset (harvest + coverage)."""
    return FigureResult(
        figure="4",
        title="Simulation results of the Simple Strategy on Japanese dataset",
        dataset=dataset.name,
        panels=("harvest_rate", "coverage"),
        results=_simple_strategy_runs(dataset, **kwargs),
    )


def figure5(dataset: Dataset, **kwargs) -> FigureResult:
    """URL queue size while running the simple strategy (Thai dataset).

    The paper plots hard- and soft-focused; we keep both and the
    breadth-first reference it mentions in the text.
    """
    return FigureResult(
        figure="5",
        title="Size of URL Queue while running the Simple Strategy",
        dataset=dataset.name,
        panels=("queue_size",),
        results=_simple_strategy_runs(dataset, **kwargs),
    )


def _limited_distance_runs(
    dataset: Dataset, prioritized: bool, ns: tuple[int, ...], **kwargs
) -> dict[str, CrawlResult]:
    # (name, params) pairs rather than instances, so a caller-supplied
    # workers= can ship the sweep to worker processes.
    strategies = [("limited-distance", {"n": n, "prioritized": prioritized}) for n in ns]
    return run_strategies(dataset, strategies, **kwargs)


def figure6(
    dataset: Dataset, ns: tuple[int, ...] = LIMITED_DISTANCE_NS, **kwargs
) -> FigureResult:
    """Non-prioritized limited distance, N sweep (queue/harvest/coverage)."""
    return FigureResult(
        figure="6",
        title="Non-Prioritized Limited Distance Strategy",
        dataset=dataset.name,
        panels=("queue_size", "harvest_rate", "coverage"),
        results=_limited_distance_runs(dataset, prioritized=False, ns=ns, **kwargs),
    )


def figure7(
    dataset: Dataset, ns: tuple[int, ...] = LIMITED_DISTANCE_NS, **kwargs
) -> FigureResult:
    """Prioritized limited distance, N sweep (queue/harvest/coverage)."""
    return FigureResult(
        figure="7",
        title="Prioritized Limited Distance Strategy",
        dataset=dataset.name,
        panels=("queue_size", "harvest_rate", "coverage"),
        results=_limited_distance_runs(dataset, prioritized=True, ns=ns, **kwargs),
    )

"""Golden crawl traces: the differential gate on engine optimisation.

The simulator is only allowed to get *faster*, never *different*: every
strategy's value rests on its exact, reproducible fetch ordering (the
paper's figures are functions of that order, and the limited-distance
semantics are defined path-by-path).  This module records the complete
observable behaviour of a crawl — the fetch order and each page's
relevance verdict — on a small, fully deterministic generated web, and
serialises it as JSONL.

The checked-in fixtures under ``tests/golden/fixtures/`` are the golden
reference; ``tests/golden/test_golden_traces.py`` replays every strategy
against them on each test run, so any hot-path change that perturbs
orderings — a heap tiebreak regression, a cache returning a stale
judgment, an interning bug collapsing two URLs — fails tier-1 with the
first divergent step named.

Regenerate fixtures (only when an ordering change is *intended* and
reviewed) with::

    python -m repro.experiments.reproduce --regen-golden

Fixture format: line 1 is a JSON header (format name/version, profile,
scale, strategy, page cap); each further line is one fetch,
``{"step": n, "url": ..., "relevant": ...}``, in fetch order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from repro.core.strategies import CrawlStrategy, get_strategy
from repro.errors import ReproError
from repro.experiments.datasets import Dataset, build_dataset
from repro.experiments.runner import run_strategy
from repro.graphgen.profiles import thai_profile

_FORMAT_NAME = "repro-lswc-golden-trace"
_FORMAT_VERSION = 1

#: Scale of the golden universe — small enough that seven checked-in
#: traces stay reviewable, big enough that every priority band and
#: tunneling depth is exercised.
GOLDEN_SCALE = 0.02

#: Fetches recorded per strategy.  A cap (rather than frontier
#: exhaustion) keeps fixtures compact, but it must be deep enough that
#: every pair of pinned strategies has visibly diverged — on the golden
#: web the last pair (limited-distance N=2 prioritized vs soft-focused)
#: separates at step 1007, so anything shorter would leave part of the
#: matrix pinning duplicate traces.
GOLDEN_MAX_PAGES = 1100

#: Default fixture directory, resolved from the repository layout
#: (``src/repro/experiments/golden.py`` → repo root → ``tests/golden``).
GOLDEN_FIXTURE_DIR = Path(__file__).resolve().parents[3] / "tests" / "golden" / "fixtures"

#: Event-driven (virtual-time) fixtures live in a subdirectory: the
#: round-based suite's orphan check globs ``fixtures/*.jsonl``
#: non-recursively, so sched fixtures stay out of its matrix.
SCHED_FIXTURE_DIR = GOLDEN_FIXTURE_DIR / "sched"

#: The checked-in concurrent-order fixture: soft-focused at K=8 under
#: the default clock.  Soft-focused because its two priority bands make
#: frontier order (and therefore the fixture) genuinely sensitive to
#: *when* completions land, not just to what was discovered.
SCHED_GOLDEN_CONCURRENCY = 8
SCHED_GOLDEN_STRATEGY = "soft-focused"


def golden_strategies() -> dict[str, Callable[[], CrawlStrategy]]:
    """The strategy matrix the golden suite pins, by fixture name.

    Breadth-first, both simple modes, and limited-distance N ∈ {1, 2} in
    both priority modes — one strategy per frontier discipline and
    priority-band shape the engine supports.
    """
    def limited(n: int, prioritized: bool = False) -> Callable[[], CrawlStrategy]:
        return lambda: get_strategy("limited-distance", n=n, prioritized=prioritized)

    return {
        "breadth-first": lambda: get_strategy("breadth-first"),
        "hard-focused": lambda: get_strategy("hard-focused"),
        "soft-focused": lambda: get_strategy("soft-focused"),
        "limited-distance-n1": limited(1),
        "limited-distance-n1-prioritized": limited(1, prioritized=True),
        "limited-distance-n2": limited(2),
        "limited-distance-n2-prioritized": limited(2, prioritized=True),
    }


def golden_dataset() -> Dataset:
    """The deterministic web the traces are recorded on.

    Built fresh (no disk cache) from the Thai profile's fixed seed:
    generation and capture are pure functions of the profile, so every
    machine and every run constructs byte-identical logs.
    """
    return build_dataset(thai_profile().scaled(GOLDEN_SCALE))


def record_golden_trace(
    dataset: Dataset,
    strategy: CrawlStrategy,
    max_pages: int = GOLDEN_MAX_PAGES,
) -> list[dict]:
    """The exact fetch order + per-page relevance of one crawl.

    Returns one row per fetch, in order:
    ``{"step": n, "url": str, "relevant": bool}``.
    """
    rows: list[dict] = []

    def observe(event) -> None:
        rows.append(
            {"step": event.step, "url": event.url, "relevant": event.judgment.relevant}
        )

    run_strategy(dataset, strategy, max_pages=max_pages, on_fetch=observe)
    return rows


def record_sched_trace(
    dataset: Dataset,
    strategy: CrawlStrategy,
    max_pages: int = GOLDEN_MAX_PAGES,
    concurrency: int = 1,
    timing_spec=None,
) -> list[dict]:
    """Fetch order + relevance of one *event-driven* crawl.

    Same row shape as :func:`record_golden_trace`, but the crawl runs on
    the :class:`~repro.core.sched.VirtualTimeEngine` with ``concurrency``
    fetch slots under ``timing_spec`` (default: the stock clock).  With
    ``concurrency=1`` the trace must equal the round-based one — the
    K=1 equivalence contract ``tests/golden/test_golden_sched.py`` pins.
    """
    from repro.exec import TimingSpec

    rows: list[dict] = []

    def observe(event) -> None:
        rows.append(
            {"step": event.step, "url": event.url, "relevant": event.judgment.relevant}
        )

    spec = timing_spec if timing_spec is not None else TimingSpec()
    run_strategy(
        dataset,
        strategy,
        max_pages=max_pages,
        on_fetch=observe,
        timing=spec.build(),
        concurrency=concurrency,
    )
    return rows


def write_sched_traces(
    directory: str | Path = SCHED_FIXTURE_DIR,
    dataset: Dataset | None = None,
    max_pages: int = GOLDEN_MAX_PAGES,
    progress: Callable[[str], None] | None = None,
) -> list[Path]:
    """Record and serialise the concurrent-order fixture (K=8).

    One fixture is enough: the K=1 side of the differential is pinned
    against the *round-based* fixtures (that is the equivalence
    contract), so only genuinely concurrent ordering needs its own
    checked-in reference.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    say = progress or (lambda _message: None)
    if dataset is None:
        say(f"building golden dataset (thai × {GOLDEN_SCALE}) ...")
        dataset = golden_dataset()
    name = f"{SCHED_GOLDEN_STRATEGY}-k{SCHED_GOLDEN_CONCURRENCY}"
    say(f"recording {name} ...")
    factory = golden_strategies()[SCHED_GOLDEN_STRATEGY]
    rows = record_sched_trace(
        dataset,
        factory(),
        max_pages=max_pages,
        concurrency=SCHED_GOLDEN_CONCURRENCY,
    )
    path = directory / f"{name}.jsonl"
    header = {
        "format": _FORMAT_NAME,
        "version": _FORMAT_VERSION,
        "profile": dataset.profile.name,
        "scale": GOLDEN_SCALE,
        "strategy": SCHED_GOLDEN_STRATEGY,
        "concurrency": SCHED_GOLDEN_CONCURRENCY,
        "max_pages": max_pages,
        "pages": len(rows),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    say(f"wrote sched trace to {path}")
    return [path]


def write_golden_traces(
    directory: str | Path = GOLDEN_FIXTURE_DIR,
    dataset: Dataset | None = None,
    max_pages: int = GOLDEN_MAX_PAGES,
    progress: Callable[[str], None] | None = None,
) -> list[Path]:
    """Record and serialise the full golden matrix into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    say = progress or (lambda _message: None)
    if dataset is None:
        say(f"building golden dataset (thai × {GOLDEN_SCALE}) ...")
        dataset = golden_dataset()

    written: list[Path] = []
    for name, factory in golden_strategies().items():
        say(f"recording {name} ...")
        rows = record_golden_trace(dataset, factory(), max_pages=max_pages)
        path = directory / f"{name}.jsonl"
        header = {
            "format": _FORMAT_NAME,
            "version": _FORMAT_VERSION,
            "profile": dataset.profile.name,
            "scale": GOLDEN_SCALE,
            "strategy": name,
            "max_pages": max_pages,
            "pages": len(rows),
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        written.append(path)
    say(f"wrote {len(written)} golden traces to {directory}")
    return written


def read_golden_trace(path: str | Path) -> tuple[dict, list[dict]]:
    """Load one fixture: ``(header, rows)``.

    Raises:
        ReproError: on a missing/foreign header or unsupported version.
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ReproError(f"{path}: empty golden-trace file")
        header = json.loads(header_line)
        if header.get("format") != _FORMAT_NAME:
            raise ReproError(f"{path}: not a golden trace (format={header.get('format')!r})")
        if header.get("version") != _FORMAT_VERSION:
            raise ReproError(f"{path}: unsupported version {header.get('version')!r}")
        rows = [json.loads(line) for line in handle if line.strip()]
    return header, rows


def first_divergence(expected: list[dict], actual: list[dict]) -> str | None:
    """Human-readable description of the first trace mismatch, or None.

    The message names the step and both sides' rows — exactly what a CI
    failure needs to be actionable without re-running locally.
    """
    for index, (want, got) in enumerate(zip(expected, actual)):
        if want != got:
            return (
                f"first divergence at step {index + 1}: "
                f"expected {json.dumps(want, sort_keys=True)}, "
                f"got {json.dumps(got, sort_keys=True)}"
            )
    if len(expected) != len(actual):
        return (
            f"trace length mismatch: expected {len(expected)} fetches, "
            f"got {len(actual)} (first {min(len(expected), len(actual))} agree)"
        )
    return None

"""Plain-text rendering of tables and figure series.

Benchmarks and examples print through these helpers so every run of the
harness produces the same row/series layout the paper reports — just in
a terminal instead of gnuplot.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.metrics import MetricSeries
from repro.experiments.figures import FigureResult

#: Metric pretty-names for panel headers.
_METRIC_TITLES = {
    "harvest_rate": "Harvest Rate [%]",
    "coverage": "Coverage [%]",
    "queue_size": "URL Queue Size [URLs]",
}

_PERCENT_METRICS = {"harvest_rate", "coverage"}


def render_table(rows: Sequence[dict], title: str | None = None) -> str:
    """Render dict rows as an aligned ASCII table (insertion-order keys)."""
    if not rows:
        return f"{title}\n(empty)\n" if title else "(empty)\n"
    columns = list(rows[0].keys())
    cells = [[str(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(row[index]) for row in cells))
        for index, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)))
    return "\n".join(lines) + "\n"


def _metric_values(series: MetricSeries, metric: str) -> list[float]:
    values = getattr(series, metric)
    if metric in _PERCENT_METRICS:
        return [100.0 * value for value in values]
    return list(values)


def series_checkpoints(
    series: MetricSeries, metric: str, fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0)
) -> dict[str, float]:
    """Metric values at fractions of the total crawl length."""
    if not series.pages:
        return {}
    total = series.pages[-1]
    values = _metric_values(series, metric)
    checkpoints: dict[str, float] = {}
    for fraction in fractions:
        target = fraction * total
        chosen = values[0]
        for pages, value in zip(series.pages, values):
            if pages > target:
                break
            chosen = value
        checkpoints[f"{int(fraction * 100)}%"] = round(chosen, 2)
    return checkpoints


def render_figure(figure: FigureResult, fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 1.0)) -> str:
    """Render a figure as one checkpoint table per panel."""
    blocks = [f"Figure {figure.figure}: {figure.title} [{figure.dataset} dataset]"]
    for metric in figure.panels:
        rows = []
        for label, result in figure.results.items():
            row = {"strategy": label}
            row.update(series_checkpoints(result.series, metric, fractions))
            rows.append(row)
        blocks.append(render_table(rows, title=f"({_METRIC_TITLES[metric]}, by crawl progress)"))
    return "\n".join(blocks)


def render_ascii_chart(
    figure: FigureResult,
    metric: str,
    width: int = 72,
    height: int = 16,
) -> str:
    """A gnuplot-nostalgic ASCII line chart of one panel.

    Each strategy gets a marker character; points are max-pooled into
    character cells.  Purely cosmetic — the checkpoint tables are the
    canonical output — but it makes example scripts legible at a glance.
    """
    markers = "ox+*#@%&"
    grid = [[" "] * width for _ in range(height)]
    max_pages = max(
        (result.series.pages[-1] for result in figure.results.values() if result.series.pages),
        default=0,
    )
    all_values: list[float] = []
    for result in figure.results.values():
        all_values.extend(_metric_values(result.series, metric))
    if not all_values or max_pages == 0:
        return "(no data)\n"
    top = max(all_values) or 1.0

    for index, (label, result) in enumerate(figure.results.items()):
        marker = markers[index % len(markers)]
        series = result.series
        for pages, value in zip(series.pages, _metric_values(series, metric)):
            column = min(width - 1, int(pages / max_pages * (width - 1)))
            row = min(height - 1, int((1 - value / top) * (height - 1)))
            grid[row][column] = marker

    lines = [f"{_METRIC_TITLES[metric]} (top = {top:.1f})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width + f"> pages (max = {max_pages})")
    for index, label in enumerate(figure.results):
        lines.append(f"  {markers[index % len(markers)]} = {label}")
    return "\n".join(lines) + "\n"

"""One-command reproduction of the paper's full evaluation.

``reproduce_all()`` (CLI: ``lswc-sim reproduce``) regenerates Tables 1
and 3 and Figures 3-7, writing for each:

- the plain-text checkpoint tables (what the benchmarks print),
- JSON series,
- gnuplot .dat/.gp files (the paper's own plotting toolchain),

plus a top-level ``REPORT.md`` tying everything together.  This is the
artifact a reviewer would ask for: every number in one directory, from
one invocation, at a chosen scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.experiments import figures as figures_module
from repro.experiments.datasets import Dataset, load_or_build_dataset
from repro.experiments.export import export_figure_gnuplot, export_figure_json
from repro.experiments.figures import FigureResult
from repro.experiments.report import render_figure, render_table
from repro.experiments.tables import table1, table2, table3
from repro.graphgen.profiles import japanese_profile, thai_profile


@dataclass(frozen=True, slots=True)
class ReproductionArtifacts:
    """Where everything landed."""

    output_dir: Path
    report_path: Path
    figures: tuple[str, ...]

    def __str__(self) -> str:
        return f"reproduction written to {self.output_dir} (report: {self.report_path.name})"


def _figure_producers() -> list[tuple[str, Callable[[Dataset], FigureResult], str]]:
    """(figure id, producer, dataset name) for every paper figure."""
    return [
        ("3", figures_module.figure3, "thai"),
        ("4", figures_module.figure4, "japanese"),
        ("5", figures_module.figure5, "thai"),
        ("6", figures_module.figure6, "thai"),
        ("7", figures_module.figure7, "thai"),
    ]


def reproduce_all(
    output_dir: str | Path,
    scale: float = 0.25,
    cache: bool = True,
    progress: Callable[[str], None] | None = None,
    workers: int = 0,
) -> ReproductionArtifacts:
    """Regenerate every table and figure into ``output_dir``.

    Args:
        output_dir: destination directory (created if missing).
        scale: universe scale factor relative to the calibrated profiles.
        cache: reuse/populate the on-disk dataset cache.
        progress: optional callback receiving one-line status messages.
        workers: fan each figure's strategy sweep out to this many
            worker processes (0 = serial; outputs are identical).
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    say = progress or (lambda _message: None)

    cache_dir = "default" if cache else None
    say(f"building datasets at scale {scale} ...")
    datasets = {
        "thai": load_or_build_dataset(thai_profile().scaled(scale), cache_dir=cache_dir),
        "japanese": load_or_build_dataset(japanese_profile().scaled(scale), cache_dir=cache_dir),
    }

    sections: list[str] = []

    say("tables 1-3 ...")
    tables_text = (
        render_table(table1(), title="Table 1: Languages and their charsets")
        + "\n"
        + render_table(table2(), title="Table 2: Simple strategy semantics")
        + "\n"
        + render_table(
            table3(list(datasets.values())),
            title="Table 3: Dataset characteristics (OK pages)",
        )
    )
    (output_dir / "tables.txt").write_text(tables_text)
    sections.append("## Tables\n\n```\n" + tables_text + "```\n")

    produced: list[str] = []
    for figure_id, producer, dataset_name in _figure_producers():
        say(f"figure {figure_id} ({dataset_name} dataset) ...")
        figure = producer(datasets[dataset_name], workers=workers)
        text = render_figure(figure)
        (output_dir / f"fig{figure_id}.txt").write_text(text)
        export_figure_json(figure, output_dir / f"fig{figure_id}.json")
        export_figure_gnuplot(figure, output_dir / "gnuplot")
        sections.append(f"## Figure {figure_id}\n\n```\n{text}```\n")
        produced.append(figure_id)

    report_path = output_dir / "REPORT.md"
    header = (
        "# Reproduction report — Simulation Study of Language Specific Web Crawling\n\n"
        f"Scale factor: {scale} (Thai universe "
        f"{datasets['thai'].profile.n_pages} URLs, Japanese "
        f"{datasets['japanese'].profile.n_pages} URLs).\n\n"
        "Per-figure gnuplot data lives under `gnuplot/`; JSON series next\n"
        "to each figure's text rendering. See EXPERIMENTS.md in the\n"
        "repository for the paper-vs-measured comparison.\n\n"
    )
    report_path.write_text(header + "\n".join(sections))
    say(f"done: {report_path}")

    return ReproductionArtifacts(
        output_dir=output_dir,
        report_path=report_path,
        figures=tuple(produced),
    )


def _main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.reproduce`` entry point.

    Besides the full reproduction, this hosts the golden-trace fixture
    regeneration (``--regen-golden``) so the one sanctioned way to move
    the differential gate is an explicit, greppable command — see
    :mod:`repro.experiments.golden` and docs/architecture.md.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.reproduce",
        description="Reproduce the paper's tables and figures, or regenerate golden traces.",
    )
    parser.add_argument(
        "--regen-golden",
        nargs="?",
        const="__default__",
        default=None,
        metavar="DIR",
        help=(
            "regenerate the golden crawl-trace fixtures (default directory: "
            "tests/golden/fixtures) instead of running the reproduction"
        ),
    )
    parser.add_argument(
        "--output-dir", default="reproduction", help="reproduction output directory"
    )
    parser.add_argument(
        "--scale", type=float, default=0.25, help="universe scale factor"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="do not use the on-disk dataset cache"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="worker processes per figure sweep (0 = serial, default)",
    )
    args = parser.parse_args(argv)

    if args.regen_golden is not None:
        from repro.experiments.golden import (
            GOLDEN_FIXTURE_DIR,
            golden_dataset,
            write_golden_traces,
            write_sched_traces,
        )

        directory = (
            GOLDEN_FIXTURE_DIR if args.regen_golden == "__default__" else Path(args.regen_golden)
        )
        dataset = golden_dataset()
        write_golden_traces(directory, dataset=dataset, progress=print)
        write_sched_traces(directory / "sched", dataset=dataset, progress=print)
        return 0

    artifacts = reproduce_all(
        args.output_dir,
        scale=args.scale,
        cache=not args.no_cache,
        progress=print,
        workers=args.workers,
    )
    print(artifacts)
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())

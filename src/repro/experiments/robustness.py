"""Seed-robustness of the headline results.

Everything in this reproduction is a function of one RNG seed.  A result
that held for a single synthetic web would be weak evidence, so this
harness re-runs the headline measurements across independently seeded
universes and reports per-seed values plus mean/spread — the benchmark
asserts the paper's orderings hold for *every* seed, not on average.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

from repro.exec import SweepExecutor
from repro.experiments.datasets import build_dataset
from repro.experiments.runner import run_strategy
from repro.graphgen.config import DatasetProfile

DEFAULT_SEEDS = (11, 23, 47)


@dataclass(frozen=True, slots=True)
class SeedRun:
    """Headline measurements of one seeded universe."""

    seed: int
    dataset_pages: int
    relevance_ratio: float
    early_harvest_bfs: float
    early_harvest_hard: float
    early_harvest_soft: float
    coverage_hard: float
    coverage_soft: float
    queue_ratio_soft_over_hard: float

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "pages": self.dataset_pages,
            "ratio": round(self.relevance_ratio, 3),
            "harvE_bfs": round(self.early_harvest_bfs, 3),
            "harvE_hard": round(self.early_harvest_hard, 3),
            "harvE_soft": round(self.early_harvest_soft, 3),
            "cov_hard": round(self.coverage_hard, 3),
            "cov_soft": round(self.coverage_soft, 3),
            # inf (hard strategy never queued anything) has no JSON
            # representation — json.dump emits the invalid literal
            # `Infinity` — so serialise it as null.
            "queue_ratio": (
                round(self.queue_ratio_soft_over_hard, 2)
                if math.isfinite(self.queue_ratio_soft_over_hard)
                else None
            ),
        }


def measure_seed(profile: DatasetProfile, seed: int) -> SeedRun:
    """Build a universe with ``seed`` and take the headline measurements."""
    dataset = build_dataset(profile.with_seed(seed))
    early = max(1, len(dataset.crawl_log) // 7)

    bfs = run_strategy(dataset, "breadth-first")
    hard = run_strategy(dataset, "hard-focused")
    soft = run_strategy(dataset, "soft-focused")

    return SeedRun(
        seed=seed,
        dataset_pages=len(dataset.crawl_log),
        relevance_ratio=dataset.stats().relevance_ratio,
        early_harvest_bfs=bfs.series.harvest_at(early),
        early_harvest_hard=hard.series.harvest_at(early),
        early_harvest_soft=soft.series.harvest_at(early),
        coverage_hard=hard.final_coverage,
        coverage_soft=soft.final_coverage,
        queue_ratio_soft_over_hard=(
            soft.summary.max_queue_size / hard.summary.max_queue_size
            if hard.summary.max_queue_size
            else math.inf
        ),
    )


def seed_sweep(
    profile: DatasetProfile,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    workers: int = 0,
) -> list[SeedRun]:
    """Headline measurements for each seed.

    Seed runs are fully independent (each builds its own universe), so
    ``workers > 0`` fans them out over a
    :class:`~repro.exec.SweepExecutor` process pool;
    :func:`measure_seed` is a module-level function of picklable
    arguments, and :class:`SeedRun` rows come back in seed order either
    way.
    """
    return SweepExecutor(workers).map(functools.partial(measure_seed, profile), seeds)


def sweep_summary(runs: list[SeedRun]) -> dict[str, dict[str, float]]:
    """Mean and spread (min/max) of each headline metric over seeds."""
    metrics = {
        "relevance_ratio": [run.relevance_ratio for run in runs],
        "early_harvest_gain": [
            run.early_harvest_hard - run.early_harvest_bfs for run in runs
        ],
        "coverage_hard": [run.coverage_hard for run in runs],
        "coverage_soft": [run.coverage_soft for run in runs],
        "queue_ratio": [run.queue_ratio_soft_over_hard for run in runs],
    }
    summary: dict[str, dict[str, float]] = {}
    for name, values in metrics.items():
        summary[name] = {
            "mean": round(sum(values) / len(values), 4),
            "min": round(min(values), 4),
            "max": round(max(values), 4),
        }
    return summary

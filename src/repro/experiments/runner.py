"""Running strategies over datasets.

Thin orchestration over :class:`repro.core.simulator.Simulator` so the
figure producers, benchmarks and examples all share one code path (and
therefore one definition of "a run").
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.classifier import Classifier, ClassifierMode
from repro.core.simulator import CrawlResult, SimulationConfig, Simulator
from repro.core.strategies.base import CrawlStrategy
from repro.core.timing import TimingModel
from repro.experiments.datasets import Dataset
from repro.graphgen.htmlsynth import HtmlSynthesizer


def run_strategy(
    dataset: Dataset,
    strategy: CrawlStrategy,
    classifier_mode: ClassifierMode | str = ClassifierMode.CHARSET,
    max_pages: int | None = None,
    sample_interval: int | None = None,
    synthesize_bodies: bool = False,
    extract_from_body: bool = False,
    timing: TimingModel | None = None,
) -> CrawlResult:
    """One strategy, one dataset, one result.

    ``sample_interval`` defaults to ~200 samples over the dataset so the
    series resolution scales with dataset size.
    """
    if sample_interval is None:
        sample_interval = max(1, len(dataset.crawl_log) // 200)
    needs_bodies = synthesize_bodies or extract_from_body or (
        ClassifierMode(classifier_mode) if isinstance(classifier_mode, str) else classifier_mode
    ) in (ClassifierMode.META, ClassifierMode.DETECTOR)
    web = dataset.web(body_synthesizer=HtmlSynthesizer() if needs_bodies else None)
    simulator = Simulator(
        web=web,
        strategy=strategy,
        classifier=Classifier(dataset.target_language, mode=classifier_mode),
        seed_urls=dataset.seed_urls,
        relevant_urls=dataset.relevant_urls(),
        config=SimulationConfig(
            max_pages=max_pages,
            sample_interval=sample_interval,
            extract_from_body=extract_from_body,
        ),
        timing=timing,
    )
    return simulator.run()


def run_strategies(
    dataset: Dataset,
    strategies: Iterable[CrawlStrategy],
    **kwargs,
) -> dict[str, CrawlResult]:
    """Run several strategies under identical conditions.

    Returns results keyed by strategy name, in input order (dicts
    preserve insertion order, and the figure renderers rely on it for
    stable legends).
    """
    results: dict[str, CrawlResult] = {}
    for strategy in strategies:
        results[strategy.name] = run_strategy(dataset, strategy, **kwargs)
    return results


def summary_rows(results: dict[str, CrawlResult]) -> list[dict]:
    """Flatten results into report-friendly rows."""
    rows = []
    for name, result in results.items():
        summary = result.summary
        rows.append(
            {
                "strategy": name,
                "pages_crawled": summary.pages_crawled,
                "final_harvest_rate": round(summary.final_harvest_rate, 4),
                "final_coverage": round(summary.final_coverage, 4),
                "max_queue_size": summary.max_queue_size,
            }
        )
    return rows


def seeds_subset(seed_urls: Sequence[str], count: int) -> tuple[str, ...]:
    """The first ``count`` seeds (deterministic helper for examples)."""
    return tuple(seed_urls[:count])

"""Running strategies over datasets.

Thin orchestration over :func:`repro.api.run_crawl` so the figure
producers, benchmarks and examples all share one code path (and
therefore one definition of "a run").  ``run_strategy`` adds the
dataset-aware defaults — body synthesis when the classifier needs it, a
sample interval scaled to the dataset — and hands everything else to
the session API.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.api import run_crawl
from repro.core.classifier import Classifier, ClassifierCache, ClassifierMode
from repro.core.engine import EngineHook
from repro.core.events import FetchCallback
from repro.core.session import CrawlRequest, CrawlResult, SessionConfig
from repro.core.strategies.base import CrawlStrategy
from repro.core.strategies.registry import get_strategy
from repro.core.summary import CrawlReport
from repro.core.timing import TimingModel
from repro.errors import ConfigError
from repro.exec import DatasetSpec, RunSpec, SweepExecutor, TimingSpec
from repro.experiments.datasets import Dataset
from repro.graphgen.htmlsynth import HtmlSynthesizer
from repro.obs import Instrumentation

#: A sweep strategy reference: an instance, a registry name, or a
#: ``(name, params)`` pair — the last two forms are picklable and thus
#: the only ones a ``workers > 0`` sweep accepts.
StrategyRef = CrawlStrategy | str | tuple[str, dict]

#: ``run_strategy`` keywords a worker task spec can carry.  Everything
#: else either holds live cross-run state (web, caches, hooks,
#: callbacks) or is checkpoint plumbing — both are meaningless across a
#: process boundary, so ``workers > 0`` rejects them loudly.
_SPECABLE_KWARGS = frozenset(
    {
        "classifier_mode",
        "max_pages",
        "sample_interval",
        "extract_from_body",
        "synthesize_bodies",
        "timing_spec",
        "concurrency",
    }
)


def run_strategy(
    dataset: Dataset,
    strategy: CrawlStrategy | str,
    classifier_mode: ClassifierMode | str = ClassifierMode.CHARSET,
    max_pages: int | None = None,
    sample_interval: int | None = None,
    synthesize_bodies: bool = False,
    extract_from_body: bool = False,
    timing: TimingModel | None = None,
    concurrency: int | None = None,
    on_fetch: FetchCallback | None = None,
    instrumentation: Instrumentation | None = None,
    web=None,
    relevant_urls: frozenset[str] | None = None,
    classifier_cache: ClassifierCache | None = None,
    faults=None,
    resilience=None,
    adversary=None,
    defenses=None,
    checkpoint_every: int | None = None,
    checkpoint_path=None,
    resume_from=None,
    hooks: Sequence[EngineHook] = (),
) -> CrawlResult:
    """One strategy, one dataset, one result.

    ``strategy`` is an instance or a registered name
    (:func:`repro.core.strategies.get_strategy` resolves names).

    ``sample_interval`` defaults to ~200 samples over the dataset so the
    series resolution scales with dataset size.

    ``web``, ``relevant_urls`` and ``classifier_cache`` exist so
    :func:`run_strategies` can share run-invariant state across a sweep
    — a prebuilt virtual web space (with its body-synthesis cache warm),
    the recall denominator set, and the memoised classifier judgments.
    Each defaults to per-run construction.
    """
    if isinstance(strategy, str):
        strategy = get_strategy(strategy)
    if sample_interval is None:
        sample_interval = max(1, len(dataset.crawl_log) // 200)
    if web is None:
        needs_bodies = synthesize_bodies or extract_from_body or (
            ClassifierMode(classifier_mode) if isinstance(classifier_mode, str) else classifier_mode
        ) in (ClassifierMode.META, ClassifierMode.DETECTOR)
        web = dataset.web(body_synthesizer=HtmlSynthesizer() if needs_bodies else None)
    if relevant_urls is None:
        relevant_urls = dataset.relevant_urls()
    return run_crawl(
        CrawlRequest(
            strategy=strategy,
            web=web,
            classifier=Classifier(
                dataset.target_language, mode=classifier_mode, cache=classifier_cache
            ),
            seeds=tuple(dataset.seed_urls),
            relevant_urls=relevant_urls,
        ),
        config=SessionConfig(
            max_pages=max_pages,
            sample_interval=sample_interval,
            extract_from_body=extract_from_body,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            timing=timing,
            concurrency=concurrency,
            on_fetch=on_fetch,
            instrumentation=instrumentation,
            faults=faults,
            resilience=resilience,
            adversary=adversary,
            defenses=defenses,
            resume_from=resume_from,
            hooks=tuple(hooks),
        ),
    )


def run_strategies(
    dataset: Dataset,
    strategies: Iterable[StrategyRef],
    workers: int = 0,
    **kwargs,
) -> dict[str, CrawlResult]:
    """Run several strategies under identical conditions.

    Returns results keyed by strategy name, in input order (dicts
    preserve insertion order, and the figure renderers rely on it for
    stable legends).

    Sweep-invariant state is built once and shared by every run: the
    virtual web space (a replayed log never changes between strategies),
    the relevant-URL denominator set, and one
    :class:`~repro.core.classifier.ClassifierCache` — the same bytes are
    classified by every strategy in the sweep, so all runs after the
    first judge almost entirely from cache.  Callers can still override
    any of the three through ``kwargs``.

    ``workers > 0`` fans the runs out over a
    :class:`~repro.exec.SweepExecutor` process pool: each strategy must
    then be a registry name (or ``(name, params)`` pair) and ``kwargs``
    restricted to picklable run parameters; per-worker rebuilds of the
    sweep-invariant state replace the in-process sharing, and results
    are byte-identical to ``workers=0`` (pinned by
    ``tests/test_exec_sweep.py``).
    """
    if "timing_spec" in kwargs and kwargs.get("timing") is not None:
        raise ConfigError("pass timing_spec= or timing=, not both")
    if workers:
        return _run_strategies_workers(dataset, strategies, workers, kwargs)
    timing_spec = kwargs.pop("timing_spec", None)
    if timing_spec is not None and not isinstance(timing_spec, TimingSpec):
        raise ConfigError(
            f"timing_spec= needs a repro.exec.TimingSpec, got {type(timing_spec).__name__}"
        )
    kwargs.setdefault("relevant_urls", dataset.relevant_urls())
    kwargs.setdefault("classifier_cache", ClassifierCache())
    if "web" not in kwargs:
        classifier_mode = kwargs.get("classifier_mode", ClassifierMode.CHARSET)
        needs_bodies = (
            kwargs.get("synthesize_bodies", False)
            or kwargs.get("extract_from_body", False)
            or (
                ClassifierMode(classifier_mode)
                if isinstance(classifier_mode, str)
                else classifier_mode
            )
            in (ClassifierMode.META, ClassifierMode.DETECTOR)
        )
        kwargs["web"] = dataset.web(
            body_synthesizer=HtmlSynthesizer() if needs_bodies else None
        )
    results: dict[str, CrawlResult] = {}
    for strategy in strategies:
        strategy = _resolve_strategy(strategy)
        if timing_spec is not None:
            # The clock is per-run mutable state: every run of the sweep
            # gets a fresh model, exactly as a worker process would.
            kwargs["timing"] = timing_spec.build()
        results[strategy.name] = run_strategy(dataset, strategy, **kwargs)
    return results


def _resolve_strategy(strategy: StrategyRef) -> CrawlStrategy:
    if isinstance(strategy, tuple):
        name, params = strategy
        return get_strategy(name, **params)
    if isinstance(strategy, str):
        return get_strategy(strategy)
    return strategy


def _run_strategies_workers(
    dataset: Dataset,
    strategies: Iterable[StrategyRef],
    workers: int,
    kwargs: dict,
) -> dict[str, CrawlResult]:
    unsupported = sorted(set(kwargs) - _SPECABLE_KWARGS)
    if unsupported:
        raise ConfigError(
            f"run_strategies(workers={workers}) cannot ship {', '.join(unsupported)} "
            "to worker processes; supported sweep keywords are "
            f"{', '.join(sorted(_SPECABLE_KWARGS))} — pass workers=0 for the rest"
        )
    classifier_mode = kwargs.get("classifier_mode", ClassifierMode.CHARSET)
    mode = (
        ClassifierMode(classifier_mode)
        if isinstance(classifier_mode, str)
        else classifier_mode
    )
    timing_spec = kwargs.get("timing_spec")
    if timing_spec is not None and not isinstance(timing_spec, TimingSpec):
        raise ConfigError(
            f"timing_spec= needs a repro.exec.TimingSpec, got {type(timing_spec).__name__}"
        )
    dataset_spec = DatasetSpec.from_dataset(dataset)
    names: list[str] = []
    specs: list[RunSpec] = []
    for strategy in strategies:
        if isinstance(strategy, tuple):
            name, params = strategy
        elif isinstance(strategy, str):
            name, params = strategy, {}
        else:
            raise ConfigError(
                "a workers>0 sweep needs registry-name strategies (a name or "
                f"(name, params) pair), got instance {strategy!r} — strategy "
                "objects hold run state and do not cross process boundaries"
            )
        # Constructing driver-side both fails fast on bad names/params
        # and yields the result key (e.g. "limited-distance(n=2)").
        names.append(get_strategy(name, **params).name)
        specs.append(
            RunSpec(
                dataset=dataset_spec,
                strategy=name,
                params=tuple(sorted(params.items())),
                classifier_mode=mode.value,
                max_pages=kwargs.get("max_pages"),
                sample_interval=kwargs.get("sample_interval"),
                extract_from_body=kwargs.get("extract_from_body", False),
                synthesize_bodies=kwargs.get("synthesize_bodies", False),
                timing=timing_spec,
                concurrency=kwargs.get("concurrency"),
            )
        )
    results = SweepExecutor(workers).run(specs)
    return dict(zip(names, results))


def summary_rows(results: dict[str, CrawlReport]) -> list[dict]:
    """Flatten results into report-friendly rows.

    Works on anything satisfying the
    :class:`~repro.core.summary.CrawlReport` protocol — sequential
    :class:`CrawlResult` and partitioned ``ParallelResult`` alike, with
    no isinstance dispatch: each result renders its own ``to_dict()``.
    """
    rows = []
    for name, result in results.items():
        row = {"strategy": name}
        for key, value in result.to_dict().items():
            row[key] = round(value, 4) if isinstance(value, float) else value
        rows.append(row)
    return rows


def seeds_subset(seed_urls: Sequence[str], count: int) -> tuple[str, ...]:
    """The first ``count`` seeds (deterministic helper for examples)."""
    return tuple(seed_urls[:count])

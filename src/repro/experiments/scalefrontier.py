"""Scale-frontier sweep: out-of-core vs in-memory web spaces.

The tentpole claim of the columnar page store
(:mod:`repro.webspace.store`) is twofold:

1. **Identity** — a budgeted crawl over a store-backed dataset reports
   byte-identically to the same crawl over the in-memory
   :class:`~repro.webspace.crawllog.CrawlLog` backend (same
   :func:`~repro.core.session.report_payload`, compared by sha256).
2. **Footprint** — peak RSS of the store-backed crawl stays flat as the
   web grows, while the in-memory backend grows linearly with page
   count; at 10⁶ pages the store process must hold **≤ 25%** of the
   in-memory backend's extrapolated footprint.

Every measurement point runs in a **subprocess** (``--point`` child
mode) so ``getrusage(RUSAGE_SELF).ru_maxrss`` measures exactly one
backend at one scale, uncontaminated by the driver's own allocations.
Store *builds* are fanned out the same way (``--build`` children):
``ru_maxrss`` of a forked child starts at the parent's resident set, so
a driver that built a 10⁶-page store in-process would hand every later
crawl child a multi-hundred-MB floor.
The in-memory footprint at 10⁶ pages is never measured directly (that
is the web you cannot hold); it is extrapolated by a least-squares
linear fit of the measured in-memory points over ``n_pages``.

CI runs the small smoke (``--scales 1.0``) with the digest-equality
gate; ``benchmarks/bench_scale_frontier.py`` runs the full ladder plus
the million-page point and writes
``benchmarks/results/BENCH_scale_frontier.json``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.session import CrawlRequest, CrawlSession, SessionConfig, report_payload
from repro.core.spilling import SpillConfig
from repro.errors import SimulationError
from repro.graphgen.profiles import profile_by_name
from repro.urlkit.normalize import clear_url_caches

__all__ = [
    "DEFAULT_SCALES",
    "MILLION_PAGES",
    "MAX_RSS_RATIO",
    "run_build",
    "run_point",
    "scale_frontier_sweep",
]

#: The measured ladder: in-memory points the linear RSS fit runs over.
DEFAULT_SCALES: tuple[float, ...] = (0.25, 0.5, 1.0)

#: Page count of the out-of-core headline point (thai scaled 50/7:
#: 140 000 × 50/7 = 1 000 000 exactly).
MILLION_PAGES = 1_000_000

#: The acceptance bar: store-backed peak RSS at the million-page point,
#: as a fraction of the in-memory backend's extrapolated footprint.
MAX_RSS_RATIO = 0.25


def _report_digest(result) -> str:
    """sha256 of the run's deterministic report payload."""
    canonical = json.dumps(report_payload(result), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def run_point(spec: dict) -> dict:
    """Run one (backend, scale) measurement in *this* process.

    Meant to be the body of a ``--point`` subprocess: peak RSS of the
    current process is the measurement, so the caller must not have
    built any dataset before invoking this.
    """
    profile = profile_by_name(spec["profile"], seed=spec.get("seed"))
    scale = float(spec.get("scale", 1.0))
    if scale != 1.0:
        profile = profile.scaled(scale)

    backend = spec["backend"]
    if backend == "store":
        from repro.experiments.datasets import open_dataset_store

        dataset = open_dataset_store(spec["store_path"])
    elif backend == "memory":
        from repro.experiments.ablations import universe_dataset

        dataset = universe_dataset(profile)
    else:
        raise SimulationError(f"unknown scale-frontier backend {backend!r}")

    spill_limit = spec.get("spill_limit")
    session = CrawlSession(
        CrawlRequest(strategy=spec["strategy"], dataset=dataset),
        SessionConfig(
            max_pages=spec["max_pages"],
            sample_interval=spec["sample_interval"],
            spill=SpillConfig(memory_limit=spill_limit) if spill_limit else None,
        ),
    )
    # Open first: dataset resolution (recall denominator, seeds) is
    # setup, not crawl throughput.
    session.open()
    # Out-of-core hygiene between batches: drop the store's resident
    # file pages and the bounded URL caches, so peak RSS tracks one
    # batch of work instead of accumulating the whole crawl.  Results
    # are unaffected — both are caches.
    release = getattr(dataset.crawl_log, "release_page_cache", None)
    started = time.perf_counter()
    spill_stats = None
    try:
        while not session.done:
            session.step(2_500)
            if release is not None:
                release()
                clear_url_caches()
        wall_s = time.perf_counter() - started
        result = session.report()
        strategy = session._strategy
        if spill_limit and hasattr(strategy, "last_stats"):
            stats = strategy.last_stats
            if stats is not None:
                spill_stats = {
                    "spilled": stats.spilled,
                    "reloaded": stats.reloaded,
                    "peak_resident": stats.peak_resident,
                    "peak_total": stats.peak_total,
                }
    finally:
        session.close()
    closer = getattr(dataset.crawl_log, "close", None)
    if closer is not None:
        closer()

    return {
        "backend": backend,
        "scale": scale,
        "n_pages": profile.n_pages,
        "pages_crawled": result.pages_crawled,
        "wall_s": round(wall_s, 4),
        "pages_per_s": round(result.pages_crawled / wall_s, 2) if wall_s > 0 else None,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "coverage": round(result.summary.final_coverage, 6),
        "harvest_rate": round(result.summary.final_harvest_rate, 6),
        "digest": _report_digest(result),
        "spill": spill_stats,
    }


def _run_child(flag: str, spec: dict, what: str) -> dict:
    """Fan one child job out to a fresh interpreter and parse its JSON."""
    command = [sys.executable, "-m", "repro.experiments.scalefrontier", flag, json.dumps(spec)]
    completed = subprocess.run(
        command, capture_output=True, text=True, env=os.environ.copy()
    )
    if completed.returncode != 0:
        raise SimulationError(
            f"scale-frontier {what} failed: {completed.stderr.strip()[-2000:]}"
        )
    # The child prints exactly one JSON object on its last stdout line.
    return json.loads(completed.stdout.strip().splitlines()[-1])


def _run_point_subprocess(spec: dict) -> dict:
    return _run_child("--point", spec, f"point {spec['backend']}@{spec.get('scale')}")


def run_build(spec: dict) -> dict:
    """Stream one universe store to disk in *this* process, timed.

    Body of a ``--build`` subprocess: the columnar writer's working set
    (hundreds of MB at 10⁶ pages) must not land in the sweep driver —
    a subprocess forked from a fat driver inherits its resident set as
    the ``ru_maxrss`` floor, which would poison every crawl measurement
    that follows.
    """
    from repro.experiments.datasets import build_dataset_store

    profile = profile_by_name(spec["profile"], seed=spec.get("seed"))
    scale = float(spec.get("scale", 1.0))
    if scale != 1.0:
        profile = profile.scaled(scale)
    path = Path(spec["store_path"])
    started = time.perf_counter()
    build_dataset_store(profile, path, capture_kind="none")
    build_s = time.perf_counter() - started
    size = path.stat().st_size
    return {
        "n_pages": profile.n_pages,
        "build_s": round(build_s, 4),
        "store_bytes": size,
        "pages_per_s": round(profile.n_pages / build_s, 2) if build_s > 0 else None,
    }


def _build_store(profile_name: str, scale: float, path: Path, seed: int | None) -> dict:
    """Stream one universe store to disk in a subprocess, timed."""
    spec = {"profile": profile_name, "scale": scale, "seed": seed, "store_path": str(path)}
    return _run_child("--build", spec, f"build {profile_name}@{scale:g}")


def scale_frontier_sweep(
    scales: tuple[float, ...] = DEFAULT_SCALES,
    max_pages: int = 1500,
    strategy: str = "soft-focused",
    profile: str = "thai",
    seed: int | None = None,
    million: bool = False,
    million_max_pages: int = 50_000,
    spill_limit: int = 50_000,
    workdir: str | Path | None = None,
    progress=None,
) -> dict:
    """The sweep: per-scale backend pairs, optional million-page point.

    Every scale row runs the same budgeted crawl on both backends (each
    in its own subprocess) and requires **digest equality** — the same
    byte-identity bar the golden fixtures hold, applied at scales the
    fixtures never reach.  With ``million=True`` a 10⁶-page universe
    store is built and crawled (store backend only, spilling frontier),
    and the in-memory footprint at 10⁶ pages is extrapolated from the
    measured scale rows to evaluate :data:`MAX_RSS_RATIO`.
    """

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="lswc-scalefrontier-")
        workdir = tmp.name
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    sample_interval = 1_000_000  # one final sample; series stays tiny
    rows = []
    try:
        for scale in scales:
            store_path = workdir / f"{profile}-x{scale:g}.lswc"
            note(f"building {profile} store at scale {scale:g} ...")
            build = _build_store(profile, scale, store_path, seed)
            base = {
                "profile": profile,
                "scale": scale,
                "seed": seed,
                "strategy": strategy,
                "max_pages": max_pages,
                "sample_interval": sample_interval,
            }
            note(f"crawling scale {scale:g} on the store backend ...")
            store_point = _run_point_subprocess(
                {**base, "backend": "store", "store_path": str(store_path)}
            )
            note(f"crawling scale {scale:g} on the in-memory backend ...")
            memory_point = _run_point_subprocess({**base, "backend": "memory"})
            digests_equal = store_point["digest"] == memory_point["digest"]
            rows.append(
                {
                    "scale": scale,
                    "n_pages": build["n_pages"],
                    "store_build": build,
                    "store": store_point,
                    "memory": memory_point,
                    "digests_equal": digests_equal,
                }
            )
            store_path.unlink(missing_ok=True)
            if not digests_equal:
                raise SimulationError(
                    f"backend divergence at scale {scale:g}: store digest "
                    f"{store_point['digest']} != memory digest {memory_point['digest']}"
                )

        fit = None
        if len(rows) >= 2:
            # Least-squares RSS(n_pages) over the measured in-memory points.
            xs = [row["n_pages"] for row in rows]
            ys = [row["memory"]["ru_maxrss_kb"] for row in rows]
            n = len(xs)
            mean_x = sum(xs) / n
            mean_y = sum(ys) / n
            denom = sum((x - mean_x) ** 2 for x in xs)
            slope = (
                sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denom
                if denom > 0
                else 0.0
            )
            intercept = mean_y - slope * mean_x
            fit = {
                "slope_kb_per_page": round(slope, 6),
                "intercept_kb": round(intercept, 2),
                "points": [[x, y] for x, y in zip(xs, ys)],
            }

        million_row = None
        rss_gate = None
        if million:
            if fit is None:
                raise SimulationError(
                    "the million-page point needs >= 2 scale rows to extrapolate "
                    "the in-memory footprint"
                )
            million_scale = MILLION_PAGES / profile_by_name(profile).n_pages
            store_path = workdir / f"{profile}-million.lswc"
            note(f"building the {MILLION_PAGES:,}-page store ...")
            build = _build_store(profile, million_scale, store_path, seed)
            if build["n_pages"] != MILLION_PAGES:
                raise SimulationError(
                    f"million-point scaling produced {build['n_pages']} pages, "
                    f"expected {MILLION_PAGES}"
                )
            note(f"crawling the {MILLION_PAGES:,}-page store ...")
            store_point = _run_point_subprocess(
                {
                    "profile": profile,
                    "scale": million_scale,
                    "seed": seed,
                    "strategy": strategy,
                    "max_pages": million_max_pages,
                    "sample_interval": sample_interval,
                    "backend": "store",
                    "store_path": str(store_path),
                    "spill_limit": spill_limit,
                }
            )
            store_path.unlink(missing_ok=True)
            extrapolated = fit["intercept_kb"] + fit["slope_kb_per_page"] * MILLION_PAGES
            ratio = store_point["ru_maxrss_kb"] / extrapolated if extrapolated > 0 else None
            million_row = {
                "n_pages": MILLION_PAGES,
                "store_build": build,
                "store": store_point,
            }
            rss_gate = {
                "store_rss_kb": store_point["ru_maxrss_kb"],
                "extrapolated_memory_rss_kb": round(extrapolated, 2),
                "ratio": round(ratio, 4) if ratio is not None else None,
                "max_ratio": MAX_RSS_RATIO,
                "pass": ratio is not None and ratio <= MAX_RSS_RATIO,
            }
    finally:
        if tmp is not None:
            tmp.cleanup()

    payload = {
        "experiment": "scale-frontier",
        "profile": profile,
        "strategy": strategy,
        "max_pages": max_pages,
        "scales": list(scales),
        "rows": rows,
        "memory_fit": fit,
        "million": million_row,
        "rss_gate": rss_gate,
    }
    # The determinism digest covers only the crawls' report digests —
    # wall seconds and RSS vary run to run, the reports must not.
    crawl_digests = {str(row["scale"]): row["store"]["digest"] for row in rows}
    if million_row is not None:
        crawl_digests["million"] = million_row["store"]["digest"]
    payload["digest_sha256"] = hashlib.sha256(
        json.dumps(crawl_digests, sort_keys=True).encode()
    ).hexdigest()
    return payload


def _parse_scales(text: str) -> tuple[float, ...]:
    try:
        scales = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"--scales needs comma-separated floats, got {text!r}")
    if not scales:
        raise argparse.ArgumentTypeError("--scales needs at least one float")
    return scales


def _main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.scalefrontier",
        description="Out-of-core vs in-memory crawl backends: identity + footprint sweep",
    )
    parser.add_argument(
        "--point",
        default=None,
        help=argparse.SUPPRESS,  # child mode: JSON spec of one measurement
    )
    parser.add_argument(
        "--build",
        default=None,
        help=argparse.SUPPRESS,  # child mode: JSON spec of one store build
    )
    parser.add_argument(
        "--scales", type=_parse_scales, default=DEFAULT_SCALES,
        help="comma-separated universe scale factors (default 0.25,0.5,1.0)",
    )
    parser.add_argument("--max-pages", type=int, default=1500, help="crawl budget per point")
    parser.add_argument("--strategy", default="soft-focused", help="strategy registry name")
    parser.add_argument("--seed", type=int, default=None, help="override the profile seed")
    parser.add_argument(
        "--million", action="store_true",
        help=f"add the {MILLION_PAGES:,}-page out-of-core point with the RSS gate",
    )
    parser.add_argument(
        "--million-pages", type=int, default=50_000,
        help="crawl budget of the million-page point (default 50000)",
    )
    parser.add_argument(
        "--spill-limit", type=int, default=50_000,
        help="spilling-frontier resident cap for the million-page point",
    )
    parser.add_argument("--workdir", default=None, help="keep store files here (default: temp)")
    parser.add_argument("--output", default=None, help="write the JSON payload here")
    args = parser.parse_args(argv)

    if args.point is not None:
        print(json.dumps(run_point(json.loads(args.point)), sort_keys=True))
        return 0
    if args.build is not None:
        print(json.dumps(run_build(json.loads(args.build)), sort_keys=True))
        return 0

    payload = scale_frontier_sweep(
        scales=args.scales,
        max_pages=args.max_pages,
        strategy=args.strategy,
        seed=args.seed,
        million=args.million,
        million_max_pages=args.million_pages,
        spill_limit=args.spill_limit,
        workdir=args.workdir,
        progress=lambda message: print(message, file=sys.stderr),
    )
    rendered = json.dumps(payload, indent=2, sort_keys=True)
    if args.output is not None:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(rendered + "\n")
        print(f"wrote {output}")
    else:
        print(rendered)
    if payload["rss_gate"] is not None and not payload["rss_gate"]["pass"]:
        print(
            f"RSS gate FAILED: store {payload['rss_gate']['store_rss_kb']} KB > "
            f"{MAX_RSS_RATIO:.0%} of extrapolated "
            f"{payload['rss_gate']['extrapolated_memory_rss_kb']} KB",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())

"""Producers for the paper's tables.

- Table 1: languages and their corresponding character encoding schemes.
- Table 2: the simple strategy's mode/referrer behaviour matrix.
- Table 3: characteristics of the experimental datasets.
"""

from __future__ import annotations

from repro.charset.languages import Language, charsets_for_language
from repro.experiments.datasets import Dataset


def table1() -> list[dict]:
    """Languages and their corresponding character encoding schemes."""
    return [
        {
            "language": language.value,
            "charsets": ", ".join(charsets_for_language(language)),
        }
        for language in (Language.JAPANESE, Language.THAI)
    ]


def table2() -> list[dict]:
    """The simple strategy behaviour matrix (paper Table 2).

    This is a statement of semantics, not a measurement; the unit tests
    of :mod:`repro.core.strategies.simple` assert every cell against the
    implementation.
    """
    return [
        {
            "mode": "hard-focused",
            "relevant_referrer": "add extracted links to URL queue",
            "irrelevant_referrer": "discard extracted links",
        },
        {
            "mode": "soft-focused",
            "relevant_referrer": "add extracted links to URL queue with high priority values",
            "irrelevant_referrer": "add extracted links to URL queue with low priority values",
        },
    ]


def table3(datasets: list[Dataset]) -> list[dict]:
    """Characteristics of the experimental datasets (OK pages only)."""
    rows = []
    for dataset in datasets:
        stats = dataset.stats()
        rows.append(
            {
                "dataset": dataset.name,
                "relevant_html_pages": stats.relevant_html_pages,
                "irrelevant_html_pages": stats.irrelevant_html_pages,
                "total_html_pages": stats.total_html_pages,
                "relevance_ratio": round(stats.relevance_ratio, 3),
                "total_urls": stats.total_urls,
            }
        )
    return rows

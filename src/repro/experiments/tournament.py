"""Strategy tournament: the full zoo on cue-annotated Thai webs.

Every registered ordering — the paper's §3.3 strategies, the combined
capture strategies, and the content+link hybrids that read anchor-text
link context — crawls the *same* captured Thai datasets under the same
page budget, and the summary ranks them on the Fig. 3 axes: final
harvest rate first, final coverage as the tie-breaker.

The web is the standard Thai profile with link-context cues switched on
(:data:`CUE_ANCHOR_PROBABILITY` / :data:`CUE_AROUND_PROBABILITY`): a cue
annotates a link whose *target* is a Thai page with Thai anchor or
surrounding text, which is the signal the context-aware strategies
(``pdd-hybrid``, ``pal-content-link``, ``infospiders``) buy their edge
with.  Context-blind strategies run unchanged on the same datasets — the
cue column changes nothing they can observe — so the comparison is at
strictly equal budget on an identical web.

The grid is strategies × scales × seeds; seeds re-roll the generated
universe (``profile.with_seed``), so a strategy has to win on several
independent webs, not one lucky layout.  Cells are independent runs
fanned out through :class:`~repro.exec.SweepExecutor`, so ``workers=N``
is byte-identical to serial by the executor's contract — the payload
digest is the determinism witness.

``benchmarks/bench_strategy_tournament.py`` renders and gates the
payload; CI runs the small ``python -m repro.experiments.tournament``
smoke with a digest-equality determinism check.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.exec import DatasetSpec, RunSpec, SweepExecutor
from repro.experiments.concurrency import sweep_digest
from repro.experiments.datasets import load_or_build_dataset
from repro.graphgen.config import DatasetProfile
from repro.graphgen.profiles import thai_profile

__all__ = [
    "CUE_ANCHOR_PROBABILITY",
    "CUE_AROUND_PROBABILITY",
    "DEFAULT_SEEDS",
    "FULL_ZOO",
    "cued_thai_profile",
    "ranking_summary",
    "tournament_sweep",
]

#: Cue rates for the tournament web.  Anchors cue often (a link to a
#: Thai page usually *says so* in its anchor), surrounding text less so
#: — high enough that textual-cue strategies have signal to read, low
#: enough that cue-blind orderings are not artificially starved.
CUE_ANCHOR_PROBABILITY = 0.7
CUE_AROUND_PROBABILITY = 0.4

#: Every registered strategy, baselines first.  ``limited-distance``
#: and the combined capture strategies run with their registered
#: defaults (n=3); the context-aware family defaults to Thai, matching
#: the tournament web.
FULL_ZOO: tuple[str, ...] = (
    "breadth-first",
    "soft-focused",
    "hard-focused",
    "limited-distance",
    "distilled-soft",
    "backlink-count",
    "hard+limited",
    "soft+limited",
    "pdd-hybrid",
    "pal-content-link",
    "infospiders",
)

#: Universe seeds per (strategy, scale) cell.  Each seed regenerates
#: the web from scratch; two keep the ranking honest about layout luck
#: without doubling CI cost for every extra seed.
DEFAULT_SEEDS: tuple[int, ...] = (20050304, 7)


def cued_thai_profile(scale: float, seed: int | None = None) -> DatasetProfile:
    """The standard Thai profile at ``scale`` with link cues enabled.

    The cue probabilities change the profile fingerprint (a cued
    dataset caches separately from the plain one) but not the generated
    graph, language or charset columns — only the extra ``link_cues``
    column and the anchor text rendered from it.
    """
    profile = thai_profile().scaled(scale)
    if seed is not None:
        profile = profile.with_seed(seed)
    return replace(
        profile,
        name=f"{profile.name}-cued",
        anchor_cue_probability=CUE_ANCHOR_PROBABILITY,
        around_cue_probability=CUE_AROUND_PROBABILITY,
    )


def tournament_sweep(
    strategies: tuple[str, ...] = FULL_ZOO,
    scales: tuple[float, ...] = (0.02,),
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    max_pages: int | None = 1100,
    workers: int = 0,
) -> dict:
    """Run the (strategy × scale × seed) grid and rank the zoo.

    Datasets are built (or read from the disk cache) driver-side once
    per (scale, seed) so a cold cache pays each capture crawl exactly
    once; workers then rehydrate them through the shared
    :class:`~repro.exec.DatasetSpec` cache.
    """
    dataset_specs: dict[tuple[float, int], DatasetSpec] = {}
    dataset_pages: dict[tuple[float, int], int] = {}
    for scale in scales:
        for seed in seeds:
            dataset = load_or_build_dataset(cued_thai_profile(scale, seed))
            dataset_specs[(scale, seed)] = DatasetSpec.from_dataset(dataset)
            dataset_pages[(scale, seed)] = len(dataset.crawl_log)

    cells: list[tuple[str, float, int]] = [
        (strategy, scale, seed)
        for strategy in strategies
        for scale in scales
        for seed in seeds
    ]
    specs = [
        RunSpec(
            dataset=dataset_specs[(scale, seed)],
            strategy=strategy,
            max_pages=max_pages,
        )
        for strategy, scale, seed in cells
    ]
    results = SweepExecutor(workers).run(specs)

    rows = []
    for (strategy, scale, seed), result in zip(cells, results):
        rows.append(
            {
                "strategy": strategy,
                "label": result.strategy,
                "scale": scale,
                "seed": seed,
                "dataset_pages": dataset_pages[(scale, seed)],
                "pages": result.pages_crawled,
                "harvest_rate": round(result.summary.final_harvest_rate, 6),
                "coverage": round(result.summary.final_coverage, 6),
                "frontier_peak": result.frontier_peak,
            }
        )

    payload = {
        "experiment": "strategy-tournament",
        "profile": "thai-cued",
        "anchor_cue_probability": CUE_ANCHOR_PROBABILITY,
        "around_cue_probability": CUE_AROUND_PROBABILITY,
        "strategies": list(strategies),
        "scales": list(scales),
        "seeds": list(seeds),
        "max_pages": max_pages,
        "rows": rows,
        "summary": ranking_summary(rows),
    }
    payload["digest_sha256"] = sweep_digest(payload)
    return payload


def ranking_summary(rows: list[dict]) -> list[dict]:
    """The zoo ranked by mean harvest rate, coverage breaking ties.

    Means are over every (scale, seed) cell of a strategy, so the
    ranking rewards consistency across webs, not a single good draw.
    Rounding happens *before* the sort: two strategies equal to 6
    decimals rank by coverage, not by float noise.
    """
    by_strategy: dict[str, list[dict]] = {}
    for row in rows:
        by_strategy.setdefault(row["strategy"], []).append(row)

    entries = []
    for strategy, cells in by_strategy.items():
        entries.append(
            {
                "strategy": strategy,
                "mean_harvest_rate": round(
                    sum(cell["harvest_rate"] for cell in cells) / len(cells), 6
                ),
                "mean_coverage": round(
                    sum(cell["coverage"] for cell in cells) / len(cells), 6
                ),
                "runs": len(cells),
            }
        )
    entries.sort(
        key=lambda entry: (-entry["mean_harvest_rate"], -entry["mean_coverage"], entry["strategy"])
    )
    for rank, entry in enumerate(entries, start=1):
        entry["rank"] = rank
    return entries


def _parse_names(text: str) -> tuple[str, ...]:
    names = tuple(part.strip() for part in text.split(",") if part.strip())
    if not names:
        raise argparse.ArgumentTypeError("--strategies needs at least one name")
    return names


def _parse_scales(text: str) -> tuple[float, ...]:
    try:
        scales = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"--scales needs comma-separated floats, got {text!r}")
    if not scales:
        raise argparse.ArgumentTypeError("--scales needs at least one float")
    return scales


def _parse_seeds(text: str) -> tuple[int, ...]:
    try:
        seeds = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"--seeds needs comma-separated integers, got {text!r}")
    if not seeds:
        raise argparse.ArgumentTypeError("--seeds needs at least one integer")
    return seeds


def _main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.tournament",
        description="Strategy tournament: the full zoo on cue-annotated Thai webs",
    )
    parser.add_argument(
        "--strategies",
        type=_parse_names,
        default=FULL_ZOO,
        help="comma-separated strategy registry names (default: the full zoo)",
    )
    parser.add_argument(
        "--scales", type=_parse_scales, default=(0.02,), help="universe scale factors"
    )
    parser.add_argument(
        "--seeds", type=_parse_seeds, default=DEFAULT_SEEDS, help="universe seeds per cell"
    )
    parser.add_argument("--max-pages", type=int, default=1100, help="page cap per run")
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N", help="sweep worker processes"
    )
    parser.add_argument("--output", default=None, help="write the JSON payload here")
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run the sweep twice (second pass serial) and require digest equality",
    )
    args = parser.parse_args(argv)

    payload = tournament_sweep(
        strategies=args.strategies,
        scales=args.scales,
        seeds=args.seeds,
        max_pages=args.max_pages,
        workers=args.workers,
    )
    if args.check_determinism:
        again = tournament_sweep(
            strategies=args.strategies,
            scales=args.scales,
            seeds=args.seeds,
            max_pages=args.max_pages,
            workers=0,
        )
        if again["digest_sha256"] != payload["digest_sha256"]:
            print(
                "determinism check FAILED: "
                f"workers={args.workers} digest {payload['digest_sha256']} != "
                f"serial digest {again['digest_sha256']}",
                file=sys.stderr,
            )
            return 1
        print(f"determinism check ok: {payload['digest_sha256']}")

    rendered = json.dumps(payload, indent=2, sort_keys=True)
    if args.output is not None:
        output = Path(args.output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(rendered + "\n")
        print(f"wrote {output}")
    else:
        for line in payload["summary"]:
            print(json.dumps(line, sort_keys=True))
        print(f"digest: {payload['digest_sha256']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())

"""Fault injection and the resilient fetch pipeline.

- :mod:`~repro.faults.model` — :class:`FaultProfile`/:class:`FaultModel`
  (seeded, hash-deterministic fault decisions) and
  :class:`FaultyWebSpace`, the injecting wrapper over the virtual web.
- :mod:`~repro.faults.resilience` — retry/backoff, per-host circuit
  breakers and capped requeue policies, plus the breaker state machine.

The clean path is sacred: with no fault model configured the simulator
never constructs any of this, and the golden-trace suite pins that the
resilience layer is a true no-op (byte-identical fetch orderings).
"""

from repro.faults.model import (
    RETRYABLE_FAULTS,
    FaultModel,
    FaultProfile,
    FaultyWebSpace,
    HostOutage,
    load_fault_model,
)
from repro.faults.resilience import (
    BreakerPolicy,
    HostBreakers,
    ResilienceConfig,
    ResilienceStats,
    RetryPolicy,
)

__all__ = [
    "FaultProfile",
    "FaultModel",
    "FaultyWebSpace",
    "HostOutage",
    "RETRYABLE_FAULTS",
    "load_fault_model",
    "RetryPolicy",
    "BreakerPolicy",
    "ResilienceConfig",
    "ResilienceStats",
    "HostBreakers",
]

"""Deterministic fault injection over the virtual web space.

The paper's simulator assumes every fetch succeeds, but the workload it
models — national-scale archiving crawls running for weeks — spends a
meaningful fraction of its requests on hosts that throw transient 5xx
errors, time out, truncate responses mid-body, or disappear entirely.
This module injects those failure modes as a *wrapping layer* over
:class:`~repro.webspace.virtualweb.VirtualWebSpace`, so every engine and
experiment sees faults through the same unmodified ``fetch`` interface.

Determinism is the design constraint: the same seed and the same fault
profile must produce the *identical* fault sequence on every run and
survive checkpoint/resume.  All randomness is therefore derived from
keyed hashes of stable tokens (URL, host, attempt number) — there is no
mutable RNG stream to serialise; the only injection state is the
per-URL attempt counter and the global fetch index, both plain dicts
that the checkpoint layer snapshots.

Fault kinds (checked in precedence order):

``outage``
    The URL's host is inside a scheduled :class:`HostOutage` window
    (measured in global fetch index) — the whole host answers 521.
``timeout``
    This *attempt* hangs and is abandoned (status 408).  Timeout draws
    are per-(URL, attempt), so a retry of a timed-out fetch may succeed.
``transient``
    The URL is transiently broken (status 503) and recovers after
    ``transient_recovery_attempts`` failed attempts — the classic
    "retry-after" server error.
``truncate``
    The fetch "succeeds" but the body comes back truncated and garbled
    badly enough to defeat charset detection; the response is marked
    ``truncated`` so the classifier can degrade gracefully.

Slow hosts are not a fault decision but a timing property: a seeded
fraction of hosts answer with a latency multiplier, surfaced through
:meth:`FaultModel.latency_scale` and consumed by the
:class:`~repro.core.timing.TimingModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from hashlib import blake2b
from pathlib import Path
from typing import Mapping

from repro.errors import ConfigError
from repro.urlkit.normalize import url_site_key
from repro.webspace.page import (
    STATUS_HOST_DOWN,
    STATUS_SERVER_ERROR,
    STATUS_TIMEOUT,
)
from repro.webspace.virtualweb import FetchResponse, VirtualWebSpace

#: Fault kinds a resilient fetch pipeline should retry; truncation is a
#: degraded *success* and is never retried.
RETRYABLE_FAULTS = frozenset({"transient", "timeout", "outage"})

_FAULT_STATUS = {
    "transient": STATUS_SERVER_ERROR,
    "timeout": STATUS_TIMEOUT,
    "outage": STATUS_HOST_DOWN,
}

#: Bytes appended to a truncated body: an invalid UTF-8/ISO-2022 mix that
#: no charset state machine accepts, so detection degrades to UNKNOWN.
_GARBLE = b"\xfe\xff\x00\x1b$\xfe\x80\x80"


def _bare_host(site: str) -> str:
    """Strip the port from a site key: hosts in fault profiles and
    outage schedules are written without ports (``seed.co.th``), while
    :func:`~repro.urlkit.normalize.url_site_key` yields
    ``seed.co.th:80``."""
    return site.rsplit(":", 1)[0] if ":" in site else site


@dataclass(frozen=True, slots=True)
class FaultProfile:
    """Failure rates of one host (or the global default).

    Rates are probabilities in [0, 1]; each draw is an independent keyed
    hash, so e.g. a URL can be both transiently broken and truncated
    (the transient error wins until it recovers).

    Attributes:
        transient_error_rate: fraction of URLs that 503 until they
            recover.
        transient_recovery_attempts: failed attempts before a transient
            URL starts succeeding.
        timeout_rate: per-attempt probability of a hard timeout.
        truncation_rate: fraction of URLs whose body arrives truncated
            and garbled.
        slow_host_rate: fraction of hosts whose latency is multiplied.
        slow_host_multiplier: the latency multiplier of a slow host.
        latency_jitter: per-fetch latency variation amplitude j — each
            fetch's latency scale is multiplied by a seeded draw in
            [1-j, 1+j).  Zero (the default) is bit-identical to no
            jitter: no draw is made and no float op touches the scale.
        bandwidth_jitter: same, for the fetch's effective bandwidth.
    """

    transient_error_rate: float = 0.0
    transient_recovery_attempts: int = 2
    timeout_rate: float = 0.0
    truncation_rate: float = 0.0
    slow_host_rate: float = 0.0
    slow_host_multiplier: float = 10.0
    latency_jitter: float = 0.0
    bandwidth_jitter: float = 0.0

    def __post_init__(self) -> None:
        for name in ("transient_error_rate", "timeout_rate", "truncation_rate", "slow_host_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"FaultProfile.{name} must be in [0, 1], got {value!r}")
        for name in ("latency_jitter", "bandwidth_jitter"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigError(f"FaultProfile.{name} must be in [0, 1), got {value!r}")
        if self.transient_recovery_attempts < 1:
            raise ConfigError("transient_recovery_attempts must be >= 1")
        if self.slow_host_multiplier < 1.0:
            raise ConfigError("slow_host_multiplier must be >= 1")

    def to_json_dict(self) -> dict:
        return {
            "transient_error_rate": self.transient_error_rate,
            "transient_recovery_attempts": self.transient_recovery_attempts,
            "timeout_rate": self.timeout_rate,
            "truncation_rate": self.truncation_rate,
            "slow_host_rate": self.slow_host_rate,
            "slow_host_multiplier": self.slow_host_multiplier,
            "latency_jitter": self.latency_jitter,
            "bandwidth_jitter": self.bandwidth_jitter,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "FaultProfile":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown fault profile keys: {sorted(unknown)}")
        return cls(**dict(data))


@dataclass(frozen=True, slots=True)
class HostOutage:
    """A scheduled whole-host outage over a global fetch-index window.

    The window is half-open: the host is down for fetch indices
    ``start <= index < end``.  Fetch indices count every simulated fetch
    *attempt* in the run, which makes outages deterministic regardless
    of wall time.
    """

    host: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigError(
                f"outage window must satisfy 0 <= start < end, got [{self.start}, {self.end})"
            )

    def covers(self, index: int) -> bool:
        return self.start <= index < self.end

    def to_json_dict(self) -> dict:
        return {"host": self.host, "start": self.start, "end": self.end}


class FaultModel:
    """Seeded, stateless-by-construction fault decisions.

    Every decision is a pure function of ``(seed, url/host, attempt,
    fetch_index)``: two models with the same seed and profiles agree on
    every fault they would ever inject, in any order of queries.  The
    model still keeps *tallies* (``injected``) for observability, but
    those never feed back into decisions.

    Args:
        profile: the global default :class:`FaultProfile`.
        per_host: overrides keyed by site (as produced by
            :func:`repro.urlkit.normalize.url_site_key`).
        outages: scheduled :class:`HostOutage` windows.
        seed: hash key; same seed ⇒ identical fault sequence.
    """

    def __init__(
        self,
        profile: FaultProfile | None = None,
        per_host: Mapping[str, FaultProfile] | None = None,
        outages: tuple[HostOutage, ...] = (),
        seed: int = 0,
    ) -> None:
        self.profile = profile or FaultProfile()
        # Host matching is port-insensitive: profiles say "seed.co.th",
        # site keys say "seed.co.th:80" — both normalise to the bare host.
        self.per_host = {_bare_host(host): prof for host, prof in (per_host or {}).items()}
        self.outages = tuple(outages)
        self.seed = seed
        self._key = blake2b(f"lswc-faults:{seed}".encode(), digest_size=16).digest()
        self.injected: dict[str, int] = {
            "transient": 0,
            "timeout": 0,
            "outage": 0,
            "truncate": 0,
        }
        self._outages_by_host: dict[str, list[HostOutage]] = {}
        for outage in self.outages:
            self._outages_by_host.setdefault(_bare_host(outage.host), []).append(outage)

    # -- derived randomness --------------------------------------------------

    def _unit(self, kind: str, token: str) -> float:
        """A deterministic uniform draw in [0, 1) for (seed, kind, token)."""
        digest = blake2b(
            f"{kind}:{token}".encode(), digest_size=8, key=self._key
        ).digest()
        return int.from_bytes(digest, "big") / 2**64

    def profile_for(self, host: str) -> FaultProfile:
        return self.per_host.get(_bare_host(host), self.profile)

    # -- decisions -----------------------------------------------------------

    def decide(self, url: str, host: str, attempt: int, fetch_index: int) -> str | None:
        """The fault (if any) injected into this fetch attempt.

        Args:
            url: the URL being fetched.
            host: its site key (caller computes it once).
            attempt: zero-based count of *previous* fetches of this URL.
            fetch_index: one-based global count of fetch attempts.

        Returns:
            One of ``"outage"``/``"timeout"``/``"transient"``/
            ``"truncate"``, or None for a clean fetch.
        """
        for outage in self._outages_by_host.get(_bare_host(host), ()):
            if outage.covers(fetch_index):
                self.injected["outage"] += 1
                return "outage"
        prof = self.profile_for(host)
        if prof.timeout_rate and self._unit("timeout", f"{url}#{attempt}") < prof.timeout_rate:
            self.injected["timeout"] += 1
            return "timeout"
        if (
            prof.transient_error_rate
            and attempt < prof.transient_recovery_attempts
            and self._unit("transient", url) < prof.transient_error_rate
        ):
            self.injected["transient"] += 1
            return "transient"
        if prof.truncation_rate and self._unit("truncate", url) < prof.truncation_rate:
            self.injected["truncate"] += 1
            return "truncate"
        return None

    def latency_scale(self, host: str) -> float:
        """Latency multiplier of ``host`` (1.0 for healthy hosts)."""
        bare = _bare_host(host)
        prof = self.profile_for(bare)
        if prof.slow_host_rate and self._unit("slow", bare) < prof.slow_host_rate:
            return prof.slow_host_multiplier
        return 1.0

    def fetch_scales(self, host: str, url: str) -> tuple[float, float]:
        """Per-fetch ``(latency_scale, bandwidth_scale)`` multipliers.

        The latency scale combines the host's slow-host multiplier with
        a per-URL jitter draw in [1-j, 1+j); the bandwidth scale is pure
        jitter.  With both jitter amplitudes at 0 the result is exactly
        ``(latency_scale(host), 1.0)`` — no draw, no float op — which is
        the bit-identity contract the timing tests pin.
        """
        latency = self.latency_scale(host)
        prof = self.profile_for(host)
        bandwidth = 1.0
        if prof.latency_jitter:
            latency *= 1.0 + prof.latency_jitter * (2.0 * self._unit("latjitter", url) - 1.0)
        if prof.bandwidth_jitter:
            bandwidth = 1.0 + prof.bandwidth_jitter * (2.0 * self._unit("bwjitter", url) - 1.0)
        return latency, bandwidth

    @staticmethod
    def garble(body: bytes) -> bytes:
        """A deterministically truncated, detection-defeating body."""
        return body[: max(8, len(body) // 2)] + _GARBLE

    # -- serialisation -------------------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "seed": self.seed,
            "global": self.profile.to_json_dict(),
            "hosts": {host: prof.to_json_dict() for host, prof in sorted(self.per_host.items())},
            "outages": [outage.to_json_dict() for outage in self.outages],
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "FaultModel":
        unknown = set(data) - {"seed", "global", "hosts", "outages"}
        if unknown:
            raise ConfigError(f"unknown fault model keys: {sorted(unknown)}")
        try:
            outages = tuple(
                HostOutage(host=o["host"], start=o["start"], end=o["end"])
                for o in data.get("outages", ())
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed outage entry: {exc}") from exc
        return cls(
            profile=FaultProfile.from_json_dict(data.get("global", {})),
            per_host={
                host: FaultProfile.from_json_dict(prof)
                for host, prof in data.get("hosts", {}).items()
            },
            outages=outages,
            seed=data.get("seed", 0),
        )


def load_fault_model(path: str | Path) -> FaultModel:
    """Read a fault profile JSON file (the ``--faults`` CLI payload)."""
    import json

    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigError(f"cannot read fault profile {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigError(f"{path}: fault profile must be a JSON object")
    return FaultModel.from_json_dict(data)


class FaultyWebSpace:
    """A :class:`VirtualWebSpace` with a :class:`FaultModel` in front.

    Drop-in for the places the engine cares about (``fetch``,
    ``crawl_log``, ``fetch_count``): the visitor fetches through this
    wrapper and receives either the clean response, a degraded
    (truncated) response, or a synthetic failure response whose
    ``fault`` field names the injected kind.

    Injection state is two counters — the global fetch index (drives
    outage windows) and per-URL attempt counts (drives transient
    recovery) — exposed via :meth:`snapshot`/:meth:`restore` so a
    resumed crawl replays the exact fault sequence the interrupted one
    would have seen.

    ``journal`` (opt-in) records every injected fault as
    ``(fetch_index, url, kind)`` tuples — the sequence the determinism
    tests compare across runs.
    """

    def __init__(
        self,
        web: VirtualWebSpace,
        model: FaultModel,
        record_journal: bool = False,
    ) -> None:
        self._web = web
        self.model = model
        self.fetch_index = 0
        self._attempts: dict[str, int] = {}
        self.journal: list[tuple[int, str, str]] | None = [] if record_journal else None

    @property
    def web(self) -> VirtualWebSpace:
        return self._web

    @property
    def crawl_log(self):
        return self._web.crawl_log

    @property
    def fetch_count(self) -> int:
        return self._web.fetch_count

    def __contains__(self, url: str) -> bool:
        return url in self._web

    def attempts_of(self, url: str) -> int:
        """The *live* attempt counter of ``url``.

        Zero both for never-fetched URLs and for URLs whose counter was
        pruned after a completed fetch (see :meth:`fetch`) — the two are
        indistinguishable on purpose: a pruned counter is one the fault
        model can never read again.
        """
        return self._attempts.get(url, 0)

    def fetch(self, url: str) -> FetchResponse:
        """Fetch with fault injection; never raises for injected faults."""
        self.fetch_index += 1
        attempt = self._attempts.get(url, 0)
        self._attempts[url] = attempt + 1
        host = url_site_key(url)
        kind = self.model.decide(url, host, attempt, self.fetch_index)
        if kind is None or kind == "truncate":
            # The fetch completed (possibly degraded) — the engine's
            # dedup never pops a completed URL again, so its attempt
            # counter can only matter if it is still below the transient
            # recovery threshold of a host that injects attempt-sensitive
            # faults.  Prune everything else: without this the dict gains
            # one entry per URL ever fetched and a long crawl's memory
            # grows without bound.  Counters of URLs mid-failure are
            # never pruned (their next attempt number must survive a
            # checkpoint/resume bit-exactly).
            prof = self.model.profile_for(host)
            if attempt + 1 >= prof.transient_recovery_attempts or not (
                prof.transient_error_rate or prof.timeout_rate
            ):
                del self._attempts[url]
        if kind is None:
            return self._web.fetch(url)
        if self.journal is not None:
            self.journal.append((self.fetch_index, url, kind))
        if kind == "truncate":
            response = self._web.fetch(url)
            if response.body is None and not response.ok:
                return response  # nothing to truncate on a failed page
            body = self.model.garble(response.body) if response.body is not None else None
            return replace(response, body=body, truncated=True, fault="truncate")
        return FetchResponse(
            url=url,
            status=_FAULT_STATUS[kind],
            content_type="text/html",
            charset=None,
            outlinks=(),
            size=0,
            fault=kind,
        )

    # -- checkpoint support --------------------------------------------------

    def snapshot(self) -> dict:
        """Injection state: enough to replay the exact fault sequence."""
        return {
            "seed": self.model.seed,
            "fetch_index": self.fetch_index,
            "attempts": dict(self._attempts),
            "injected": dict(self.model.injected),
        }

    def restore(self, state: Mapping) -> None:
        if state.get("seed") != self.model.seed:
            raise ConfigError(
                f"checkpoint fault seed {state.get('seed')!r} does not match "
                f"the configured model seed {self.model.seed!r}"
            )
        self.fetch_index = state["fetch_index"]
        self._attempts = dict(state["attempts"])
        self.model.injected.update(state.get("injected", {}))

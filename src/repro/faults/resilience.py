"""The resilient fetch pipeline's policy objects and breaker state.

Three layers of recovery, all driven by the simulator's resilient crawl
loop (:meth:`repro.core.simulator.Simulator` with faults, checkpointing
or an explicit :class:`ResilienceConfig` attached):

1. **Retry with exponential backoff** — a retryable fault (transient
   5xx, timeout, outage) is refetched up to ``max_attempts`` times
   within the same crawl step; each retry pushes the host's politeness
   window forward on the *simulated* clock (never wall time).
2. **Per-host circuit breaker** — ``error_budget`` consecutive
   failed fetch rounds open the breaker for ``cooldown_pops`` pops;
   while open, candidates of that host are requeued (or dropped once
   their requeue budget is spent) without burning fetch attempts.  The
   first candidate after cooldown is the half-open trial: success
   closes the breaker, failure re-opens it.
3. **Capped requeue** — a URL whose fetch round failed goes back into
   the frontier at its original priority, at most ``max_requeues``
   times, after which it is dropped and counted.

Everything here is measured in simulated quantities (attempt counts,
pop sequence numbers, simulated seconds), so the whole pipeline is
deterministic and serialisable for checkpoint/resume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigError

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half-open"


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Retry/backoff/requeue knobs of the resilient fetch pipeline.

    Attributes:
        max_attempts: fetch attempts per crawl step (1 = no retries).
        backoff_base_s: simulated seconds of backoff before the first
            retry.
        backoff_factor: multiplier applied per further retry.
        max_requeues: times a failed URL re-enters the frontier before
            being dropped.
    """

    max_attempts: int = 3
    backoff_base_s: float = 1.0
    backoff_factor: float = 2.0
    max_requeues: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("RetryPolicy.max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ConfigError("backoff_base_s must be >= 0 and backoff_factor >= 1")
        if self.max_requeues < 0:
            raise ConfigError("RetryPolicy.max_requeues must be >= 0")

    def backoff_s(self, retry_number: int) -> float:
        """Simulated backoff before retry ``retry_number`` (1-based)."""
        return self.backoff_base_s * self.backoff_factor ** (retry_number - 1)


@dataclass(frozen=True, slots=True)
class BreakerPolicy:
    """Error budget and cooldown of the per-host circuit breaker.

    Attributes:
        error_budget: consecutive failed fetch rounds a host may spend
            before its breaker opens.
        cooldown_pops: frontier pops the breaker stays open for; the
            unit is the global pop sequence, which is deterministic and
            checkpoint-safe (unlike wall time).
    """

    error_budget: int = 5
    cooldown_pops: int = 100

    def __post_init__(self) -> None:
        if self.error_budget < 1:
            raise ConfigError("BreakerPolicy.error_budget must be >= 1")
        if self.cooldown_pops < 1:
            raise ConfigError("BreakerPolicy.cooldown_pops must be >= 1")


@dataclass(frozen=True, slots=True)
class ResilienceConfig:
    """Everything the resilient crawl loop needs, in one object.

    ``breaker=None`` disables circuit breaking (retry and requeue still
    apply).  The default configuration is what a crawl with faults but
    no explicit tuning gets.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy | None = field(default_factory=BreakerPolicy)


@dataclass(slots=True)
class _HostState:
    """Mutable breaker bookkeeping of one host."""

    state: str = _CLOSED
    consecutive_failures: int = 0
    open_until_pop: int = 0


class HostBreakers:
    """Circuit breakers for every host the crawl touches.

    The board is lazy — a host gets state the first time it fails — and
    fully serialisable: :meth:`snapshot`/:meth:`restore` round-trip the
    exact breaker machine, so a resumed crawl skips and admits the same
    candidates the uninterrupted one would.
    """

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self._hosts: dict[str, _HostState] = {}
        self.opened = 0
        self.reopened = 0
        self.closed = 0

    def allow(self, host: str, pop_seq: int) -> bool:
        """May a candidate of ``host`` be fetched at ``pop_seq``?

        An open breaker whose cooldown has elapsed flips to half-open
        and admits exactly this candidate as the trial fetch.
        """
        state = self._hosts.get(host)
        if state is None or state.state == _CLOSED:
            return True
        if state.state == _OPEN and pop_seq >= state.open_until_pop:
            state.state = _HALF_OPEN
            return True
        return state.state == _HALF_OPEN

    def record_success(self, host: str) -> None:
        state = self._hosts.get(host)
        if state is None:
            return
        if state.state != _CLOSED:
            self.closed += 1
        state.state = _CLOSED
        state.consecutive_failures = 0

    def record_failure(self, host: str, pop_seq: int) -> bool:
        """Account one failed fetch round; True if the breaker opened."""
        state = self._hosts.get(host)
        if state is None:
            state = self._hosts[host] = _HostState()
        state.consecutive_failures += 1
        if state.state == _HALF_OPEN:
            # The trial fetch failed: straight back to open.
            state.state = _OPEN
            state.open_until_pop = pop_seq + self.policy.cooldown_pops
            self.reopened += 1
            return True
        if state.state == _CLOSED and state.consecutive_failures >= self.policy.error_budget:
            state.state = _OPEN
            state.open_until_pop = pop_seq + self.policy.cooldown_pops
            self.opened += 1
            return True
        return False

    def open_hosts(self) -> int:
        return sum(1 for state in self._hosts.values() if state.state != _CLOSED)

    def state_of(self, host: str) -> str:
        state = self._hosts.get(host)
        return state.state if state is not None else _CLOSED

    # -- checkpoint support --------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "opened": self.opened,
            "reopened": self.reopened,
            "closed": self.closed,
            "hosts": {
                host: {
                    "state": state.state,
                    "failures": state.consecutive_failures,
                    "open_until_pop": state.open_until_pop,
                }
                for host, state in self._hosts.items()
            },
        }

    def restore(self, data: Mapping) -> None:
        self.opened = data.get("opened", 0)
        self.reopened = data.get("reopened", 0)
        self.closed = data.get("closed", 0)
        self._hosts = {
            host: _HostState(
                state=entry["state"],
                consecutive_failures=entry["failures"],
                open_until_pop=entry["open_until_pop"],
            )
            for host, entry in data.get("hosts", {}).items()
        }


@dataclass(slots=True)
class ResilienceStats:
    """End-of-run tallies of the resilient fetch pipeline.

    Attached to :class:`~repro.core.simulator.CrawlResult` when the
    resilient loop ran; the same numbers flow through ``repro.obs`` as
    counters during the run.
    """

    retries: int = 0
    requeued: int = 0
    dropped: int = 0
    fetches_failed: int = 0
    breaker_skips: int = 0
    breaker_opened: int = 0
    checkpoints_written: int = 0
    faults_injected: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "retries": self.retries,
            "requeued": self.requeued,
            "dropped": self.dropped,
            "fetches_failed": self.fetches_failed,
            "breaker_skips": self.breaker_skips,
            "breaker_opened": self.breaker_opened,
            "checkpoints_written": self.checkpoints_written,
            "faults_injected": dict(self.faults_injected),
        }

"""Synthetic crawl-log generator.

The paper evaluates on two crawl logs captured from the real Web in 2004
(~14M Thai URLs, ~110M Japanese URLs).  Those logs are not available, so
this subpackage synthesizes web spaces with the statistical properties
the paper's conclusions rest on:

- a host/site structure where each site has a dominant language,
- **language locality** of links (paper §3's premise), controlled by an
  explicit parameter,
- power-law-ish in-degree via per-page attractiveness, lognormal
  out-degree,
- non-OK fetches, non-HTML content, pages with missing or **mislabeled**
  charset declarations (paper §3 observations),
- and real HTML bodies, rendered on demand in the page's declared
  encoding, so the charset detector has honest bytes to chew on.

The generator emits the *raw universe*; the capture step that turns a
universe into a paper-style dataset (crawling it from seeds, as the
authors did) lives in :mod:`repro.experiments.datasets` because it uses
the simulator itself.
"""

from repro.graphgen.config import CharsetChoice, DatasetProfile, LanguageGroup
from repro.graphgen.evolution import ChurnSpec, evolve_log
from repro.graphgen.generator import GeneratedUniverse, generate_universe
from repro.graphgen.htmlsynth import HtmlSynthesizer
from repro.graphgen.profiles import (
    japanese_profile,
    korean_profile,
    profile_by_name,
    thai_profile,
)
from repro.graphgen.textgen import TextGenerator

__all__ = [
    "CharsetChoice",
    "LanguageGroup",
    "DatasetProfile",
    "GeneratedUniverse",
    "generate_universe",
    "thai_profile",
    "japanese_profile",
    "korean_profile",
    "ChurnSpec",
    "evolve_log",
    "profile_by_name",
    "TextGenerator",
    "HtmlSynthesizer",
]

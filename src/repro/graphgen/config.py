"""Configuration model for the synthetic web space generator.

A :class:`DatasetProfile` fully determines a universe: same profile, same
bytes.  Profiles are immutable and hashable so generated datasets can be
cached content-addressed (see :mod:`repro.experiments.datasets`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

from repro.charset.languages import CHARSET_LANGUAGES, Language
from repro.errors import ConfigError


def _encode_json(value):
    """Recursively turn dataclass ``asdict`` output into plain JSON types."""
    if isinstance(value, Language):
        return value.value
    if isinstance(value, tuple):
        return [_encode_json(item) for item in value]
    if isinstance(value, dict):
        return {key: _encode_json(item) for key, item in value.items()}
    return value


@dataclass(frozen=True, slots=True)
class CharsetChoice:
    """One option of a language group's charset distribution.

    ``charset=None`` means the page declares nothing — the classifier
    will see no META charset, one of the paper's mislabeling modes.
    """

    charset: str | None
    weight: float


@dataclass(frozen=True, slots=True)
class LanguageGroup:
    """Hosts of one content language and how their pages declare charsets.

    ``weight`` is the share of *hosts* whose dominant language this is.
    ``charset_choices`` is sampled per page; choices whose charset does
    not map back to ``language`` model the paper's mislabeled pages.
    ``out_degree_scale`` multiplies the profile's lognormal out-degree
    for pages of this language — the 2004-era broad web (directories,
    portals) was considerably better linked than the small national webs
    crawls tunnel into, and that asymmetry is what floods the
    soft-focused queue once low-priority links start being expanded
    (paper Figure 5).
    """

    language: Language
    weight: float
    charset_choices: tuple[CharsetChoice, ...]
    out_degree_scale: float = 1.0

    def declared_match_probability(self) -> float:
        """P(declared charset maps to this group's language)."""
        total = sum(choice.weight for choice in self.charset_choices)
        if total <= 0:
            return 0.0
        matching = sum(
            choice.weight
            for choice in self.charset_choices
            if choice.charset is not None
            and CHARSET_LANGUAGES.get(choice.charset) is self.language
        )
        return matching / total


@dataclass(frozen=True, slots=True)
class DatasetProfile:
    """Complete recipe for one synthetic web universe.

    Attributes:
        name: short identifier; used in cache paths and reports.
        seed: master RNG seed.
        target_language: the language the crawl experiments focus on.
        n_pages: size of the URL universe, including non-OK and non-HTML
            URLs (the paper's "OK + non-OK pages").
        n_hosts: number of sites; page counts per site follow a Zipf-like
            distribution.
        groups: language composition of the hosts.
        language_locality: probability that a cross-host link from a page
            of language L points to a host of language L.  The paper's
            "language locality in the Web" premise, as a knob.
        intra_host_fraction: probability a link stays on its own host.
        page_language_deviation: probability a page's language deviates
            from its host's dominant language (guestbooks, mirrored docs).
        isolated_site_fraction: fraction of *target-language* hosts whose
            cross-host inlinks come only from other-language pages —
            paper §3 observation 2: "Thai web pages are reachable only
            through non-Thai web pages".  This is what caps the
            hard-focused strategy's coverage (Figure 3b).
        out_degree_mu, out_degree_sigma: lognormal out-degree parameters
            for OK HTML pages.
        max_out_degree: hard cap on links per page.
        ok_fraction: share of URLs that answered 200.
        html_fraction: share of OK URLs that are text/html.
        attractiveness_alpha: Pareto shape for per-page link
            attractiveness; smaller = heavier-tailed in-degree.
        non_ok_attractiveness: multiplier on the attractiveness of
            non-OK URLs.  Dead links exist but are much rarer than live
            ones; without this damping every strategy would waste the
            same ~(1 - ok_fraction) of its fetches on errors and the
            harvest-rate curves would be flattened artifacts.
        non_html_attractiveness: same damping for OK non-HTML resources.
        mean_page_size: mean synthesized body size, bytes (lognormal).
        n_seeds: number of seed URLs selected for capture crawls.
        anchor_cue_probability: probability a link's anchor text is
            written in the *target page's* language (an anchor-text cue a
            textual-cue strategy can exploit).  0.0 (default) generates
            no cue column at all, keeping universes byte-identical to
            pre-cue profiles.
        around_cue_probability: probability the text surrounding a link
            carries words in the target page's language.  Same gating as
            ``anchor_cue_probability``.
    """

    name: str
    seed: int
    target_language: Language
    n_pages: int
    n_hosts: int
    groups: tuple[LanguageGroup, ...]
    language_locality: float = 0.88
    intra_host_fraction: float = 0.55
    page_language_deviation: float = 0.03
    isolated_site_fraction: float = 0.0
    out_degree_mu: float = 2.0
    out_degree_sigma: float = 0.7
    max_out_degree: int = 64
    ok_fraction: float = 0.5
    html_fraction: float = 0.85
    attractiveness_alpha: float = 1.3
    non_ok_attractiveness: float = 0.12
    non_html_attractiveness: float = 0.30
    mean_page_size: int = 6000
    n_seeds: int = 10
    anchor_cue_probability: float = 0.0
    around_cue_probability: float = 0.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any out-of-range field."""
        if self.n_pages < 10:
            raise ConfigError("n_pages must be >= 10")
        if not 1 <= self.n_hosts <= self.n_pages:
            raise ConfigError("n_hosts must be in [1, n_pages]")
        if not self.groups:
            raise ConfigError("at least one language group is required")
        if all(group.language is not self.target_language for group in self.groups):
            raise ConfigError(f"no group for target language {self.target_language}")
        total_weight = sum(group.weight for group in self.groups)
        if total_weight <= 0:
            raise ConfigError("group weights must sum to a positive value")
        for group in self.groups:
            if group.weight < 0:
                raise ConfigError("group weights must be non-negative")
            if group.out_degree_scale <= 0:
                raise ConfigError("out_degree_scale must be > 0")
            if not group.charset_choices:
                raise ConfigError(f"group {group.language} has no charset choices")
            for choice in group.charset_choices:
                if choice.weight < 0:
                    raise ConfigError("charset choice weights must be non-negative")
                if choice.charset is not None and choice.charset not in CHARSET_LANGUAGES:
                    raise ConfigError(f"unknown charset {choice.charset!r}")
        for probability_field in (
            "language_locality",
            "intra_host_fraction",
            "page_language_deviation",
            "isolated_site_fraction",
            "ok_fraction",
            "html_fraction",
            "anchor_cue_probability",
            "around_cue_probability",
        ):
            value = getattr(self, probability_field)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{probability_field} must be in [0, 1], got {value}")
        if self.max_out_degree < 1:
            raise ConfigError("max_out_degree must be >= 1")
        if self.out_degree_sigma < 0:
            raise ConfigError("out_degree_sigma must be >= 0")
        if self.attractiveness_alpha <= 0:
            raise ConfigError("attractiveness_alpha must be > 0")
        for damping_field in ("non_ok_attractiveness", "non_html_attractiveness"):
            value = getattr(self, damping_field)
            if not 0.0 < value <= 1.0:
                raise ConfigError(f"{damping_field} must be in (0, 1], got {value}")
        if self.mean_page_size < 64:
            raise ConfigError("mean_page_size must be >= 64")
        if not 1 <= self.n_seeds <= self.n_pages:
            raise ConfigError("n_seeds must be in [1, n_pages]")

    def scaled(self, factor: float) -> "DatasetProfile":
        """A copy with the universe scaled by ``factor`` (same shape)."""
        if factor <= 0:
            raise ConfigError("scale factor must be > 0")
        return replace(
            self,
            name=f"{self.name}-x{factor:g}",
            n_pages=max(10, int(self.n_pages * factor)),
            n_hosts=max(1, int(self.n_hosts * factor)),
        )

    def with_seed(self, seed: int) -> "DatasetProfile":
        """A copy with a different master seed (for variance studies)."""
        return replace(self, seed=seed)

    def with_locality(self, locality: float) -> "DatasetProfile":
        """A copy with a different language-locality (ablation knob)."""
        return replace(
            self,
            name=f"{self.name}-loc{locality:g}",
            language_locality=locality,
        )

    def to_json_dict(self) -> dict:
        """JSON-able form of the complete recipe (inverse: :meth:`from_json_dict`).

        Embedded verbatim in page-store headers
        (:mod:`repro.webspace.store`) so an on-disk dataset carries the
        profile that generated it.
        """
        return _encode_json(asdict(self))

    @classmethod
    def from_json_dict(cls, payload: dict) -> "DatasetProfile":
        """Rebuild a profile from :meth:`to_json_dict` output."""
        fields = dict(payload)
        fields["target_language"] = Language(fields["target_language"])
        fields["groups"] = tuple(
            LanguageGroup(
                language=Language(group["language"]),
                weight=group["weight"],
                charset_choices=tuple(
                    CharsetChoice(charset=choice["charset"], weight=choice["weight"])
                    for choice in group["charset_choices"]
                ),
                out_degree_scale=group.get("out_degree_scale", 1.0),
            )
            for group in fields["groups"]
        )
        return cls(**fields)

    def fingerprint(self) -> str:
        """Stable content hash of the profile, for dataset caching."""
        payload = json.dumps(self.to_json_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

"""Web-space evolution between archive snapshots.

A national archive recrawls periodically; between snapshots the web
churns — pages die, new pages appear, link lists change.  The paper's
group built exactly this follow-up (Tamura & Kitsuregawa's incremental
crawler for large-scale web archives, DEWS 2007); this module supplies
the substrate for studying it on synthetic data:

:func:`evolve_log` derives snapshot *t+1* from snapshot *t* with three
independent churn knobs.  Evolution is deterministic in the seed and
preserves the invariants the simulator relies on (unique URLs, outlinks
only on OK HTML pages, no self-links).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigError
from repro.urlkit.normalize import url_host
from repro.webspace.crawllog import CrawlLog
from repro.webspace.page import PageRecord


@dataclass(frozen=True, slots=True)
class ChurnSpec:
    """Per-interval churn rates.

    Attributes:
        death_rate: fraction of previously-OK pages now answering 404
            (their inlinks become dead links — they stay in others'
            outlink lists, exactly like the real web).
        birth_rate: new pages per existing OK HTML page; each new page
            appears on an existing host, inherits the host's dominant
            look (charset/language copied from a sibling) and gets
            linked from that sibling.
        relink_rate: fraction of surviving OK HTML pages whose outlink
            list is perturbed (one link dropped and/or one link to a
            random same-snapshot page added).
    """

    death_rate: float = 0.05
    birth_rate: float = 0.08
    relink_rate: float = 0.10

    def validate(self) -> None:
        for name in ("death_rate", "birth_rate", "relink_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")


def evolve_log(crawl_log: CrawlLog, churn: ChurnSpec, seed: int = 0) -> CrawlLog:
    """Derive the next snapshot of ``crawl_log`` under ``churn``."""
    churn.validate()
    rng = np.random.default_rng(seed)
    records = list(crawl_log)
    all_urls = [record.url for record in records]

    # -- deaths -------------------------------------------------------------
    ok_indices = [index for index, record in enumerate(records) if record.ok]
    death_draws = rng.random(len(ok_indices))
    dead: set[int] = {
        index for index, draw in zip(ok_indices, death_draws) if draw < churn.death_rate
    }
    evolved: list[PageRecord] = []
    for index, record in enumerate(records):
        if index in dead:
            evolved.append(
                replace(record, status=404, charset=None, outlinks=(), size=0)
            )
        else:
            evolved.append(record)

    # -- relinks ------------------------------------------------------------
    for index, record in enumerate(evolved):
        if not record.ok or not record.is_html:
            continue
        if rng.random() >= churn.relink_rate:
            continue
        outlinks = list(record.outlinks)
        if outlinks and rng.random() < 0.5:
            outlinks.pop(int(rng.integers(0, len(outlinks))))
        target = all_urls[int(rng.integers(0, len(all_urls)))]
        if target != record.url and target not in outlinks:
            outlinks.append(target)
        evolved[index] = replace(record, outlinks=tuple(outlinks))

    # -- births -------------------------------------------------------------
    parents = [
        index
        for index, record in enumerate(evolved)
        if record.ok and record.is_html
    ]
    n_births = int(len(parents) * churn.birth_rate)
    if n_births and parents:
        chosen = rng.choice(parents, size=n_births)
        for birth_index, parent_index in enumerate(chosen):
            parent = evolved[int(parent_index)]
            host = url_host(parent.url)
            url = f"http://{host}/new/{seed}-{birth_index}.html"
            newborn = PageRecord(
                url=url,
                status=200,
                charset=parent.charset,
                true_language=parent.true_language,
                outlinks=(parent.url,),
                size=max(256, parent.size),
            )
            evolved.append(newborn)
            evolved[int(parent_index)] = replace(
                parent, outlinks=(*parent.outlinks, url)
            )

    return CrawlLog(evolved)

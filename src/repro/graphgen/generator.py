"""Top-level universe generation.

The generation layer is split in two:

- :func:`generate_columns` runs every RNG draw and emits the universe as
  **columns** — numpy arrays (statuses, charset indices, sizes, CSR link
  structure) plus the host table — in bounded memory: no
  :class:`~repro.webspace.page.PageRecord` objects, no URL strings.
  This is what the out-of-core store writer
  (:func:`repro.graphgen.stream.write_universe_store`) consumes, and it
  is the only path that touches the RNG, so the eager and streaming
  backends are byte-identical by construction.

- :func:`generate_universe` assembles those columns into the classic
  eager :class:`GeneratedUniverse` (records + in-memory
  :class:`~repro.webspace.crawllog.CrawlLog`) for workloads that fit.

The paper-style *dataset* (the capture crawl over this universe) is
produced by :mod:`repro.experiments.datasets`.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.charset.languages import Language
from repro.graphgen.config import DatasetProfile
from repro.graphgen.hosts import Host, build_hosts
from repro.graphgen.linkcontext import (
    ANCHOR_CUE_BIT,
    AROUND_CUE_BIT,
    cue_language_code,
)
from repro.graphgen.linker import build_edges, links_csr
from repro.webspace.crawllog import CrawlLog
from repro.webspace.page import HTML_CONTENT_TYPE, STATUS_OK, PageRecord

#: Non-OK statuses and their relative frequencies.
_NON_OK_STATUSES = np.array([404, 302, 403, 500])
_NON_OK_WEIGHTS = np.array([0.50, 0.25, 0.10, 0.15])

#: Content types of OK non-HTML pages.
_NON_HTML_TYPES = ("image/gif", "image/jpeg", "application/pdf", "text/plain")

#: Lognormal sigma for page sizes.
_SIZE_SIGMA = 0.6


@dataclass(frozen=True, slots=True)
class GeneratedUniverse:
    """A raw synthetic web: crawl log + the seed URLs a capture starts from."""

    profile: DatasetProfile
    crawl_log: CrawlLog
    seed_urls: tuple[str, ...]
    hosts: tuple[Host, ...]


@dataclass(slots=True)
class UniverseColumns:
    """A generated universe as numpy columns — the bounded-memory form.

    Page URLs are never materialised here: they are a pure function of
    ``(host, offset)`` (see :meth:`url_for`), link targets are page ids
    in the CSR arena, and seeds are page ids.  At 10⁶–10⁷ pages this is
    tens of megabytes of arrays where the eager record path costs
    gigabytes of Python objects.
    """

    profile: DatasetProfile
    hosts: tuple[Host, ...]
    lang_code: np.ndarray
    ok_mask: np.ndarray
    html_mask: np.ndarray
    statuses: np.ndarray
    charset_index: np.ndarray
    sizes: np.ndarray
    attractiveness: np.ndarray
    isolated_mask: np.ndarray
    #: CSR link structure: row ``p`` is
    #: ``link_targets[link_offsets[p]:link_offsets[p + 1]]`` (page ids,
    #: self-links dropped, first-occurrence deduped).
    link_offsets: np.ndarray
    link_targets: np.ndarray
    seed_pages: np.ndarray
    _host_first: np.ndarray
    #: Per-link textual-cue bytes aligned 1:1 with ``link_targets``
    #: (encoding in :mod:`repro.graphgen.linkcontext`); None when the
    #: profile's cue knobs are 0 — such universes carry no cue column
    #: and are byte-identical to pre-cue generations.
    link_cues: np.ndarray | None = None

    @property
    def n_pages(self) -> int:
        return len(self.lang_code)

    def host_of(self, page: int) -> Host:
        """The host owning page id ``page`` (pages contiguous per host)."""
        index = int(np.searchsorted(self._host_first, page, side="right")) - 1
        return self.hosts[index]

    def url_for(self, page: int) -> str:
        """The URL of page id ``page``, computed — never stored."""
        host = self.host_of(page)
        return host.page_url(page - host.first_page)

    def seed_urls(self) -> tuple[str, ...]:
        return tuple(self.url_for(int(page)) for page in self.seed_pages)

    def content_type_of(self, page: int) -> str:
        if bool(self.ok_mask[page]) and not bool(self.html_mask[page]):
            return _NON_HTML_TYPES[page % len(_NON_HTML_TYPES)]
        return HTML_CONTENT_TYPE

    def charset_of(self, page: int) -> str | None:
        if not (bool(self.ok_mask[page]) and bool(self.html_mask[page])):
            return None
        group = self.profile.groups[int(self.lang_code[page])]
        return group.charset_choices[int(self.charset_index[page])].charset

    def language_of(self, page: int) -> Language:
        return self.profile.groups[int(self.lang_code[page])].language

    def record_for(self, page: int, urls: list[str] | None = None) -> PageRecord:
        """Materialise one page record (transient; bounded memory).

        ``urls`` may pass a precomputed url table to skip the per-target
        ``url_for`` binary searches (the eager path does).
        """
        ok = bool(self.ok_mask[page])
        html = bool(self.html_mask[page])
        outlinks: tuple[str, ...] = ()
        cues: tuple[int, ...] | None = None
        if ok and html:
            start = self.link_offsets[page]
            stop = self.link_offsets[page + 1]
            row = self.link_targets[start:stop]
            if urls is not None:
                outlinks = tuple(urls[target] for target in row)
            else:
                outlinks = tuple(self.url_for(int(target)) for target in row)
            if self.link_cues is not None:
                cues = tuple(int(cue) for cue in self.link_cues[start:stop])
        return PageRecord(
            url=urls[page] if urls is not None else self.url_for(page),
            status=int(self.statuses[page]),
            content_type=self.content_type_of(page),
            charset=self.charset_of(page),
            true_language=self.language_of(page),
            outlinks=outlinks,
            size=int(self.sizes[page]) if ok and html else 0,
            link_cues=cues,
        )


def generate_columns(profile: DatasetProfile) -> UniverseColumns:
    """Run the full generation pass, emitting columns (no records).

    Every RNG draw happens here, in a fixed order; both backends (eager
    records, columnar store) are assembled from the same columns, which
    is what makes them byte-identical.
    """
    profile.validate()
    rng = np.random.default_rng(profile.seed)
    n_pages = profile.n_pages
    n_groups = len(profile.groups)

    hosts = build_hosts(profile, rng)

    # Per-page language: host's dominant language, with rare deviations.
    lang_code = np.empty(n_pages, dtype=np.int64)
    for host in hosts:
        lang_code[host.page_slice] = host.group_index
    if n_groups > 1 and profile.page_language_deviation > 0:
        deviate = rng.random(n_pages) < profile.page_language_deviation
        shift = rng.integers(1, n_groups, size=n_pages)
        lang_code[deviate] = (lang_code[deviate] + shift[deviate]) % n_groups

    # Statuses and content types.
    ok_mask = rng.random(n_pages) < profile.ok_fraction
    html_mask = ok_mask & (rng.random(n_pages) < profile.html_fraction)
    statuses = np.full(n_pages, STATUS_OK, dtype=np.int64)
    n_non_ok = int((~ok_mask).sum())
    statuses[~ok_mask] = rng.choice(_NON_OK_STATUSES, size=n_non_ok, p=_NON_OK_WEIGHTS)

    # Charset declarations, sampled from each page's language group.
    charset_index = np.zeros(n_pages, dtype=np.int64)
    for group_index, group in enumerate(profile.groups):
        members = lang_code == group_index
        count = int(members.sum())
        if count == 0:
            continue
        weights = np.array([choice.weight for choice in group.charset_choices], dtype=np.float64)
        weights /= weights.sum()
        charset_index[members] = rng.choice(len(group.charset_choices), size=count, p=weights)

    # Sizes (only meaningful for OK HTML pages, but cheap to draw for all).
    size_mu = np.log(profile.mean_page_size) - _SIZE_SIGMA**2 / 2
    sizes = rng.lognormal(size_mu, _SIZE_SIGMA, size=n_pages).astype(np.int64)
    sizes = np.maximum(sizes, 256)

    # Link attractiveness and the link structure itself.  Non-OK and
    # non-HTML URLs draw far fewer inlinks — dead links and binary
    # resources are linked much less than live pages.
    attractiveness = rng.pareto(profile.attractiveness_alpha, size=n_pages) + 1.0
    attractiveness[~ok_mask] *= profile.non_ok_attractiveness
    attractiveness[ok_mask & ~html_mask] *= profile.non_html_attractiveness

    # Isolated sites: target-language hosts reachable across hosts only
    # through other-language pages (paper §3 observation 2).
    isolated_mask = np.zeros(n_pages, dtype=bool)
    target_groups = [
        index
        for index, group in enumerate(profile.groups)
        if group.language is profile.target_language
    ]
    if profile.isolated_site_fraction > 0:
        for host in hosts:
            if host.group_index in target_groups and rng.random() < profile.isolated_site_fraction:
                isolated_mask[host.page_slice] = True

    sources, targets = build_edges(
        profile, hosts, lang_code, html_mask, attractiveness, rng, isolated_mask=isolated_mask
    )
    link_offsets, link_targets = links_csr(n_pages, sources, targets)

    # Textual-cue bytes, one per kept link (aligned with link_targets, so
    # they map 1:1 onto each record's outlinks).  Drawn *after* the CSR
    # build and gated on the knobs, so profiles with both probabilities
    # at 0 consume no extra RNG draws and stay byte-identical.
    link_cues: np.ndarray | None = None
    if profile.anchor_cue_probability > 0 or profile.around_cue_probability > 0:
        n_links = len(link_targets)
        anchor_hit = rng.random(n_links) < profile.anchor_cue_probability
        around_hit = rng.random(n_links) < profile.around_cue_probability
        group_code = np.array(
            [cue_language_code(group.language) for group in profile.groups],
            dtype=np.uint8,
        )
        link_cues = np.zeros(n_links, dtype=np.uint8)
        any_hit = anchor_hit | around_hit
        link_cues[any_hit] = group_code[lang_code[link_targets[any_hit]]]
        link_cues[anchor_hit] |= ANCHOR_CUE_BIT
        link_cues[around_hit] |= AROUND_CUE_BIT

    seed_pages = _select_seed_pages(
        profile, hosts, lang_code, html_mask & ~isolated_mask, attractiveness
    )

    return UniverseColumns(
        profile=profile,
        hosts=tuple(hosts),
        lang_code=lang_code,
        ok_mask=ok_mask,
        html_mask=html_mask,
        statuses=statuses,
        charset_index=charset_index,
        sizes=sizes,
        attractiveness=attractiveness,
        isolated_mask=isolated_mask,
        link_offsets=link_offsets,
        link_targets=link_targets,
        seed_pages=seed_pages,
        _host_first=np.array([host.first_page for host in hosts], dtype=np.int64),
        link_cues=link_cues,
    )


def iter_universe_records(columns: UniverseColumns) -> Iterator[PageRecord]:
    """Stream the universe's records one at a time, in page-id order.

    Bounded memory: each record (and its URL strings) is materialised on
    demand from the columns and may be dropped by the consumer.
    """
    for page in range(columns.n_pages):
        yield columns.record_for(page)


def generate_universe(profile: DatasetProfile) -> GeneratedUniverse:
    """Generate the synthetic web universe described by ``profile``.

    The eager assembly of :func:`generate_columns`: all records are
    materialised into an in-memory crawl log.  For million-page webs use
    :func:`repro.graphgen.stream.write_universe_store` instead, which
    writes the same universe to a columnar store without ever holding
    the records.
    """
    columns = generate_columns(profile)
    n_pages = columns.n_pages
    urls = _page_urls(list(columns.hosts), n_pages)
    records = [columns.record_for(page, urls) for page in range(n_pages)]
    return GeneratedUniverse(
        profile=profile,
        crawl_log=CrawlLog(records),
        seed_urls=tuple(urls[int(page)] for page in columns.seed_pages),
        hosts=columns.hosts,
    )


def _page_urls(hosts: list[Host], n_pages: int) -> list[str]:
    urls: list[str] = [""] * n_pages
    for host in hosts:
        for offset in range(host.n_pages):
            urls[host.first_page + offset] = host.page_url(offset)
    return urls


def _select_seed_pages(
    profile: DatasetProfile,
    hosts: list[Host],
    lang_code: np.ndarray,
    html_mask: np.ndarray,
    attractiveness: np.ndarray,
) -> np.ndarray:
    """Pick seed pages: popular target-language OK HTML pages, spread over
    distinct hosts — the way an archivist would seed from known portals.

    Returns page ids (URLs are a derived view); page identity and URL
    identity coincide, so the dedupe is unchanged from the string days.
    """
    target_groups = {
        index
        for index, group in enumerate(profile.groups)
        if group.language is profile.target_language
    }
    candidate_mask = html_mask & np.isin(lang_code, list(target_groups))
    candidates = np.nonzero(candidate_mask)[0]
    if len(candidates) == 0:
        raise_from = f"profile {profile.name!r} produced no target-language HTML pages"
        raise RuntimeError(raise_from)
    order = candidates[np.argsort(attractiveness[candidates])[::-1]]

    host_of_page = np.empty(len(lang_code), dtype=np.int64)
    for host in hosts:
        host_of_page[host.page_slice] = host.index

    seeds: list[int] = []
    used_hosts: set[int] = set()
    for page in order:
        host_index = int(host_of_page[page])
        if host_index in used_hosts:
            continue
        used_hosts.add(host_index)
        seeds.append(int(page))
        if len(seeds) == profile.n_seeds:
            break
    # Not enough distinct hosts: top up with the best remaining pages.
    if len(seeds) < profile.n_seeds:
        chosen = set(seeds)
        for page in order:
            page = int(page)
            if page not in chosen:
                seeds.append(page)
                chosen.add(page)
            if len(seeds) == profile.n_seeds:
                break
    return np.array(seeds, dtype=np.int64)

"""Top-level universe generation.

``generate_universe(profile)`` assembles everything: hosts, per-page
language/status/charset/size attributes, the link structure, and seed
URLs — returning a :class:`GeneratedUniverse` whose crawl log is the raw
synthetic web.  The paper-style *dataset* (the capture crawl over this
universe) is produced by :mod:`repro.experiments.datasets`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.charset.languages import Language
from repro.graphgen.config import DatasetProfile
from repro.graphgen.hosts import Host, build_hosts
from repro.graphgen.linker import build_edges, outlinks_per_page
from repro.webspace.crawllog import CrawlLog
from repro.webspace.page import HTML_CONTENT_TYPE, STATUS_OK, PageRecord

#: Non-OK statuses and their relative frequencies.
_NON_OK_STATUSES = np.array([404, 302, 403, 500])
_NON_OK_WEIGHTS = np.array([0.50, 0.25, 0.10, 0.15])

#: Content types of OK non-HTML pages.
_NON_HTML_TYPES = ("image/gif", "image/jpeg", "application/pdf", "text/plain")

#: Lognormal sigma for page sizes.
_SIZE_SIGMA = 0.6


@dataclass(frozen=True, slots=True)
class GeneratedUniverse:
    """A raw synthetic web: crawl log + the seed URLs a capture starts from."""

    profile: DatasetProfile
    crawl_log: CrawlLog
    seed_urls: tuple[str, ...]
    hosts: tuple[Host, ...]


def generate_universe(profile: DatasetProfile) -> GeneratedUniverse:
    """Generate the synthetic web universe described by ``profile``."""
    profile.validate()
    rng = np.random.default_rng(profile.seed)
    n_pages = profile.n_pages
    n_groups = len(profile.groups)

    hosts = build_hosts(profile, rng)

    # Per-page language: host's dominant language, with rare deviations.
    lang_code = np.empty(n_pages, dtype=np.int64)
    for host in hosts:
        lang_code[host.page_slice] = host.group_index
    if n_groups > 1 and profile.page_language_deviation > 0:
        deviate = rng.random(n_pages) < profile.page_language_deviation
        shift = rng.integers(1, n_groups, size=n_pages)
        lang_code[deviate] = (lang_code[deviate] + shift[deviate]) % n_groups

    # Statuses and content types.
    ok_mask = rng.random(n_pages) < profile.ok_fraction
    html_mask = ok_mask & (rng.random(n_pages) < profile.html_fraction)
    statuses = np.full(n_pages, STATUS_OK, dtype=np.int64)
    n_non_ok = int((~ok_mask).sum())
    statuses[~ok_mask] = rng.choice(_NON_OK_STATUSES, size=n_non_ok, p=_NON_OK_WEIGHTS)

    # Charset declarations, sampled from each page's language group.
    charset_index = np.zeros(n_pages, dtype=np.int64)
    for group_index, group in enumerate(profile.groups):
        members = lang_code == group_index
        count = int(members.sum())
        if count == 0:
            continue
        weights = np.array([choice.weight for choice in group.charset_choices], dtype=np.float64)
        weights /= weights.sum()
        charset_index[members] = rng.choice(len(group.charset_choices), size=count, p=weights)

    # Sizes (only meaningful for OK HTML pages, but cheap to draw for all).
    size_mu = np.log(profile.mean_page_size) - _SIZE_SIGMA**2 / 2
    sizes = rng.lognormal(size_mu, _SIZE_SIGMA, size=n_pages).astype(np.int64)
    sizes = np.maximum(sizes, 256)

    # Link attractiveness and the link structure itself.  Non-OK and
    # non-HTML URLs draw far fewer inlinks — dead links and binary
    # resources are linked much less than live pages.
    attractiveness = rng.pareto(profile.attractiveness_alpha, size=n_pages) + 1.0
    attractiveness[~ok_mask] *= profile.non_ok_attractiveness
    attractiveness[ok_mask & ~html_mask] *= profile.non_html_attractiveness

    # Isolated sites: target-language hosts reachable across hosts only
    # through other-language pages (paper §3 observation 2).
    isolated_mask = np.zeros(n_pages, dtype=bool)
    target_groups = [
        index
        for index, group in enumerate(profile.groups)
        if group.language is profile.target_language
    ]
    if profile.isolated_site_fraction > 0:
        for host in hosts:
            if host.group_index in target_groups and rng.random() < profile.isolated_site_fraction:
                isolated_mask[host.page_slice] = True

    sources, targets = build_edges(
        profile, hosts, lang_code, html_mask, attractiveness, rng, isolated_mask=isolated_mask
    )
    per_page_targets = outlinks_per_page(n_pages, sources, targets)

    # Assemble URLs, then records.
    urls = _page_urls(hosts, n_pages)
    records = []
    for page in range(n_pages):
        group = profile.groups[int(lang_code[page])]
        ok = bool(ok_mask[page])
        html = bool(html_mask[page])
        if ok and not html:
            content_type = _NON_HTML_TYPES[page % len(_NON_HTML_TYPES)]
        else:
            content_type = HTML_CONTENT_TYPE
        charset: str | None = None
        if ok and html:
            charset = group.charset_choices[int(charset_index[page])].charset
        outlinks: tuple[str, ...] = ()
        if ok and html:
            outlinks = tuple(urls[target] for target in per_page_targets[page])
        records.append(
            PageRecord(
                url=urls[page],
                status=int(statuses[page]),
                content_type=content_type,
                charset=charset,
                true_language=group.language,
                outlinks=outlinks,
                size=int(sizes[page]) if ok and html else 0,
            )
        )

    seed_urls = _select_seeds(
        profile, hosts, lang_code, html_mask & ~isolated_mask, attractiveness, urls
    )

    return GeneratedUniverse(
        profile=profile,
        crawl_log=CrawlLog(records),
        seed_urls=seed_urls,
        hosts=tuple(hosts),
    )


def _page_urls(hosts: list[Host], n_pages: int) -> list[str]:
    urls: list[str] = [""] * n_pages
    for host in hosts:
        for offset in range(host.n_pages):
            urls[host.first_page + offset] = host.page_url(offset)
    return urls


def _select_seeds(
    profile: DatasetProfile,
    hosts: list[Host],
    lang_code: np.ndarray,
    html_mask: np.ndarray,
    attractiveness: np.ndarray,
    urls: list[str],
) -> tuple[str, ...]:
    """Pick seed URLs: popular target-language OK HTML pages, spread over
    distinct hosts — the way an archivist would seed from known portals."""
    target_groups = {
        index
        for index, group in enumerate(profile.groups)
        if group.language is profile.target_language
    }
    candidate_mask = html_mask & np.isin(lang_code, list(target_groups))
    candidates = np.nonzero(candidate_mask)[0]
    if len(candidates) == 0:
        raise_from = f"profile {profile.name!r} produced no target-language HTML pages"
        raise RuntimeError(raise_from)
    order = candidates[np.argsort(attractiveness[candidates])[::-1]]

    host_of_page = np.empty(len(lang_code), dtype=np.int64)
    for host in hosts:
        host_of_page[host.page_slice] = host.index

    seeds: list[str] = []
    used_hosts: set[int] = set()
    for page in order:
        host_index = int(host_of_page[page])
        if host_index in used_hosts:
            continue
        used_hosts.add(host_index)
        seeds.append(urls[int(page)])
        if len(seeds) == profile.n_seeds:
            break
    # Not enough distinct hosts: top up with the best remaining pages.
    if len(seeds) < profile.n_seeds:
        chosen = set(seeds)
        for page in order:
            url = urls[int(page)]
            if url not in chosen:
                seeds.append(url)
                chosen.add(url)
            if len(seeds) == profile.n_seeds:
                break
    return tuple(seeds)

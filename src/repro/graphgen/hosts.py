"""The host (web site) model.

Sites are the unit of language in the generator: each host has a dominant
language, pages live contiguously on their host, and host sizes follow a
heavy-tailed distribution so a few portals own a large share of the
universe — the structure the paper's "language locality" observation
comes from (Thai pages are linked by other Thai pages because they share
sites and neighbourhoods).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.charset.languages import Language
from repro.graphgen.config import DatasetProfile

#: TLD flavors per dominant language, purely cosmetic (the classifier
#: never looks at URLs; readable hosts make debugging traces pleasant).
_TLDS = {
    Language.THAI: (".co.th", ".ac.th", ".or.th", ".in.th"),
    Language.JAPANESE: (".co.jp", ".ne.jp", ".ac.jp", ".or.jp"),
    Language.KOREAN: (".co.kr", ".ne.kr", ".ac.kr", ".or.kr"),
    Language.OTHER: (".com", ".net", ".org", ".info"),
    Language.UNKNOWN: (".example",),
}

#: Pareto shape for host sizes; ~1.1 gives a few very large portals.
_HOST_SIZE_ALPHA = 1.1


@dataclass(frozen=True, slots=True)
class Host:
    """One site: a contiguous block of page ids with a dominant language."""

    index: int
    name: str
    group_index: int
    language: Language
    first_page: int
    n_pages: int

    @property
    def page_slice(self) -> slice:
        return slice(self.first_page, self.first_page + self.n_pages)

    def page_url(self, offset: int) -> str:
        """URL of the host's ``offset``-th page (offset 0 is the root)."""
        if offset == 0:
            return f"http://{self.name}/"
        return f"http://{self.name}/p/{offset}.html"


def build_hosts(profile: DatasetProfile, rng: np.random.Generator) -> list[Host]:
    """Create the host table: names, languages and page allocations.

    Page counts are proportional to Pareto-distributed host weights, with
    every host getting at least one page and the counts summing exactly
    to ``profile.n_pages``.
    """
    n_hosts = profile.n_hosts

    group_weights = np.array([group.weight for group in profile.groups], dtype=np.float64)
    group_weights /= group_weights.sum()
    group_of_host = rng.choice(len(profile.groups), size=n_hosts, p=group_weights)

    raw_sizes = rng.pareto(_HOST_SIZE_ALPHA, size=n_hosts) + 1.0
    # Proportional allocation with a floor of one page per host.
    spare = profile.n_pages - n_hosts
    shares = raw_sizes / raw_sizes.sum() * spare
    counts = np.floor(shares).astype(np.int64) + 1
    # Distribute the rounding remainder by largest fractional part.
    remainder = profile.n_pages - int(counts.sum())
    if remainder > 0:
        order = np.argsort(shares - np.floor(shares))[::-1]
        counts[order[:remainder]] += 1

    hosts: list[Host] = []
    first_page = 0
    for index in range(n_hosts):
        group_index = int(group_of_host[index])
        language = profile.groups[group_index].language
        tlds = _TLDS[language]
        tld = tlds[int(rng.integers(0, len(tlds)))]
        hosts.append(
            Host(
                index=index,
                name=f"h{index:05d}{tld}",
                group_index=group_index,
                language=language,
                first_page=first_page,
                n_pages=int(counts[index]),
            )
        )
        first_page += int(counts[index])
    return hosts

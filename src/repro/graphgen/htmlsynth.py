"""On-demand HTML body synthesis.

Renders a :class:`~repro.webspace.page.PageRecord` into actual HTML bytes
in the page's declared encoding — META declaration included — so the
simulator's ``meta`` and ``detector`` classification modes operate on the
same raw material a live crawler would see.

Rendering is a pure function of the record: the RNG is seeded from a hash
of the URL, so the same record always yields the same bytes regardless of
fetch order.  Pages whose declared charset disagrees with their content
language are rendered honestly: a Thai page declaring UTF-8 contains Thai
text *encoded as UTF-8* — which is exactly why the charset-based
classifier misjudges it (paper §3, observation 3).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.charset.languages import PYTHON_CODECS, Language, canonical_charset
from repro.graphgen.linkcontext import link_context_text
from repro.graphgen.textgen import TextGenerator, flavor_for
from repro.webspace.page import PageRecord

#: Encoding used when the page declares nothing, per content language.
_DEFAULT_CODECS = {
    Language.THAI: "TIS-620",
    Language.JAPANESE: "SHIFT_JIS",
    Language.KOREAN: "EUC-KR",
    Language.OTHER: "ISO-8859-1",
    Language.UNKNOWN: "ISO-8859-1",
}

_ACCENTED_CHARSETS = frozenset({"ISO-8859-1", "WINDOWS-1252"})


def _page_seed(url: str) -> int:
    digest = hashlib.blake2b(url.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HtmlSynthesizer:
    """Callable ``record -> bytes`` satisfying the BodySynthesizer protocol."""

    def __init__(self, links_per_paragraph: int = 3) -> None:
        self._links_per_paragraph = links_per_paragraph

    def __call__(self, record: PageRecord) -> bytes:
        return self.render(record)

    def encoding_for(self, record: PageRecord) -> str:
        """Canonical charset the body will actually be encoded in."""
        declared = canonical_charset(record.charset)
        if declared is not None:
            return declared
        return _DEFAULT_CODECS[record.true_language]

    def render(self, record: PageRecord) -> bytes:
        """Render the record to encoded HTML bytes (deterministic)."""
        charset = self.encoding_for(record)
        codec = PYTHON_CODECS[charset]
        rng = np.random.default_rng(_page_seed(record.url))
        accented = charset in _ACCENTED_CHARSETS
        text = TextGenerator(flavor_for(record.true_language, accented=accented), rng)

        parts: list[str] = ["<!DOCTYPE html>\n<html>\n<head>\n"]
        if record.charset is not None:
            parts.append(
                f'<meta http-equiv="Content-Type" '
                f'content="text/html; charset={record.charset}">\n'
            )
        parts.append(f"<title>{text.phrase()}</title>\n</head>\n<body>\n")
        parts.append(f"<h1>{text.phrase()}</h1>\n")

        # Interleave prose paragraphs with the record's outlinks so link
        # extraction from the body reproduces the crawl log exactly.  On
        # cue-carrying records (link_cues column present) anchor markup
        # comes from the shared per-link helper instead of the page text
        # stream, so body-parsed anchor text matches the record-mode
        # context synthesis byte for byte; cue-less records keep the
        # original rendering unchanged.
        links = list(record.outlinks)
        cues = record.link_cues

        def anchor_markup(index: int, short: bool = False) -> str:
            href = links[index]
            if cues is None:
                return f'<a href="{href}">{text.phrase(1, 2 if short else 3)}</a>'
            anchor, around = link_context_text(
                record.url, href, record.true_language, cues[index]
            )
            markup = f'<a href="{href}">{anchor}</a>'
            return f"{markup} {around}" if around else markup

        body_chars = 0
        target_chars = max(400, record.size // 2)
        link_cursor = 0
        while body_chars < target_chars or link_cursor < len(links):
            paragraph = text.paragraph()
            anchors = []
            for _ in range(self._links_per_paragraph):
                if link_cursor >= len(links):
                    break
                anchors.append(anchor_markup(link_cursor))
                link_cursor += 1
            parts.append(f"<p>{paragraph} {' '.join(anchors)}</p>\n")
            body_chars += len(paragraph)
            if body_chars > 4 * target_chars:  # safety valve on huge link lists
                remaining = (
                    anchor_markup(index, short=True)
                    for index in range(link_cursor, len(links))
                )
                parts.append(f"<p>{' '.join(remaining)}</p>\n")
                break
        parts.append("</body>\n</html>\n")
        html = "".join(parts)
        return html.encode(codec, errors="xmlcharrefreplace")

"""Per-link anchor/around text: cue encoding and deterministic synthesis.

The generator can mark individual links with *textual cues* — anchor text
or surrounding text written in the **target page's** language
(``DatasetProfile.anchor_cue_probability`` / ``around_cue_probability``).
This module owns both halves of that feature:

- the **cue byte** packed per link into ``PageRecord.link_cues`` (and the
  optional ``link_cues`` page-store column): the low three bits name the
  cue language (index+1 into :data:`CUE_LANGUAGES`; 0 = no cue), bit
  ``0x08`` flags an anchor-text cue and bit ``0x10`` an around-text cue;

- the **deterministic text** for a link, a pure function of
  ``(source_url, target_url)`` via a keyed blake2b seed.  Both the
  record-mode context synthesis (:func:`synthesize_link_contexts`, used
  by :meth:`repro.core.visitor.Visitor.extract_contexts`) and the HTML
  body synthesizer's cue mode draw from this one function, so the anchor
  text a strategy sees is the same whether the run reads records or
  parses synthesized bodies.

The byte layout is part of the on-disk dataset format: the order of
:data:`CUE_LANGUAGES` must never change.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.charset.languages import Language
from repro.graphgen.textgen import TextGenerator, flavor_for
from repro.urlkit.extract import LinkContext
from repro.webspace.page import PageRecord

#: Cue-language table indexed by (cue_byte & _LANGUAGE_MASK) - 1.
#: Order is frozen: it is baked into stored ``link_cues`` columns.
CUE_LANGUAGES: tuple[Language, ...] = (
    Language.JAPANESE,
    Language.THAI,
    Language.KOREAN,
    Language.OTHER,
    Language.UNKNOWN,
)

_LANGUAGE_MASK = 0x07
ANCHOR_CUE_BIT = 0x08
AROUND_CUE_BIT = 0x10

_LANGUAGE_CODES = {language: index + 1 for index, language in enumerate(CUE_LANGUAGES)}


def cue_byte(language: Language, *, anchor: bool = False, around: bool = False) -> int:
    """Pack one link's cue into a byte; 0 if neither cue fires."""
    if not (anchor or around):
        return 0
    value = _LANGUAGE_CODES[language]
    if anchor:
        value |= ANCHOR_CUE_BIT
    if around:
        value |= AROUND_CUE_BIT
    return value


def cue_language_code(language: Language) -> int:
    """The 3-bit language code for ``language`` (for vectorised packing)."""
    return _LANGUAGE_CODES[language]


def cue_language(cue: int) -> Language | None:
    """The cue language named by a cue byte, or None for cue 0."""
    code = cue & _LANGUAGE_MASK
    if code == 0:
        return None
    return CUE_LANGUAGES[code - 1]


def has_anchor_cue(cue: int) -> bool:
    return bool(cue & ANCHOR_CUE_BIT)


def has_around_cue(cue: int) -> bool:
    return bool(cue & AROUND_CUE_BIT)


def _link_seed(source_url: str, target_url: str) -> int:
    payload = f"{source_url}\x1f{target_url}".encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def link_context_text(
    source_url: str,
    target_url: str,
    source_language: Language,
    cue: int,
) -> tuple[str, str]:
    """Deterministic ``(anchor_text, around_words)`` for one link.

    The anchor phrase is drawn in the cue language when the anchor-cue
    bit is set, otherwise in the source page's language; ``around_words``
    is a short cue-language run when the around-cue bit is set, else
    ``""``.  Pure function of the arguments — the body synthesizer and
    the record-mode context synthesis both call it, and therefore agree.
    """
    rng = np.random.default_rng(_link_seed(source_url, target_url))
    anchor_lang = source_language
    if has_anchor_cue(cue):
        anchor_lang = cue_language(cue) or source_language
    anchor = TextGenerator(flavor_for(anchor_lang), rng).phrase(1, 3)
    around = ""
    if has_around_cue(cue):
        around_lang = cue_language(cue) or source_language
        around = " ".join(TextGenerator(flavor_for(around_lang), rng).words(3))
    return anchor, around


def synthesize_link_contexts(record: PageRecord) -> tuple[LinkContext, ...]:
    """Link contexts for a record, without rendering or parsing a body.

    One :class:`~repro.urlkit.extract.LinkContext` per
    ``record.outlinks`` entry, in order.  Records without a ``link_cues``
    column (legacy datasets, cue knobs at 0) still yield contexts — the
    anchors are simply all in the source page's language, carrying no
    cue signal.  ``around_text`` embeds the anchor plus a short run of
    source-language words, mimicking what a body parse would capture
    around the anchor.
    """
    cues = record.link_cues
    source_language = record.true_language
    contexts: list[LinkContext] = []
    for index, url in enumerate(record.outlinks):
        cue = cues[index] if cues is not None else 0
        anchor, around_words = link_context_text(record.url, url, source_language, cue)
        rng = np.random.default_rng(_link_seed(record.url, url) ^ 0xA5A5A5A5)
        prose = " ".join(TextGenerator(flavor_for(source_language), rng).words(4))
        around = " ".join(part for part in (prose, anchor, around_words) if part)
        contexts.append(LinkContext(url=url, anchor_text=anchor, around_text=around))
    return tuple(contexts)

"""Edge generation: who links to whom.

Links are sampled from a three-way mixture, per source page:

1. with probability ``intra_host_fraction`` — a page on the same host;
2. otherwise, with probability ``language_locality`` — a page on some
   host of the *source page's* language (language locality);
3. otherwise — a page of a different language, chosen by group weight.

Within any candidate pool, targets are drawn proportionally to a
per-page Pareto "attractiveness", which yields the heavy-tailed
in-degree distribution of real web graphs (hubs, portals) and gives the
capture crawl natural entry points.

Everything is vectorised with numpy: per-host batches for intra-host
links, per-language-pair batches for the rest.
"""

from __future__ import annotations

import numpy as np

from repro.graphgen.config import DatasetProfile
from repro.graphgen.hosts import Host


class _WeightedPool:
    """Attractiveness-weighted sampling over a fixed set of page ids."""

    __slots__ = ("page_ids", "_cumulative")

    def __init__(self, page_ids: np.ndarray, attractiveness: np.ndarray) -> None:
        self.page_ids = page_ids
        weights = attractiveness[page_ids]
        self._cumulative = np.cumsum(weights)

    def __len__(self) -> int:
        return len(self.page_ids)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if len(self.page_ids) == 0 or count == 0:
            return np.empty(0, dtype=np.int64)
        total = self._cumulative[-1]
        draws = rng.random(count) * total
        indices = np.searchsorted(self._cumulative, draws, side="right")
        indices = np.minimum(indices, len(self.page_ids) - 1)
        return self.page_ids[indices]


def sample_out_degrees(
    profile: DatasetProfile,
    source_mask: np.ndarray,
    rng: np.random.Generator,
    lang_code: np.ndarray | None = None,
) -> np.ndarray:
    """Lognormal out-degrees for source (OK HTML) pages, 0 elsewhere.

    When ``lang_code`` is given, each page's degree is scaled by its
    language group's ``out_degree_scale`` before clipping.
    """
    n_pages = len(source_mask)
    degrees = np.zeros(n_pages, dtype=np.int64)
    n_sources = int(source_mask.sum())
    if n_sources == 0:
        return degrees
    raw = rng.lognormal(profile.out_degree_mu, profile.out_degree_sigma, size=n_sources)
    if lang_code is not None:
        scales = np.array([group.out_degree_scale for group in profile.groups])
        raw *= scales[lang_code[source_mask]]
    degrees[source_mask] = np.clip(np.round(raw), 0, profile.max_out_degree).astype(np.int64)
    return degrees


def build_edges(
    profile: DatasetProfile,
    hosts: list[Host],
    lang_code: np.ndarray,
    source_mask: np.ndarray,
    attractiveness: np.ndarray,
    rng: np.random.Generator,
    isolated_mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample all link targets.

    Args:
        profile: the generator recipe.
        hosts: host table (pages contiguous per host).
        lang_code: per-page language group index (after deviation).
        source_mask: True for pages that emit links (OK HTML).
        attractiveness: per-page positive link-attractiveness weights.
        rng: the generator's RNG stream.
        isolated_mask: pages on isolated sites; they are excluded from
            the *same-language* target pools, so their only cross-host
            inlinks come from pages of other languages (paper §3
            observation 2).

    Returns:
        ``(sources, targets)`` — parallel int64 arrays, one entry per
        link slot, ordered by source page id.  Self-links and duplicate
        (source, target) pairs may still occur; the caller dedupes when
        assembling page records.
    """
    n_pages = len(lang_code)
    n_groups = len(profile.groups)

    degrees = sample_out_degrees(profile, source_mask, rng, lang_code=lang_code)
    sources = np.repeat(np.arange(n_pages, dtype=np.int64), degrees)
    total_slots = len(sources)
    targets = np.empty(total_slots, dtype=np.int64)
    if total_slots == 0:
        return sources, targets

    # Mixture category per slot: 0 = intra-host, 1 = same language,
    # 2 = other language.
    draws = rng.random(total_slots)
    category = np.full(total_slots, 2, dtype=np.int8)
    category[draws < profile.intra_host_fraction + (1 - profile.intra_host_fraction) * profile.language_locality] = 1
    category[draws < profile.intra_host_fraction] = 0

    # --- intra-host slots: batched per host (pages are contiguous). -------
    host_of_page = np.empty(n_pages, dtype=np.int64)
    for host in hosts:
        host_of_page[host.page_slice] = host.index
    intra = category == 0
    if intra.any():
        intra_positions = np.nonzero(intra)[0]
        slot_host = host_of_page[sources[intra_positions]]
        order = np.argsort(slot_host, kind="stable")
        sorted_positions = intra_positions[order]
        sorted_hosts = slot_host[order]
        boundaries = np.nonzero(np.diff(sorted_hosts))[0] + 1
        for chunk_positions, host_index in zip(
            np.split(sorted_positions, boundaries),
            sorted_hosts[np.concatenate(([0], boundaries))] if len(sorted_hosts) else [],
        ):
            host = hosts[int(host_index)]
            local = np.arange(host.first_page, host.first_page + host.n_pages, dtype=np.int64)
            pool = _WeightedPool(local, attractiveness)
            targets[chunk_positions] = pool.sample(len(chunk_positions), rng)

    # --- language-directed slots: batched per (category, source group). ---
    # Two pool families: cross-language links may target any page of the
    # chosen language, while same-language links avoid isolated sites.
    if isolated_mask is None:
        isolated_mask = np.zeros(n_pages, dtype=bool)
    cross_pools = [
        _WeightedPool(np.nonzero(lang_code == group)[0].astype(np.int64), attractiveness)
        for group in range(n_groups)
    ]
    same_pools = [
        _WeightedPool(
            np.nonzero((lang_code == group) & ~isolated_mask)[0].astype(np.int64),
            attractiveness,
        )
        for group in range(n_groups)
    ]
    group_weights = np.array([group.weight for group in profile.groups], dtype=np.float64)

    for source_group in range(n_groups):
        same = (category == 1) & (lang_code[sources] == source_group)
        if same.any():
            pool = same_pools[source_group]
            if not len(pool):  # every site of this language is isolated
                pool = cross_pools[source_group]
            if len(pool):
                targets[same] = pool.sample(int(same.sum()), rng)
            else:  # no page of this language: fall back to anywhere
                targets[same] = rng.integers(0, n_pages, size=int(same.sum()))

        other = (category == 2) & (lang_code[sources] == source_group)
        if other.any():
            weights = group_weights.copy()
            weights[source_group] = 0.0
            if weights.sum() == 0:  # single-language universe
                weights[source_group] = 1.0
            weights /= weights.sum()
            slot_count = int(other.sum())
            chosen_groups = rng.choice(n_groups, size=slot_count, p=weights)
            slot_positions = np.nonzero(other)[0]
            for target_group in range(n_groups):
                chunk = slot_positions[chosen_groups == target_group]
                if len(chunk) == 0:
                    continue
                pool = cross_pools[target_group]
                if len(pool):
                    targets[chunk] = pool.sample(len(chunk), rng)
                else:
                    targets[chunk] = rng.integers(0, n_pages, size=len(chunk))

    return sources, targets


def links_csr(
    n_pages: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Compress flat edge arrays into CSR ``(offsets, targets)`` form.

    Self-links are dropped; duplicate targets are removed preserving
    first-occurrence order (a page links to each URL at most once, which
    keeps the crawl log and re-extraction from synthesized bodies in
    exact agreement).  One vectorised pass instead of a per-page loop:
    because ``sources`` arrives grouped ascending, deduping on the
    global ``source * n_pages + target`` key and re-sorting the kept
    positions preserves both the source grouping and the within-source
    first-occurrence order, so the CSR rows are byte-identical to the
    old per-chunk dedupe.

    Row ``p`` of the result is ``targets[offsets[p]:offsets[p + 1]]``;
    it is also the page-store link arena's row layout
    (:mod:`repro.webspace.store`).
    """
    offsets = np.zeros(n_pages + 1, dtype=np.int64)
    if len(sources) == 0:
        return offsets, np.empty(0, dtype=np.int64)
    keep = sources != targets
    kept_sources = sources[keep]
    kept_targets = targets[keep]
    key = kept_sources * np.int64(n_pages) + kept_targets
    _, first_index = np.unique(key, return_index=True)
    first_index = np.sort(first_index)
    kept_sources = kept_sources[first_index]
    kept_targets = kept_targets[first_index]
    counts = np.bincount(kept_sources, minlength=n_pages)
    np.cumsum(counts, out=offsets[1:])
    return offsets, kept_targets.astype(np.int64, copy=False)


def outlinks_per_page(
    n_pages: int, sources: np.ndarray, targets: np.ndarray
) -> list[np.ndarray]:
    """Per-source target arrays (list-of-rows view of :func:`links_csr`)."""
    offsets, csr_targets = links_csr(n_pages, sources, targets)
    return [
        csr_targets[offsets[page] : offsets[page + 1]] for page in range(n_pages)
    ]

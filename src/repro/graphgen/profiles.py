"""Calibrated dataset profiles mirroring the paper's two crawl logs.

Targets taken from the paper (Table 3 and §5.1):

===========  ==========================  =========================
Property     Thai dataset                Japanese dataset
===========  ==========================  =========================
URLs         ~14M (OK + non-OK)          ~110M
OK HTML      3,886,944 (≈28% of URLs)    95,183,978 (≈87% of URLs)
Relevant     1,467,643 (ratio ≈ 0.35)    67,983,623 (ratio ≈ 0.71)
Specificity  low                         high
Captured by  soft-focused + limited-N    hard-focused + limited-N
===========  ==========================  =========================

Default scale is 1/100 (Thai) and 1/1000 (Japanese) so a full benchmark
suite runs on a laptop; :meth:`DatasetProfile.scaled` changes that.  The
*ratios* above, not the absolute counts, are what the experiments need.
"""

from __future__ import annotations

from repro.charset.languages import Language
from repro.errors import ConfigError
from repro.graphgen.config import CharsetChoice, DatasetProfile, LanguageGroup

#: How Thai pages declare their encoding.  TIS-620 dominates, a tail uses
#: WINDOWS-874; ~10% are "mislabeled" in the paper's sense — UTF-8 or no
#: declaration, either of which the charset classifier maps to OTHER.
_THAI_CHARSETS = (
    CharsetChoice("TIS-620", 0.68),
    CharsetChoice("WINDOWS-874", 0.18),
    CharsetChoice("ISO-8859-11", 0.04),
    CharsetChoice("UTF-8", 0.05),
    CharsetChoice(None, 0.05),
)

#: Japanese declarations: the three Table 1 encodings plus a small
#: mislabeled tail.
_JAPANESE_CHARSETS = (
    CharsetChoice("SHIFT_JIS", 0.48),
    CharsetChoice("EUC-JP", 0.34),
    CharsetChoice("ISO-2022-JP", 0.08),
    CharsetChoice("UTF-8", 0.05),
    CharsetChoice(None, 0.05),
)

#: English-language hosts (the bulk of the irrelevant web).
_ENGLISH_CHARSETS = (
    CharsetChoice("ISO-8859-1", 0.42),
    CharsetChoice("US-ASCII", 0.18),
    CharsetChoice("WINDOWS-1252", 0.20),
    CharsetChoice("UTF-8", 0.12),
    CharsetChoice(None, 0.08),
)


def thai_profile(seed: int = 20050304) -> DatasetProfile:
    """The low-language-specificity dataset (paper's Thai web snapshot).

    Host-language weights are set so that, after per-page charset
    sampling and capture, the declared-relevant ratio of OK HTML pages
    lands near the paper's 0.35.  The minority Japanese group mirrors
    the real Thai web's foreign-language neighbourhoods and gives the
    locality model a third language to route through.
    """
    profile = DatasetProfile(
        name="thai",
        seed=seed,
        target_language=Language.THAI,
        n_pages=140_000,
        n_hosts=1_400,
        groups=(
            LanguageGroup(Language.THAI, 0.40, _THAI_CHARSETS, out_degree_scale=0.8),
            LanguageGroup(Language.OTHER, 0.54, _ENGLISH_CHARSETS, out_degree_scale=2.2),
            LanguageGroup(Language.JAPANESE, 0.06, _JAPANESE_CHARSETS),
        ),
        language_locality=0.88,
        intra_host_fraction=0.55,
        isolated_site_fraction=0.18,
        out_degree_mu=2.0,
        ok_fraction=0.42,
        html_fraction=0.80,
        n_seeds=10,
    )
    profile.validate()
    return profile


def japanese_profile(seed: int = 20050304) -> DatasetProfile:
    """The high-language-specificity dataset (paper's Japanese snapshot).

    Captured hard-focused in the original work, hence the much higher OK
    fraction and relevance ratio: the capture crawl already filtered the
    universe down to a Japanese-dominated region.
    """
    profile = DatasetProfile(
        name="japanese",
        seed=seed,
        target_language=Language.JAPANESE,
        n_pages=110_000,
        n_hosts=1_100,
        groups=(
            LanguageGroup(Language.JAPANESE, 0.78, _JAPANESE_CHARSETS),
            LanguageGroup(Language.OTHER, 0.20, _ENGLISH_CHARSETS, out_degree_scale=1.5),
            LanguageGroup(Language.THAI, 0.02, _THAI_CHARSETS),
        ),
        language_locality=0.93,
        intra_host_fraction=0.55,
        isolated_site_fraction=0.08,
        ok_fraction=0.90,
        html_fraction=0.96,
        n_seeds=10,
    )
    profile.validate()
    return profile


#: Korean declarations: EUC-KR dominates 2005-era Korean pages.
_KOREAN_CHARSETS = (
    CharsetChoice("EUC-KR", 0.82),
    CharsetChoice("ISO-2022-KR", 0.03),
    CharsetChoice("UTF-8", 0.08),
    CharsetChoice(None, 0.07),
)


def korean_profile(seed: int = 20050304) -> DatasetProfile:
    """A Korean web space — beyond the paper, demonstrating that the
    method generalises to another national archive with only a new
    charset row (Table 1 extension) and a new detector model.

    Shaped like a mid-specificity web: between the paper's Thai and
    Japanese datasets.  Not calibrated against published numbers (there
    are none); experiments on it assert orderings only.
    """
    profile = DatasetProfile(
        name="korean",
        seed=seed,
        target_language=Language.KOREAN,
        n_pages=120_000,
        n_hosts=1_200,
        groups=(
            LanguageGroup(Language.KOREAN, 0.58, _KOREAN_CHARSETS),
            LanguageGroup(Language.OTHER, 0.38, _ENGLISH_CHARSETS, out_degree_scale=1.6),
            LanguageGroup(Language.JAPANESE, 0.04, _JAPANESE_CHARSETS),
        ),
        language_locality=0.90,
        intra_host_fraction=0.55,
        isolated_site_fraction=0.12,
        ok_fraction=0.60,
        html_fraction=0.85,
        n_seeds=10,
    )
    profile.validate()
    return profile


_FACTORIES = {
    "thai": thai_profile,
    "japanese": japanese_profile,
    "korean": korean_profile,
}


def profile_by_name(name: str, seed: int | None = None) -> DatasetProfile:
    """Look up a named profile (``thai`` or ``japanese``)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown profile {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    if seed is None:
        return factory()
    return factory(seed=seed)

"""Streaming universe → columnar store writer.

The bounded-memory generation path: :func:`generate_columns` emits the
universe as numpy columns, and this module maps those columns straight
into the on-disk layout of :class:`repro.webspace.store.PageStore` —
statuses, table ids and the CSR link arena are vectorised column
transforms, and URLs are encoded host-by-host into the flat arena.  No
:class:`~repro.webspace.page.PageRecord` (and no outlink tuple of
strings) is ever constructed, which is what keeps a 10⁶-page build in
tens of megabytes.

A universe store's URL table is exactly its page table (every link
target is a generated page), so url-id == page-id and there are no
dangling entries — captured stores, built by
:func:`repro.experiments.datasets.build_dataset_store`, are where
dangling targets appear.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graphgen.config import DatasetProfile
from repro.graphgen.generator import _NON_HTML_TYPES, UniverseColumns, generate_columns
from repro.webspace.page import HTML_CONTENT_TYPE
from repro.webspace.store import write_store


def universe_store_meta(profile: DatasetProfile, seed_urls: tuple[str, ...]) -> dict:
    """The store-header ``meta`` object for a raw (uncaptured) universe."""
    return {
        "name": profile.name,
        "profile": profile.to_json_dict(),
        "seed_urls": list(seed_urls),
        "capture_kind": "none",
        "capture_n": 0,
    }


def write_columns_store(columns: UniverseColumns, path: str | Path) -> None:
    """Write generated columns to a page-store file (no record objects)."""
    profile = columns.profile
    n_pages = columns.n_pages
    ok = columns.ok_mask
    html = columns.html_mask

    # Content types: id 0 is text/html; OK non-HTML pages rotate through
    # the fixed non-HTML table by page id (generator convention).
    content_types = [HTML_CONTENT_TYPE, *_NON_HTML_TYPES]
    ctype = np.zeros(n_pages, dtype=np.int16)
    non_html = ok & ~html
    page_ids = np.arange(n_pages, dtype=np.int64)
    ctype[non_html] = (1 + page_ids[non_html] % len(_NON_HTML_TYPES)).astype(np.int16)

    # Charsets: one global table over every group's choices, plus a
    # (group, choice) → global-id lookup; None stays -1 (no declaration).
    charsets: list[str] = []
    charset_ids: dict[str, int] = {}
    max_choices = max(len(group.charset_choices) for group in profile.groups)
    choice_map = np.full((len(profile.groups), max_choices), -1, dtype=np.int16)
    for group_index, group in enumerate(profile.groups):
        for choice_index, choice in enumerate(group.charset_choices):
            if choice.charset is None:
                continue
            table_id = charset_ids.get(choice.charset)
            if table_id is None:
                table_id = len(charsets)
                charset_ids[choice.charset] = table_id
                charsets.append(choice.charset)
            choice_map[group_index, choice_index] = table_id
    charset = np.full(n_pages, -1, dtype=np.int16)
    declared = ok & html
    charset[declared] = choice_map[
        columns.lang_code[declared], columns.charset_index[declared]
    ]

    # True languages: first-appearance table over the group languages.
    languages: list[str] = []
    language_ids: dict[str, int] = {}
    group_lang = np.zeros(len(profile.groups), dtype=np.int8)
    for group_index, group in enumerate(profile.groups):
        value = group.language.value
        table_id = language_ids.get(value)
        if table_id is None:
            table_id = len(languages)
            language_ids[value] = table_id
            languages.append(value)
        group_lang[group_index] = table_id
    lang = group_lang[columns.lang_code]

    size = np.where(ok & html, columns.sizes, 0).astype(np.int64)

    # URL arena: page urls in id order (pages are contiguous per host,
    # hosts ascend), encoded straight into one byte buffer.
    url_offsets = np.zeros(n_pages + 1, dtype=np.int64)
    chunks: list[bytes] = []
    position = 0
    page = 0
    for host in columns.hosts:
        for offset in range(host.n_pages):
            encoded = host.page_url(offset).encode("utf-8")
            chunks.append(encoded)
            position += len(encoded)
            page += 1
            url_offsets[page] = position
    arena = np.frombuffer(b"".join(chunks), dtype=np.uint8)

    write_store(
        path,
        status=columns.statuses.astype(np.int16),
        ctype=ctype,
        charset=charset,
        lang=lang.astype(np.int8),
        size=size,
        link_offsets=columns.link_offsets,
        link_arena=columns.link_targets,
        url_offsets=url_offsets,
        url_arena=arena,
        content_types=content_types,
        charsets=charsets,
        languages=languages,
        meta=universe_store_meta(profile, columns.seed_urls()),
        link_cues=columns.link_cues,
    )


def write_universe_store(profile: DatasetProfile, path: str | Path) -> None:
    """Generate ``profile``'s universe directly into a store file."""
    write_columns_store(generate_columns(profile), path)

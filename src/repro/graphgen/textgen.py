"""Deterministic text generation in Japanese, Thai and Western flavors.

The HTML synthesizer needs page bodies whose *bytes* genuinely look like
the declared language — otherwise the byte-distribution charset detector
would be tested against strawmen.  Vocabularies are built once per
flavor from syllable inventories with a fixed internal seed; per-page
variation comes entirely from the RNG the caller passes in, so a page's
text is a pure function of its seed.

Word frequencies are Zipf-distributed (rank^-1.1), matching the shape of
natural-language word distributions closely enough for frequency-based
detection to behave as it does on real text.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.charset.languages import Language

# --- character inventories -------------------------------------------------

_HIRAGANA = (
    "あいうえおかきくけこさしすせそたちつてとなにぬねのはひふへほ"
    "まみむめもやゆよらりるれろわをんがぎぐげござじずぜぞだぢづでど"
    "ばびぶべぼぱぴぷぺぽっゃゅょ"
)
_KATAKANA = (
    "アイウエオカキクケコサシスセソタチツテトナニヌネノハヒフヘホ"
    "マミムメモヤユヨラリルレロワヲンガギグゲゴザジズゼゾダヂヅデド"
    "バビブベボパピプペポッャュョー"
)
_KANJI = (
    "日本語学校時間人年月大小中国東京新聞電車会社仕事世界情報検索"
    "言語文字資料図書質問回答方法問題結果研究開発利用公開最新無料"
    "案内地域文化歴史自然環境技術経済政治社会教育科学音楽映画旅行"
    "料理健康生活家族友達写真画像動画商品販売価格注文送料店舗営業"
)

#: Common hangul syllables (all present in KS X 1001, hence EUC-KR-safe).
_HANGUL = (
    "가나다라마바사아자차카타파하거너더러머버서어저처커터퍼허"
    "고노도로모보소오조초코토포호구누두루무부수우주추쿠투푸후"
    "그느드르므브스으즈츠크트프흐기니디리미비시이지치키티피히"
    "는을를에서의로와과도만한했있었것들니습내보기게해지난"
)

#: Thai consonants with rough real-text frequency weights: the common
#: letters (น ร ก ง ม ...) dominate genuine prose while ฎ ฏ ฐ ฮ are
#: rare — a distribution the charset detector's frequency model relies
#: on to tell Thai from CJK bytes that happen to land in the Thai range.
_THAI_CONSONANT_WEIGHTS = {
    "ก": 8, "ข": 2, "ค": 8, "ง": 8, "จ": 8, "ฉ": 2, "ช": 8, "ซ": 2,
    "ญ": 0.5, "ฎ": 0.5, "ฏ": 0.5, "ฐ": 0.5, "ณ": 0.5, "ด": 8, "ต": 8,
    "ถ": 2, "ท": 8, "ธ": 2, "น": 8, "บ": 8, "ป": 8, "ผ": 2, "ฝ": 2,
    "พ": 8, "ฟ": 2, "ภ": 2, "ม": 8, "ย": 8, "ร": 8, "ล": 8, "ว": 8,
    "ศ": 2, "ษ": 2, "ส": 8, "ห": 8, "อ": 8, "ฮ": 0.5,
}
_THAI_CONSONANTS = "".join(_THAI_CONSONANT_WEIGHTS)
#: Above/below combining vowels: written after the consonant, and a tone
#: mark may stack on top of them.
_THAI_COMBINING_VOWELS = "ิีึืุู"
#: Spacing vowels: follow the syllable; a tone mark always precedes them
#: (it attaches to the consonant), never follows.
_THAI_SPACING_VOWELS = "ะา"
_THAI_LEADING_VOWELS = "เแโใไ"
_THAI_TONES = "่้๊๋"

_ENGLISH_WORDS = (
    "the web page site home news search index about contact link list "
    "free online service world time year people information system data "
    "computer network internet archive library research project report "
    "public national digital resource document history language country "
    "government university student school community business market price "
    "product review guide travel music photo video game sport health food "
    "book article story member group event center office question answer "
    "open close start first last next under over more most best good new"
).split()

_LATIN_EXTRA_WORDS = (
    "café été déjà naïve crème gâteau forêt château niño señor mañana "
    "über straße grün schön señora résumé entrée cliché protégé"
).split()

#: Zipf exponent for word ranks.
_ZIPF_S = 1.1

#: Vocabulary sizes per flavor.
_VOCAB_SIZE = 600


def _zipf_cumulative(size: int) -> np.ndarray:
    weights = 1.0 / np.power(np.arange(1, size + 1, dtype=np.float64), _ZIPF_S)
    return np.cumsum(weights / weights.sum())


def _build_japanese_vocab(rng: np.random.Generator) -> list[str]:
    """Words: hiragana particles/inflections, katakana loans, kanji compounds."""
    vocab: list[str] = []
    for _ in range(_VOCAB_SIZE):
        kind = rng.random()
        if kind < 0.45:  # hiragana word, 2-4 syllables
            length = int(rng.integers(2, 5))
            vocab.append("".join(rng.choice(list(_HIRAGANA), size=length)))
        elif kind < 0.60:  # katakana loanword
            length = int(rng.integers(2, 6))
            vocab.append("".join(rng.choice(list(_KATAKANA), size=length)))
        else:  # kanji compound, often with hiragana okurigana
            length = int(rng.integers(1, 4))
            word = "".join(rng.choice(list(_KANJI), size=length))
            if rng.random() < 0.4:
                word += rng.choice(list(_HIRAGANA))
            vocab.append(word)
    return vocab


def _build_thai_vocab(rng: np.random.Generator) -> list[str]:
    """Words: 1-4 Thai syllables in canonical orthographic order.

    Mark order matters: a tone mark sits on the consonant (optionally
    stacked on an above/below vowel) and always *precedes* a spacing
    vowel like sara aa — the positional constraint the charset prober's
    adjacency model checks.
    """
    consonants = list(_THAI_CONSONANT_WEIGHTS)
    weights = np.array(list(_THAI_CONSONANT_WEIGHTS.values()), dtype=np.float64)
    weights /= weights.sum()

    vocab: list[str] = []
    for _ in range(_VOCAB_SIZE):
        syllables = []
        for _ in range(int(rng.integers(1, 5))):
            syllable = ""
            if rng.random() < 0.25:
                syllable += rng.choice(list(_THAI_LEADING_VOWELS))
            syllable += rng.choice(consonants, p=weights)
            vowel_kind = rng.random()
            if vowel_kind < 0.40:
                syllable += rng.choice(list(_THAI_COMBINING_VOWELS))
                if rng.random() < 0.35:
                    syllable += rng.choice(list(_THAI_TONES))
            elif vowel_kind < 0.65:
                if rng.random() < 0.35:
                    syllable += rng.choice(list(_THAI_TONES))
                syllable += rng.choice(list(_THAI_SPACING_VOWELS))
            elif rng.random() < 0.35:
                syllable += rng.choice(list(_THAI_TONES))
            if rng.random() < 0.3:
                syllable += rng.choice(consonants, p=weights)
            syllables.append(syllable)
        vocab.append("".join(syllables))
    return vocab


def _build_western_vocab(rng: np.random.Generator, accented: bool) -> list[str]:
    base = list(_ENGLISH_WORDS)
    if accented:
        base += list(_LATIN_EXTRA_WORDS) * 3  # raise accent frequency
    vocab = [str(rng.choice(base)) for _ in range(_VOCAB_SIZE)]
    return vocab


def _build_korean_vocab(rng: np.random.Generator) -> list[str]:
    """Words: 1-4 hangul syllables drawn from the common inventory."""
    syllables = list(_HANGUL)
    vocab: list[str] = []
    for _ in range(_VOCAB_SIZE):
        length = int(rng.integers(1, 5))
        vocab.append("".join(rng.choice(syllables, size=length)))
    return vocab


@lru_cache(maxsize=None)
def _flavor_tables(flavor: str) -> tuple[tuple[str, ...], np.ndarray, str, str]:
    """(vocabulary, zipf cumulative, word separator, sentence end)."""
    rng = np.random.default_rng(0xC0FFEE)  # fixed: vocabularies are static
    if flavor == "japanese":
        return tuple(_build_japanese_vocab(rng)), _zipf_cumulative(_VOCAB_SIZE), "", "。"
    if flavor == "thai":
        return tuple(_build_thai_vocab(rng)), _zipf_cumulative(_VOCAB_SIZE), "", " "
    if flavor == "korean":
        return tuple(_build_korean_vocab(rng)), _zipf_cumulative(_VOCAB_SIZE), " ", ". "
    if flavor == "latin":
        return tuple(_build_western_vocab(rng, accented=True)), _zipf_cumulative(_VOCAB_SIZE), " ", ". "
    if flavor == "english":
        return tuple(_build_western_vocab(rng, accented=False)), _zipf_cumulative(_VOCAB_SIZE), " ", ". "
    raise ValueError(f"unknown text flavor {flavor!r}")


FLAVORS = ("japanese", "thai", "korean", "english", "latin")


def flavor_for(language: Language, accented: bool = False) -> str:
    """Default text flavor for a content language."""
    if language is Language.JAPANESE:
        return "japanese"
    if language is Language.THAI:
        return "thai"
    if language is Language.KOREAN:
        return "korean"
    return "latin" if accented else "english"


class TextGenerator:
    """Draws Zipf-distributed words of one flavor from a caller-owned RNG."""

    def __init__(self, flavor: str, rng: np.random.Generator) -> None:
        vocab, cumulative, separator, period = _flavor_tables(flavor)
        self.flavor = flavor
        self._vocab = vocab
        self._cumulative = cumulative
        self._separator = separator
        self._period = period
        self._rng = rng

    def words(self, count: int) -> list[str]:
        """``count`` independent Zipf-distributed words."""
        draws = self._rng.random(count)
        indices = np.searchsorted(self._cumulative, draws)
        return [self._vocab[index] for index in indices]

    def phrase(self, min_words: int = 2, max_words: int = 6) -> str:
        """A short run of words (titles, anchor texts)."""
        count = int(self._rng.integers(min_words, max_words + 1))
        return self._separator.join(self.words(count))

    def sentence(self) -> str:
        count = int(self._rng.integers(4, 14))
        return self._separator.join(self.words(count)) + self._period

    def paragraph(self, sentences: int | None = None) -> str:
        if sentences is None:
            sentences = int(self._rng.integers(2, 6))
        return "".join(self.sentence() for _ in range(sentences))

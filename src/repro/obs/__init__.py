"""Observability: structured events, metrics, tracing, profiling.

The paper evaluates crawl strategies through *continuous* telemetry —
per-checkpoint harvest rate, coverage, queue size — and the ROADMAP's
production north star needs the same discipline for performance: you
cannot make a hot path faster before you can see it.  This package is
that measurement layer:

- :mod:`~repro.obs.events` — typed span/counter/gauge events and a
  synchronous :class:`EventBus`;
- :mod:`~repro.obs.registry` — the in-process
  :class:`MetricsRegistry` with a rendered per-component profile table;
- :mod:`~repro.obs.trace` — JSONL trace export
  (:class:`JsonlTraceWriter`) and re-import (:func:`read_trace`);
- :mod:`~repro.obs.instrument` — the :class:`Instrumentation` hub the
  crawl components share.

Everything is zero-dependency and opt-in: components accept
``instrumentation=None`` and an uninstrumented crawl pays only a
``None`` check per hook point.
"""

from repro.obs.events import (
    CounterEvent,
    EventBus,
    GaugeEvent,
    SpanEvent,
    TelemetryEvent,
)
from repro.obs.hooks import ResilienceCountersHook, StepSpanHook
from repro.obs.instrument import Instrumentation, active
from repro.obs.registry import MetricsRegistry, TimerStat
from repro.obs.trace import JsonlTraceWriter, event_to_dict, iter_trace, read_trace

__all__ = [
    "SpanEvent",
    "CounterEvent",
    "GaugeEvent",
    "TelemetryEvent",
    "EventBus",
    "MetricsRegistry",
    "TimerStat",
    "JsonlTraceWriter",
    "event_to_dict",
    "read_trace",
    "iter_trace",
    "Instrumentation",
    "active",
    "StepSpanHook",
    "ResilienceCountersHook",
]

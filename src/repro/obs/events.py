"""Typed telemetry events and the in-process event bus.

The observability subsystem is built around three event kinds — the
usual vocabulary of a metrics pipeline:

- :class:`SpanEvent` — one timed operation (a simulated fetch, a spill
  batch) with a start time, a duration, and free-form attributes;
- :class:`CounterEvent` — a monotone increment ("bytes fetched",
  "links dropped");
- :class:`GaugeEvent` — a point-in-time level ("frontier size").

Events flow through an :class:`EventBus`: producers publish, any number
of subscribers receive every event synchronously, in subscription
order.  The bus is deliberately dependency-free and allocation-light —
publishing with no subscribers is a single truthiness check, which is
what lets the crawl loop stay fast when nobody is listening.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """One timed operation, fully described.

    Attributes:
        component: subsystem that produced the span ("simulator",
            "frontier", ...).
        name: operation within the component ("fetch", "spill", ...).
        start_s: start time on the producer's clock (``perf_counter``
            origin for wall spans; simulated seconds for sim spans).
        duration_s: how long the operation took, same clock.
        attrs: free-form structured payload (URL, step, verdict...).
    """

    component: str
    name: str
    start_s: float
    duration_s: float
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Registry key of this span's timer: ``component.name``."""
        return f"{self.component}.{self.name}"


@dataclass(frozen=True, slots=True)
class CounterEvent:
    """A monotone increment of a named counter."""

    name: str
    delta: int = 1


@dataclass(frozen=True, slots=True)
class GaugeEvent:
    """A point-in-time level of a named gauge."""

    name: str
    value: float


#: Any telemetry event the bus carries.
TelemetryEvent = SpanEvent | CounterEvent | GaugeEvent

#: Signature of an event-bus subscriber.
EventSubscriber = Callable[[TelemetryEvent], None]


class EventBus:
    """Synchronous fan-out of telemetry events to subscribers."""

    def __init__(self) -> None:
        self._subscribers: list[EventSubscriber] = []

    def subscribe(self, subscriber: EventSubscriber) -> Callable[[], None]:
        """Register a subscriber; returns a zero-arg unsubscribe."""
        self._subscribers.append(subscriber)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass  # already unsubscribed

        return unsubscribe

    def publish(self, event: TelemetryEvent) -> None:
        """Deliver one event to every subscriber, in order."""
        for subscriber in self._subscribers:
            subscriber(event)

    def publish_many(self, events: list[TelemetryEvent]) -> None:
        """Deliver a batch of events, preserving event order.

        Equivalent to ``for e in events: publish(e)`` but with the
        subscriber list walked once per batch instead of once per event
        — the dispatch shape the batching :class:`Instrumentation` hub
        uses to keep instrumented crawls near uninstrumented speed.
        """
        subscribers = self._subscribers
        if len(subscribers) == 1:
            subscriber = subscribers[0]
            for event in events:
                subscriber(event)
            return
        for event in events:
            for subscriber in subscribers:
                subscriber(event)

    def __len__(self) -> int:
        return len(self._subscribers)

    def __bool__(self) -> bool:
        return bool(self._subscribers)

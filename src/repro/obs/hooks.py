"""Engine hooks that feed the observability layer.

These are the hook-protocol replacements for what used to be the
simulator's dedicated instrumented and resilient loops: instead of a
forked copy of the crawl loop, instrumentation subscribes to the
unified :class:`repro.core.engine.CrawlEngine`.

- :class:`StepSpanHook` reproduces the instrumented profile — frontier
  and strategy stage timers plus exactly one ``simulator.fetch`` span
  per crawled page (the record the JSONL trace exporter writes).
- :class:`ResilienceCountersHook` reproduces the resilient loop's event
  counters (retries, requeues, drops, breaker skips).

The two attach independently, matching the historical behaviour the
observability tests pin: a clean instrumented run emits spans and stage
timers; a resilient run emits event counters (its per-step cost budget
has no room for span assembly).
"""

from __future__ import annotations

from time import perf_counter

from repro.core.engine import EngineHook, EngineStage, EngineStep
from repro.core.frontier import Candidate
from repro.obs.instrument import Instrumentation

#: Engine stages the instrumented profile times, and the metric each
#: duration lands in (the component doing that stage's work).
STAGE_METRICS: dict[EngineStage, str] = {
    EngineStage.POP: "frontier.pop",
    EngineStage.PRIORITIZE: "strategy.expand",
    EngineStage.SCHEDULE: "frontier.push",
}


class StepSpanHook(EngineHook):
    """Per-stage timers and one ``simulator.fetch`` span per page.

    The visitor and classifier time themselves; this hook adds the
    frontier and strategy timers and publishes exactly one
    :class:`~repro.obs.SpanEvent` per fetch, carrying the step's
    telemetry attributes.
    """

    needs_wall_clock = True

    def __init__(self, instrumentation: Instrumentation) -> None:
        self._instr = instrumentation
        self._registry = instrumentation.registry

    def on_stage_timing(self, stage: EngineStage, seconds: float, step: EngineStep) -> None:
        registry = self._registry
        registry.observe(STAGE_METRICS[stage], seconds)
        if stage is EngineStage.SCHEDULE and step.pushed:
            registry.add("frontier.pushed", step.pushed)

    def on_step(self, step: EngineStep) -> None:
        assert step.candidate is not None and step.response is not None
        assert step.judgment is not None
        self._instr.span(
            "simulator",
            "fetch",
            start_s=step.started_s,
            duration_s=perf_counter() - step.started_s,
            step=step.steps,
            url=step.candidate.url,
            status=step.response.status,
            relevant=step.judgment.relevant,
            queue_size=step.queue_size,
            scheduled=step.scheduled_count,
            sim_time=step.sim_time,
        )


class ResilienceCountersHook(EngineHook):
    """Event counters of the resilient pipeline."""

    def __init__(self, instrumentation: Instrumentation) -> None:
        self._instr = instrumentation

    def on_retry(self, candidate: Candidate, attempt: int) -> None:
        self._instr.count("visitor.retries")

    def on_gate_skip(self, candidate: Candidate) -> None:
        self._instr.count("breaker.skips")

    def on_requeue(self, candidate: Candidate) -> None:
        self._instr.count("frontier.requeued")

    def on_drop(self, candidate: Candidate) -> None:
        self._instr.count("frontier.dropped")

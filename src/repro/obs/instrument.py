"""The per-run telemetry hub the crawl components share.

One :class:`Instrumentation` object travels with one run: the simulator
binds it into the visitor, classifier, strategy and frontier, and every
component records through the same three verbs —

- ``observe(key, seconds)`` / ``timer(key)`` — aggregate a duration into
  the :class:`~repro.obs.registry.MetricsRegistry`;
- ``count(key)`` / ``gauge(key, value)`` — registry counters/gauges;
- ``publish(event)`` — stream a typed event to bus subscribers (the
  JSONL trace exporter, a live dashboard, a test probe).

Design rule: *absence is the no-op*.  Components take
``instrumentation=None`` and guard with one ``is not None`` check, so an
uninstrumented crawl pays nothing but that branch (<5% measured by
``bench_micro_components.py``).  A constructed-but-disabled hub
(``enabled=False``) is treated the same way by the simulator.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from repro.obs.events import EventBus, SpanEvent, TelemetryEvent
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import JsonlTraceWriter


class _Timer:
    """Context manager recording one duration into the registry."""

    __slots__ = ("_registry", "_key", "_start")

    def __init__(self, registry: MetricsRegistry, key: str) -> None:
        self._registry = registry
        self._key = key

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self._registry.observe(self._key, time.perf_counter() - self._start)


class Instrumentation:
    """Telemetry hub: registry + event bus + optional JSONL trace.

    Args:
        registry: metrics registry to aggregate into (fresh by default).
        bus: event bus to publish spans on (fresh by default).
        trace_path: when given, a :class:`JsonlTraceWriter` is created,
            subscribed to the bus, and owned by this hub (``close()``
            flushes and closes it).
        enabled: a disabled hub is ignored by every component that
            receives it — handy for flag-controlled call sites.
        batch_size: spans per bus dispatch.  At the default of 1 every
            :meth:`span` publishes synchronously (the historical
            behaviour); larger values buffer spans and hand them to the
            bus ``batch_size`` at a time, which keeps instrumented crawl
            loops within a few percent of uninstrumented ones.  Buffered
            spans are delivered in publish order; :meth:`flush` (called
            by the simulator at end of run and by :meth:`close`) drains
            the buffer, so subscribers always see every span.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        bus: EventBus | None = None,
        trace_path: str | Path | None = None,
        enabled: bool = True,
        batch_size: int = 1,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.registry = registry or MetricsRegistry()
        self.bus = bus or EventBus()
        self.enabled = enabled
        self.batch_size = batch_size
        self._pending: list[TelemetryEvent] = []
        self.trace: JsonlTraceWriter | None = None
        if trace_path is not None:
            self.trace = JsonlTraceWriter(trace_path)
            self.bus.subscribe(self.trace)

    # -- recording shorthands ------------------------------------------------

    def timer(self, key: str) -> _Timer:
        """``with instr.timer("component.op"): ...`` — aggregate only."""
        return _Timer(self.registry, key)

    def observe(self, key: str, seconds: float) -> None:
        self.registry.observe(key, seconds)

    def count(self, key: str, delta: int = 1) -> None:
        self.registry.add(key, delta)

    def gauge(self, key: str, value: float) -> None:
        self.registry.set_gauge(key, value)

    def publish(self, event: TelemetryEvent) -> None:
        """Stream one typed event to the bus subscribers."""
        self.bus.publish(event)

    def span(
        self,
        component: str,
        name: str,
        start_s: float,
        duration_s: float,
        **attrs: Any,
    ) -> None:
        """Aggregate a duration *and* publish the span on the bus.

        With ``batch_size > 1`` the span is buffered and dispatched with
        its batch; call :meth:`flush` to force delivery.
        """
        self.registry.observe(f"{component}.{name}", duration_s)
        if not self.bus:
            return
        event = SpanEvent(
            component=component,
            name=name,
            start_s=start_s,
            duration_s=duration_s,
            attrs=attrs,
        )
        if self.batch_size == 1:
            self.bus.publish(event)
            return
        self._pending.append(event)
        if len(self._pending) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        """Deliver any buffered span events to the bus, in order."""
        if self._pending:
            pending, self._pending = self._pending, []
            self.bus.publish_many(pending)

    # -- lifecycle -----------------------------------------------------------

    def render_profile(self, title: str = "Per-component profile") -> str:
        return self.registry.render_profile(title)

    def close(self) -> None:
        """Flush buffered spans, then close the owned trace writer."""
        self.flush()
        if self.trace is not None:
            self.trace.close()

    def __enter__(self) -> "Instrumentation":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def active(instrumentation: Instrumentation | None) -> Instrumentation | None:
    """Normalise "no telemetry": a disabled hub becomes None.

    Components call this once at the top of a run so their hot paths
    only ever test ``is not None``.
    """
    if instrumentation is not None and instrumentation.enabled:
        return instrumentation
    return None

"""In-process metrics registry: timers, counters, gauges.

The registry is the *aggregated* view of a run's telemetry — where the
event bus streams individual events, the registry keeps O(1)-sized
running statistics per key.  Keys follow the ``component.op``
convention ("visitor.fetch", "frontier.pop"), which is what the
rendered profile table groups by.

Zero dependencies, no locks (the simulator is single-threaded), and no
rendering imports from the rest of the package — `repro.obs` sits
*below* `repro.experiments` in the layering, so it carries its own tiny
table renderer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(slots=True)
class TimerStat:
    """Running statistics of one timer key."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = math.inf
    max_s: float = 0.0

    def observe(self, seconds: float) -> None:
        """Fold one duration into the statistics."""
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        """Mean duration, 0.0 before any observation."""
        if self.count == 0:
            return 0.0
        return self.total_s / self.count

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class MetricsRegistry:
    """Aggregated timers, counters and gauges of one run."""

    def __init__(self) -> None:
        self._timers: dict[str, TimerStat] = {}
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}

    # -- recording ----------------------------------------------------------

    def observe(self, key: str, seconds: float) -> None:
        """Record one duration under ``key`` ("component.op")."""
        stat = self._timers.get(key)
        if stat is None:
            stat = self._timers[key] = TimerStat()
        stat.observe(seconds)

    def add(self, key: str, delta: int = 1) -> None:
        """Increment the counter ``key`` by ``delta``."""
        self._counters[key] = self._counters.get(key, 0) + delta

    def set_gauge(self, key: str, value: float) -> None:
        """Set the gauge ``key`` to ``value`` (last write wins)."""
        self._gauges[key] = value

    # -- reading ------------------------------------------------------------

    @property
    def timers(self) -> dict[str, TimerStat]:
        return dict(self._timers)

    @property
    def counters(self) -> dict[str, int]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, float]:
        return dict(self._gauges)

    def timer(self, key: str) -> TimerStat | None:
        return self._timers.get(key)

    def counter(self, key: str) -> int:
        return self._counters.get(key, 0)

    def __bool__(self) -> bool:
        return bool(self._timers or self._counters or self._gauges)

    def to_dict(self) -> dict:
        """Plain-dict form for JSON serialisation."""
        return {
            "timers": {key: stat.to_dict() for key, stat in self._timers.items()},
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
        }

    # -- profile rendering --------------------------------------------------

    def profile_rows(self) -> list[dict]:
        """Per-component timing rows, sorted by total time descending.

        ``share`` is each timer's fraction of the summed timer total —
        the "where did the time go" column a perf PR starts from.
        """
        grand_total = sum(stat.total_s for stat in self._timers.values())
        rows = []
        for key, stat in sorted(
            self._timers.items(), key=lambda item: item[1].total_s, reverse=True
        ):
            rows.append(
                {
                    "component": key,
                    "calls": stat.count,
                    "total_ms": round(stat.total_s * 1e3, 3),
                    "mean_us": round(stat.mean_s * 1e6, 2),
                    "max_us": round(stat.max_s * 1e6, 2),
                    "share": f"{stat.total_s / grand_total:.1%}" if grand_total else "-",
                }
            )
        return rows

    def render_profile(self, title: str = "Per-component profile") -> str:
        """The profile table as aligned plain text (own mini renderer)."""
        rows = self.profile_rows()
        if not rows:
            return f"{title}\n(no timers recorded)\n"
        columns = list(rows[0].keys())
        cells = [[str(row[column]) for column in columns] for row in rows]
        widths = [
            max(len(column), *(len(row[index]) for row in cells))
            for index, column in enumerate(columns)
        ]
        lines = [title]
        lines.append("  ".join(column.ljust(width) for column, width in zip(columns, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in cells:
            lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)))
        if self._counters:
            lines.append("")
            lines.append("counters: " + "  ".join(
                f"{key}={value}" for key, value in sorted(self._counters.items())
            ))
        return "\n".join(lines) + "\n"

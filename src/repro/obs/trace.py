"""JSONL trace export and re-import.

A trace file is one JSON object per line, in emission order.  The
exporter subscribes to an :class:`~repro.obs.events.EventBus` and
serialises the events it is configured to care about — by default only
:class:`~repro.obs.events.SpanEvent`, so a crawl trace is exactly one
line per fetch and the hot counters never hit the disk.

The format round-trips: :func:`read_trace` yields the same dicts
:meth:`JsonlTraceWriter.write` was given, which the trace tests pin
down end to end through a real simulated crawl.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable

from repro.obs.events import CounterEvent, GaugeEvent, SpanEvent, TelemetryEvent


def event_to_dict(event: TelemetryEvent) -> dict:
    """Flatten a typed event into its JSONL record."""
    if isinstance(event, SpanEvent):
        record = {
            "type": "span",
            "component": event.component,
            "name": event.name,
            "start_s": event.start_s,
            "duration_s": event.duration_s,
        }
        record.update(event.attrs)
        return record
    if isinstance(event, CounterEvent):
        return {"type": "counter", "name": event.name, "delta": event.delta}
    if isinstance(event, GaugeEvent):
        return {"type": "gauge", "name": event.name, "value": event.value}
    raise TypeError(f"not a telemetry event: {event!r}")


class JsonlTraceWriter:
    """Streams telemetry events to a JSONL file.

    Usable directly (``write(record)``) or as an event-bus subscriber
    (``__call__``).  ``kinds`` filters what the subscriber serialises;
    spans only by default.
    """

    def __init__(
        self,
        path: str | Path,
        kinds: tuple[type, ...] = (SpanEvent,),
    ) -> None:
        self.path = Path(path)
        self._kinds = kinds
        self._handle: IO[str] | None = self.path.open("w", encoding="utf-8")
        self.records_written = 0

    def __call__(self, event: TelemetryEvent) -> None:
        if isinstance(event, self._kinds):
            self.write(event_to_dict(event))

    def write(self, record: dict) -> None:
        """Append one record (a JSON-serialisable dict) to the trace."""
        if self._handle is None:
            raise ValueError(f"trace writer for {self.path} is closed")
        self._handle.write(json.dumps(record, separators=(",", ":"), default=str) + "\n")
        self.records_written += 1

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_trace(path: str | Path) -> list[dict]:
    """Load a JSONL trace back into a list of dicts."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def iter_trace(path: str | Path) -> Iterable[dict]:
    """Stream a JSONL trace without loading it whole."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)

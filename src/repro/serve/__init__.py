"""Crawl-as-a-service: long-lived sessions behind a wire protocol.

The paper's simulator runs one crawl and exits; ROADMAP item 2 wants a
production-shaped server that holds *many* crawls open at once.  This
package is that layer, built entirely on the public session API:

- :mod:`~repro.serve.manager` — :class:`SessionManager`, the
  multiplexer: named :class:`~repro.core.session.CrawlSession` records,
  per-session locking, and evict-to-disk residency via the checkpoint
  machinery (evicted sessions resume byte-identically).
- :mod:`~repro.serve.protocol` — the JSON command protocol
  (open/step/status/report/close/evict/stats/shutdown) shared by every
  transport.
- :mod:`~repro.serve.server` — the transports: newline-delimited JSON
  over stdio and a threaded HTTP server (``lswc-sim serve``).
- :mod:`~repro.serve.loadgen` — seeded S/M/L/XL synthetic workloads
  publishing ``BENCH_serve_load.json``.
"""

from repro.serve.loadgen import LOAD_PROFILES, Profiles, generate_workload, run_bench, run_load
from repro.serve.manager import ManagedSession, SessionManager
from repro.serve.protocol import ProtocolHandler
from repro.serve.server import make_http_server, serve_stdio

__all__ = [
    "SessionManager",
    "ManagedSession",
    "ProtocolHandler",
    "serve_stdio",
    "make_http_server",
    "Profiles",
    "LOAD_PROFILES",
    "generate_workload",
    "run_load",
    "run_bench",
]

"""Seeded synthetic load for the session server.

Workloads are drawn from S/M/L/XL profiles — normal-distributed
web-space size, step budget, page cap and session arrival rate, every
sample clamped to a range and drawn from one seeded ``random.Random``
(the profile-table-plus-clamped-gauss shape of the ``generate_profile``
exemplar in SNIPPETS.md).  The same ``(profile, seed)`` pair therefore
always generates the same session arrival schedule crawling the same
web spaces.

The generator drives a real :class:`~repro.serve.protocol.ProtocolHandler`
— every open/step/report/close is a wire command, steps fan out over a
thread pool against the manager's per-session locks, and the resident
cap is set below the session count so eviction/resume cycles happen
under load.  Because evicted sessions resume byte-identically, the
**digest** (sha256 over every session's sorted report payload) is
deterministic even though thread scheduling, and therefore *which*
sessions get evicted when, is not.

``run_bench`` publishes ``BENCH_serve_load.json``: sessions/sec,
p50/p99 step latency, eviction/resume counts and steady-state RSS per
profile, plus the determinism digest.
"""

from __future__ import annotations

import hashlib
import json
import random
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigError
from repro.serve.manager import SessionManager
from repro.serve.protocol import ProtocolHandler

__all__ = ["Profiles", "LOAD_PROFILES", "generate_workload", "run_load", "run_bench"]

DEFAULT_SEED = 42


class Profiles(Enum):
    SMALL = "S"
    MEDIUM = "M"
    LARGE = "L"
    XLARGE = "XL"


#: Each knob is a clamped normal: {mean, stdev, min, max}.
LOAD_PROFILES: dict[Profiles, dict[str, Any]] = {
    Profiles.SMALL: dict(
        sessions=4,
        max_resident=2,
        arrival=dict(mean=2.0, stdev=1.0, min=1, max=3),
        scale=dict(mean=0.05, stdev=0.02, min=0.02, max=0.08),
        budget=dict(mean=40, stdev=12, min=10, max=80),
        pages=dict(mean=120, stdev=30, min=60, max=200),
    ),
    Profiles.MEDIUM: dict(
        sessions=8,
        max_resident=3,
        arrival=dict(mean=3.0, stdev=1.0, min=1, max=5),
        scale=dict(mean=0.06, stdev=0.02, min=0.02, max=0.10),
        budget=dict(mean=60, stdev=20, min=15, max=120),
        pages=dict(mean=180, stdev=50, min=80, max=320),
    ),
    Profiles.LARGE: dict(
        sessions=16,
        max_resident=6,
        arrival=dict(mean=4.0, stdev=2.0, min=1, max=8),
        scale=dict(mean=0.08, stdev=0.03, min=0.03, max=0.15),
        budget=dict(mean=90, stdev=30, min=20, max=200),
        pages=dict(mean=300, stdev=80, min=100, max=500),
    ),
    Profiles.XLARGE: dict(
        sessions=32,
        max_resident=8,
        arrival=dict(mean=6.0, stdev=2.0, min=2, max=12),
        scale=dict(mean=0.12, stdev=0.04, min=0.05, max=0.25),
        budget=dict(mean=120, stdev=40, min=30, max=300),
        pages=dict(mean=500, stdev=120, min=150, max=900),
    ),
}

_STRATEGIES = ("breadth-first", "soft-focused", "hard-focused")


def _clamped_gauss(rng: random.Random, spec: Mapping[str, float]) -> float:
    return min(spec["max"], max(spec["min"], rng.gauss(spec["mean"], spec["stdev"])))


@dataclass(frozen=True, slots=True)
class SessionSpec:
    """One generated session: what it crawls and how it arrives."""

    name: str
    arrival_round: int
    strategy: str
    scale: float
    step_budget: int
    max_pages: int
    dataset_seed: int

    def open_command(self) -> dict:
        return {
            "cmd": "open",
            "session": self.name,
            "request": {
                "strategy": self.strategy,
                "dataset": {
                    "profile": "thai",
                    "scale": self.scale,
                    "seed": self.dataset_seed,
                },
            },
            "config": {"max_pages": self.max_pages, "sample_interval": 50},
        }


def generate_workload(profile: Profiles | str, seed: int = DEFAULT_SEED) -> list[SessionSpec]:
    """The deterministic session schedule of one ``(profile, seed)`` pair."""
    if isinstance(profile, str):
        try:
            profile = Profiles(profile.upper())
        except ValueError:
            names = sorted(p.value for p in Profiles)
            raise ConfigError(f"unknown load profile {profile!r}; available: {names}") from None
    table = LOAD_PROFILES[profile]
    rng = random.Random(f"lswc-serve-load:{profile.value}:{seed}")
    specs: list[SessionSpec] = []
    arrival_round = 0
    while len(specs) < table["sessions"]:
        arriving = round(_clamped_gauss(rng, table["arrival"]))
        for _ in range(max(1, arriving)):
            if len(specs) >= table["sessions"]:
                break
            index = len(specs)
            specs.append(
                SessionSpec(
                    name=f"{profile.value.lower()}{index:03d}",
                    arrival_round=arrival_round,
                    strategy=_STRATEGIES[index % len(_STRATEGIES)],
                    scale=round(_clamped_gauss(rng, table["scale"]), 3),
                    step_budget=int(_clamped_gauss(rng, table["budget"])),
                    max_pages=int(_clamped_gauss(rng, table["pages"])),
                    dataset_seed=seed + index % 4,
                )
            )
        arrival_round += 1
    return specs


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _rss_kb() -> int | None:
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:
        return None


def run_load(
    profile: Profiles | str,
    seed: int = DEFAULT_SEED,
    spool_dir: str | Path | None = None,
    max_workers: int = 4,
    dataset_cache_dir: str | None = None,
) -> dict:
    """Run one profile's workload against a fresh server; return metrics.

    The digest is the deterministic part; latency/RSS/throughput are
    measurements of this particular run.
    """
    specs = generate_workload(profile, seed)
    profile = Profiles(profile.upper()) if isinstance(profile, str) else profile
    max_resident = LOAD_PROFILES[profile]["max_resident"]
    tmp_spool = None
    if spool_dir is None:
        # Eviction needs somewhere to spool; keep the tempdir alive for
        # the run (resumes read back from it).
        tmp_spool = tempfile.TemporaryDirectory(prefix="lswc-serve-load-")
        spool_dir = tmp_spool.name
    manager = SessionManager(spool_dir=Path(spool_dir), max_resident=max_resident)
    handler = ProtocolHandler(manager, dataset_cache_dir=dataset_cache_dir)

    def _command(payload: dict) -> dict:
        response = handler.handle(payload)
        if not response.get("ok"):
            raise ConfigError(f"load command failed: {response['error']}")
        return response

    pending = sorted(specs, key=lambda s: (s.arrival_round, s.name))
    active: dict[str, SessionSpec] = {}
    reports: dict[str, dict] = {}
    latencies: list[float] = []
    sessions_opened = 0
    steps_total = 0
    started = time.perf_counter()
    current_round = 0

    def _step(spec: SessionSpec) -> tuple[str, dict, float]:
        t0 = time.perf_counter()
        response = _command(
            {"cmd": "step", "session": spec.name, "budget": spec.step_budget}
        )
        return spec.name, response["status"], time.perf_counter() - t0

    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        while pending or active:
            while pending and pending[0].arrival_round <= current_round:
                spec = pending.pop(0)
                _command(spec.open_command())
                active[spec.name] = spec
                sessions_opened += 1
            if active:
                results = list(pool.map(_step, sorted(active.values(), key=lambda s: s.name)))
                for name, status, elapsed in results:
                    latencies.append(elapsed)
                    steps_total += 1
                    if status["done"]:
                        report = _command({"cmd": "close", "session": name})["report"]
                        reports[name] = report
                        del active[name]
            current_round += 1
    wall = time.perf_counter() - started

    stats = manager.stats()
    if tmp_spool is not None:
        tmp_spool.cleanup()
    digest = hashlib.sha256(
        json.dumps(reports, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    return {
        "profile": profile.value,
        "seed": seed,
        "sessions": sessions_opened,
        "steps": steps_total,
        "wall_seconds": round(wall, 3),
        "sessions_per_sec": round(sessions_opened / wall, 3) if wall > 0 else None,
        "steps_per_sec": round(steps_total / wall, 3) if wall > 0 else None,
        "p50_step_latency_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_step_latency_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "evictions": stats["evictions"],
        "resumes": stats["resumes"],
        "steady_state_rss_kb": _rss_kb(),
        "digest": digest,
    }


def run_bench(
    profiles: list[str] | None = None,
    seed: int = DEFAULT_SEED,
    spool_dir: str | Path | None = None,
    out_path: str | Path | None = None,
    check_determinism: bool = False,
    dataset_cache_dir: str | None = None,
) -> dict:
    """Run the load profiles and publish ``BENCH_serve_load.json``.

    With ``check_determinism`` every profile runs twice and the two
    digests must agree — the CI smoke gate for "eviction under load
    never changes what a session computes".
    """
    profiles = profiles or ["S", "M"]
    bench: dict[str, Any] = {"bench": "serve_load", "seed": seed, "profiles": {}}
    for name in profiles:
        metrics = run_load(
            name,
            seed=seed,
            spool_dir=_subdir(spool_dir, f"{name}-a"),
            dataset_cache_dir=dataset_cache_dir,
        )
        if check_determinism:
            rerun = run_load(
                name,
                seed=seed,
                spool_dir=_subdir(spool_dir, f"{name}-b"),
                dataset_cache_dir=dataset_cache_dir,
            )
            if rerun["digest"] != metrics["digest"]:
                raise ConfigError(
                    f"profile {name}: load run is not deterministic "
                    f"({metrics['digest'][:12]} != {rerun['digest'][:12]})"
                )
            metrics["determinism_checked"] = True
        bench["profiles"][name.upper()] = metrics
    if out_path is not None:
        out = Path(out_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    return bench


def _subdir(base: str | Path | None, leaf: str) -> Path | None:
    return None if base is None else Path(base) / leaf

"""The session multiplexer: many resident crawls, bounded memory.

A :class:`SessionManager` holds a table of named
:class:`~repro.core.session.CrawlSession` records and serves ``step``/
``status``/``report`` calls against any of them, from any thread — each
record carries a lock, so concurrent steps on *different* sessions run
in parallel while steps on the *same* session serialise.

The memory discipline is evict-to-disk (the steady-state-memory idea of
the terabyte-corpus analysis in PAPERS.md): a session that falls out of
the resident budget — or is idle, or is evicted explicitly — has its
:meth:`~repro.core.session.CrawlSession.snapshot` spooled to a JSONL
checkpoint and its live object dropped.  The next ``step`` transparently
rebuilds the session with ``resume_from=`` the spool.  Because the
kill/resume differential suite pins byte-identical resumption, eviction
is invisible in every report: *which* sessions get evicted (a racy,
scheduling-dependent choice under concurrent load) cannot change *what*
any session computes.

Recency is a logical tick counter, not wall time, so eviction choices —
like everything else here — are reproducible under single-threaded
drivers.

The mid-step rule (the double-count hazard): a step that dies partway —
e.g. a process-kill simulation raising out of a retry backoff — leaves
the live engine with in-flight retry tallies that belong to an
*unfinished* fetch round.  Snapshotting that state would bake the
half-round into the checkpoint, and the resumed session would replay
the round on top of it: attempts counted twice.  The manager therefore
marks a record *dirty* around every step; evicting a dirty record
refuses to snapshot and falls back to the session's last on-disk
periodic checkpoint, whose writer only runs at step boundaries.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Sequence

from repro.core.session import (
    CrawlRequest,
    CrawlResult,
    CrawlSession,
    SessionConfig,
    SessionStatus,
)
from repro.errors import SessionError

__all__ = ["SessionManager", "ManagedSession"]


@dataclass
class ManagedSession:
    """One slot of the manager's table (internal bookkeeping)."""

    name: str
    request: CrawlRequest
    config: SessionConfig
    spool_path: Path
    session: CrawlSession | None = None
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Logical last-use time (manager tick), drives LRU/idle eviction.
    tick: int = 0
    #: True while a step is executing; stays True if the step died
    #: mid-flight, which forbids snapshotting (see module docstring).
    dirty: bool = False
    #: Path to resume from when non-resident (None = start fresh).
    resume_path: Path | None = None
    #: True when the manager defaulted ``config.checkpoint_path`` into
    #: its spool dir; only then may ``close`` delete the file.  A
    #: caller-supplied path is the caller's property.
    owns_checkpoint: bool = False
    #: Set (under the record lock) by ``close``; a concurrent call that
    #: fetched the record before it left the table must not resurrect it.
    closed: bool = False
    steps_served: int = 0
    evictions: int = 0
    resumes: int = 0

    @property
    def resident(self) -> bool:
        return self.session is not None


class SessionManager:
    """Multiplexes named crawl sessions with evict-to-disk residency.

    Args:
        spool_dir: directory for eviction spools and default periodic
            checkpoints.  Required before anything can be evicted.
        max_resident: soft cap on live sessions; opening or resuming
            past it evicts the least-recently-used idle session.  None
            = unbounded.
    """

    def __init__(
        self,
        spool_dir: str | Path | None = None,
        max_resident: int | None = None,
    ) -> None:
        if max_resident is not None and max_resident < 1:
            raise SessionError("max_resident must be >= 1")
        self._spool_dir = Path(spool_dir) if spool_dir is not None else None
        self._max_resident = max_resident
        self._records: dict[str, ManagedSession] = {}
        self._table_lock = threading.Lock()
        self._clock = 0
        self._evictions = 0
        self._resumes = 0

    # -- table ----------------------------------------------------------

    def _tock(self) -> int:
        with self._table_lock:
            self._clock += 1
            return self._clock

    def _get(self, name: str) -> ManagedSession:
        with self._table_lock:
            record = self._records.get(name)
        if record is None:
            raise SessionError(f"no session named {name!r}")
        return record

    def names(self) -> list[str]:
        with self._table_lock:
            return sorted(self._records)

    def _spool_for(self, name: str) -> Path:
        if self._spool_dir is None:
            raise SessionError(
                "this SessionManager has no spool_dir; eviction needs one"
            )
        self._spool_dir.mkdir(parents=True, exist_ok=True)
        return self._spool_dir / f"{name}.evict.ckpt"

    # -- lifecycle ------------------------------------------------------

    def open(
        self,
        name: str,
        request: CrawlRequest,
        config: SessionConfig | None = None,
    ) -> SessionStatus:
        """Register and open a new named session."""
        config = config or SessionConfig()
        owns_checkpoint = False
        if (
            config.checkpoint_every is not None
            and config.checkpoint_path is None
            and self._spool_dir is not None
        ):
            # Default the periodic-checkpoint target into the spool so a
            # cadence alone is enough for crash-safe serving.
            self._spool_dir.mkdir(parents=True, exist_ok=True)
            config = replace(
                config, checkpoint_path=self._spool_dir / f"{name}.periodic.ckpt"
            )
            owns_checkpoint = True
        record = ManagedSession(
            name=name,
            request=request,
            config=config,
            spool_path=self._spool_dir / f"{name}.evict.ckpt"
            if self._spool_dir is not None
            else Path(f"{name}.evict.ckpt"),
            owns_checkpoint=owns_checkpoint,
        )
        with self._table_lock:
            if name in self._records:
                raise SessionError(f"session {name!r} is already open")
            self._records[name] = record
        try:
            with record.lock:
                record.session = CrawlSession(request, config).open()
                record.tick = self._tock()
        except BaseException:
            # A failed open (unknown strategy, bad resume file, ...) must
            # not wedge the name: unregister so a corrected spec can
            # reuse it.
            with self._table_lock:
                self._records.pop(name, None)
            raise
        self._enforce_residency(exempt=name)
        return self.status(name)

    def step(self, name: str, budget: int | None = None) -> SessionStatus:
        """Step one session by ``budget`` pages, resuming it if evicted."""
        record = self._get(name)
        with record.lock:
            if record.dirty:
                # The previous step died mid-flight; the live object's
                # in-flight tallies are unusable.  Fall back to the last
                # step-boundary checkpoint before stepping again.
                self._evict_locked(record)
            session = self._ensure_resident(record)
            record.dirty = True
            stepped = session.step(budget)
            record.dirty = False  # only a cleanly finished step gets here
            record.steps_served += stepped
            record.tick = self._tock()
        self._enforce_residency(exempt=name)
        return self.status(name)

    def step_many(
        self,
        work: Sequence[tuple[str, int | None]],
        max_workers: int | None = None,
    ) -> list[SessionStatus]:
        """Step several sessions concurrently (thread-pooled).

        Returns statuses in ``work`` order.  Steps on distinct sessions
        run in parallel; duplicate names serialise on the record lock.
        """
        if not work:
            return []
        workers = max_workers or min(8, len(work))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(lambda item: self.step(item[0], item[1]), work))

    def status(self, name: str) -> SessionStatus:
        record = self._get(name)
        with record.lock:
            if record.session is not None:
                return record.session.status()
            return SessionStatus(
                state="closed" if record.closed else "evicted",
                steps=0,
                queue_size=0,
                scheduled=0,
                done=False,
            )

    def report(self, name: str) -> CrawlResult:
        """The session's current :class:`CrawlResult` (resumes if needed)."""
        record = self._get(name)
        with record.lock:
            return self._ensure_resident(record).report()

    def close(self, name: str) -> CrawlResult:
        """Final report, then remove the session and its spools.

        The record is marked ``closed`` *before* the record lock is
        released, so a concurrent ``step``/``report`` that fetched the
        record from the table before it was removed fails with a
        :class:`SessionError` instead of resurrecting a zombie session
        from the about-to-be-deleted spools.  Only spool files the
        manager itself created are deleted; a caller-supplied
        ``checkpoint_path`` is left in place.
        """
        record = self._get(name)
        with record.lock:
            result = self._ensure_resident(record).report()
            assert record.session is not None
            record.session.close()
            record.session = None
            record.closed = True
        with self._table_lock:
            self._records.pop(name, None)
        doomed = [record.spool_path]
        if record.owns_checkpoint and record.config.checkpoint_path is not None:
            doomed.append(Path(record.config.checkpoint_path))
        for path in doomed:
            path.unlink(missing_ok=True)
        return result

    def close_all(self) -> None:
        for name in self.names():
            try:
                self.close(name)
            except SessionError:
                pass

    # -- eviction -------------------------------------------------------

    def evict(self, name: str) -> None:
        """Spool a session to disk and drop the live object.

        A clean (idle) session is snapshotted at its current step
        boundary.  A *dirty* session — one whose last step died mid-
        flight — must not be snapshotted (its in-flight retry tallies
        would be double-counted on resume); it falls back to its last
        periodic on-disk checkpoint instead.
        """
        record = self._get(name)
        with record.lock:
            self._evict_locked(record)

    def _evict_locked(self, record: ManagedSession) -> None:
        session = record.session
        if session is None:
            return
        if record.dirty:
            periodic = record.config.checkpoint_path
            if periodic is None or not Path(periodic).exists():
                raise SessionError(
                    f"session {record.name!r} died mid-step and has no periodic "
                    "checkpoint to fall back to; cannot evict without "
                    "double-counting its in-flight attempts"
                )
            record.resume_path = Path(periodic)
            record.dirty = False
        else:
            spool = self._spool_for(record.name)
            session.save_checkpoint(spool)
            record.resume_path = spool
        session.close()
        record.session = None
        record.evictions += 1
        with self._table_lock:
            self._evictions += 1

    def recover(self, name: str) -> SessionStatus:
        """Discard a mid-step-dead session and resume its checkpoint."""
        record = self._get(name)
        with record.lock:
            if record.session is not None and not record.dirty:
                return record.session.status()
            self._evict_locked(record)
            return self._ensure_resident(record).status()

    def evict_idle(self, idle_for: int) -> list[str]:
        """Evict every resident session untouched for ``idle_for`` ticks."""
        with self._table_lock:
            now = self._clock
            candidates = [r for r in self._records.values() if r.resident]
        evicted = []
        for record in candidates:
            if now - record.tick < idle_for:
                continue
            if record.lock.acquire(blocking=False):
                try:
                    if record.resident and now - record.tick >= idle_for:
                        self._evict_locked(record)
                        evicted.append(record.name)
                finally:
                    record.lock.release()
        return evicted

    def _enforce_residency(self, exempt: str) -> None:
        """Evict LRU idle sessions until the resident cap holds."""
        if self._max_resident is None:
            return
        while True:
            with self._table_lock:
                resident = [r for r in self._records.values() if r.resident]
                if len(resident) <= self._max_resident:
                    return
                victims = sorted(
                    (r for r in resident if r.name != exempt),
                    key=lambda r: r.tick,
                )
            for record in victims:
                if record.lock.acquire(blocking=False):
                    try:
                        if record.resident:
                            self._evict_locked(record)
                            break
                    finally:
                        record.lock.release()
            else:
                return  # every other session is busy; cap is soft

    def _ensure_resident(self, record: ManagedSession) -> CrawlSession:
        """Rebuild an evicted session from its spool (record lock held)."""
        if record.closed:
            raise SessionError(f"session {record.name!r} is closed")
        if record.session is not None:
            return record.session
        config = record.config
        if record.resume_path is not None:
            config = replace(config, resume_from=record.resume_path)
        record.session = CrawlSession(record.request, config).open()
        record.tick = self._tock()
        record.resumes += 1
        with self._table_lock:
            self._resumes += 1
        return record.session

    # -- introspection --------------------------------------------------

    def stats(self) -> dict:
        with self._table_lock:
            records = list(self._records.values())
            evictions, resumes = self._evictions, self._resumes
        return {
            "sessions": len(records),
            "resident": sum(1 for r in records if r.resident),
            "evicted": sum(1 for r in records if not r.resident),
            "steps_served": sum(r.steps_served for r in records),
            "evictions": evictions,
            "resumes": resumes,
        }

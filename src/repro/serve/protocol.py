"""The serve wire protocol: JSON commands over any byte transport.

One request is one JSON object with a ``cmd`` field; one response is one
JSON object with ``ok`` (plus the command's payload, or an ``error``
object).  The same :class:`ProtocolHandler` backs both transports in
:mod:`repro.serve.server` — newline-delimited JSON over stdio, and HTTP
POST bodies — so a scripted stdio client and an HTTP client observe
identical semantics.

Commands::

    {"cmd": "open", "session": "s1",
     "request": {"strategy": "soft-focused", "params": {},
                 "dataset": {"profile": "thai", "scale": 0.08, "seed": 7}},
     "config": {"max_pages": 400, "checkpoint_every": 50}}
    {"cmd": "step", "session": "s1", "budget": 100}
    {"cmd": "status", "session": "s1"}
    {"cmd": "report", "session": "s1"}       # deterministic report payload
    {"cmd": "evict", "session": "s1"}        # force evict-to-disk
    {"cmd": "close", "session": "s1"}        # final report + teardown
    {"cmd": "stats"}
    {"cmd": "ping"}
    {"cmd": "shutdown"}

Determinism contract: a session's ``dataset.seed`` defaults to
``base_seed + (open-counter mod seed_pool)`` — the N-th ``open`` of a
serve process always crawls the same web space, and seedless sessions
cycle through a small pool of spaces instead of each materialising a
fresh one — and ``report`` returns
:func:`repro.core.session.report_payload`, the exact payload a one-shot
:func:`repro.api.run_crawl` of the same request produces, evictions or
not.  Resolved web spaces are cached per ``(profile, scale, seed,
synth)`` so many sessions (and evict/resume cycles) share one in-memory
graph; the cache is LRU-bounded (``dataset_cache_size``) so a
long-running serve process holds a fixed number of graphs, not one per
session ever opened.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Mapping

from repro.adversary import AdversaryModel, AdversaryProfile, DefenseConfig
from repro.core.session import CrawlRequest, SessionConfig, report_payload
from repro.core.timing import TimingModel
from repro.errors import ReproError, SessionError
from repro.experiments.datasets import load_or_build_dataset
from repro.faults.model import FaultModel, FaultProfile
from repro.faults.resilience import BreakerPolicy, ResilienceConfig, RetryPolicy
from repro.graphgen import profile_by_name
from repro.serve.manager import SessionManager

__all__ = ["ProtocolHandler", "DEFAULT_BASE_SEED", "DEFAULT_SEED_POOL"]

#: Session seeds count up from here when the client does not pin one.
DEFAULT_BASE_SEED = 20050405  # the paper's DEWS 2005 date

#: Seedless opens cycle through this many counter-derived seeds, so
#: wire sessions share cached web-space builds instead of each
#: materialising (and caching) a new one.
DEFAULT_SEED_POOL = 8

#: LRU cap on cached resolved datasets — the serve process's
#: steady-state graph memory is bounded by this, not by how many
#: sessions it has ever opened.
DEFAULT_DATASET_CACHE_SIZE = 32

#: Web-space scales are snapped to this grid so nearby load-generated
#: sizes share one cached dataset build.
SCALE_GRID = 0.01

_REQUEST_KEYS = {"strategy", "params", "dataset", "faults", "adversary"}
_DATASET_KEYS = {"profile", "scale", "seed", "capture_kind", "capture_n", "store"}
_CONFIG_KEYS = {
    "max_pages",
    "sample_interval",
    "extract_from_body",
    "checkpoint_every",
    "resilience",
    "concurrency",
    "timing",
    "defenses",
}


def _require(payload: Mapping[str, Any], key: str, cmd: str) -> Any:
    if key not in payload:
        raise SessionError(f"{cmd!r} needs a {key!r} field")
    return payload[key]


class ProtocolHandler:
    """Decode JSON commands, drive a :class:`SessionManager`, encode replies."""

    def __init__(
        self,
        manager: SessionManager,
        base_seed: int = DEFAULT_BASE_SEED,
        dataset_cache_dir: str | None = None,
        seed_pool: int = DEFAULT_SEED_POOL,
        dataset_cache_size: int = DEFAULT_DATASET_CACHE_SIZE,
    ) -> None:
        if seed_pool < 1:
            raise SessionError("seed_pool must be >= 1")
        if dataset_cache_size < 1:
            raise SessionError("dataset_cache_size must be >= 1")
        self.manager = manager
        self._base_seed = base_seed
        self._dataset_cache_dir = dataset_cache_dir
        self._seed_pool = seed_pool
        self._dataset_cache_size = dataset_cache_size
        self._counter = 0
        self._counter_lock = threading.Lock()
        #: LRU dataset cache: dict insertion order is recency order
        #: (entries are re-inserted on hit, oldest popped past the cap).
        self._datasets: dict[tuple, Any] = {}
        self._datasets_lock = threading.Lock()
        self.shutting_down = False

    # -- request assembly ----------------------------------------------

    def _next_seed(self) -> int:
        with self._counter_lock:
            seed = self._base_seed + self._counter % self._seed_pool
            self._counter += 1
            return seed

    def _dataset(self, spec: Mapping[str, Any]) -> Any:
        unknown = set(spec) - _DATASET_KEYS
        if unknown:
            raise SessionError(f"unknown dataset keys: {sorted(unknown)}")
        store_path = spec.get("store")
        if store_path is not None:
            # A prebuilt columnar store: the path *is* the dataset (its
            # header carries profile/seeds/capture), so every other key
            # would be ignored — reject them instead of lying.
            extra = set(spec) - {"store"}
            if extra:
                raise SessionError(
                    f"dataset store= excludes other dataset keys: {sorted(extra)}"
                )
            key = ("store", str(store_path))
            with self._datasets_lock:
                dataset = self._datasets.pop(key, None)
                if dataset is not None:
                    self._datasets[key] = dataset
            if dataset is None:
                from repro.experiments.datasets import open_dataset_store

                dataset = open_dataset_store(store_path)
                with self._datasets_lock:
                    dataset = self._datasets.setdefault(key, dataset)
                    while len(self._datasets) > self._dataset_cache_size:
                        self._datasets.pop(next(iter(self._datasets)))
            return dataset
        profile_name = _require(spec, "profile", "dataset")
        scale = float(spec.get("scale", 1.0))
        if scale <= 0:
            raise SessionError(f"dataset scale must be > 0, got {scale!r}")
        # Snap to the grid (keeps the cache small under load generation).
        scale = max(SCALE_GRID, round(scale / SCALE_GRID) * SCALE_GRID)
        seed = spec.get("seed")
        if seed is None:
            seed = self._next_seed()
        key = (
            profile_name,
            round(scale, 6),
            int(seed),
            spec.get("capture_kind", "reference"),
            spec.get("capture_n"),
        )
        with self._datasets_lock:
            dataset = self._datasets.pop(key, None)
            if dataset is not None:
                self._datasets[key] = dataset  # refresh LRU recency
        if dataset is None:
            profile = profile_by_name(profile_name, seed=int(seed))
            if scale != 1.0:
                profile = profile.scaled(scale)
            kwargs: dict[str, Any] = {}
            if "capture_kind" in spec:
                kwargs["capture_kind"] = spec["capture_kind"]
            if spec.get("capture_n") is not None:
                kwargs["capture_n"] = int(spec["capture_n"])
            if self._dataset_cache_dir is not None:
                kwargs["cache_dir"] = self._dataset_cache_dir
            dataset = load_or_build_dataset(profile, **kwargs)
            with self._datasets_lock:
                dataset = self._datasets.setdefault(key, dataset)
                while len(self._datasets) > self._dataset_cache_size:
                    self._datasets.pop(next(iter(self._datasets)))
        return dataset

    def build_request(self, spec: Mapping[str, Any]) -> CrawlRequest:
        """A resolved :class:`CrawlRequest` from its wire form."""
        unknown = set(spec) - _REQUEST_KEYS
        if unknown:
            raise SessionError(f"unknown request keys: {sorted(unknown)}")
        strategy = _require(spec, "strategy", "request")
        if not isinstance(strategy, str):
            raise SessionError("wire requests name strategies by registry name")
        dataset_spec = _require(spec, "dataset", "request")
        request = CrawlRequest(
            strategy=strategy,
            params=dict(spec.get("params") or {}),
            dataset=self._dataset(dataset_spec),
        )
        # Resolve now: the web space is materialised once and shared by
        # every evict/resume cycle of this session.
        return request.resolve()

    def build_config(
        self, spec: Mapping[str, Any], faults: Any = None, adversary: Any = None
    ) -> SessionConfig:
        unknown = set(spec) - _CONFIG_KEYS
        if unknown:
            raise SessionError(f"unknown config keys: {sorted(unknown)}")
        defenses = None
        if spec.get("defenses") is not None:
            defenses = DefenseConfig.from_json_dict(spec["defenses"])
        resilience = None
        if spec.get("resilience") is not None:
            rspec = dict(spec["resilience"])
            retry = rspec.pop("retry", None)
            breaker = rspec.pop("breaker", None)
            if rspec:
                raise SessionError(f"unknown resilience keys: {sorted(rspec)}")
            resilience = ResilienceConfig(
                retry=RetryPolicy(**retry) if retry is not None else RetryPolicy(),
                breaker=BreakerPolicy(**breaker) if breaker is not None else None,
            )
        timing = None
        if spec.get("timing") is not None:
            # Wire timing knobs: {"latency": s, "bandwidth": bytes/s,
            # "politeness": s} — the session-local clock of an
            # event-driven (concurrency=K) crawl.
            tspec = dict(spec["timing"])
            timing = TimingModel(
                bandwidth_bytes_per_s=float(tspec.pop("bandwidth", 2_000_000.0)),
                latency_s=float(tspec.pop("latency", 0.05)),
                politeness_interval_s=float(tspec.pop("politeness", 1.0)),
            )
            if tspec:
                raise SessionError(f"unknown timing keys: {sorted(tspec)}")
        kwargs: dict[str, Any] = {
            k: spec[k]
            for k in (
                "max_pages",
                "sample_interval",
                "extract_from_body",
                "checkpoint_every",
                "concurrency",
            )
            if k in spec and spec[k] is not None
        }
        return SessionConfig(
            resilience=resilience,
            faults=faults,
            adversary=adversary,
            defenses=defenses,
            timing=timing,
            **kwargs,
        )

    @staticmethod
    def build_faults(spec: Mapping[str, Any] | None) -> FaultModel | None:
        if spec is None:
            return None
        spec = dict(spec)
        seed = int(spec.pop("seed", 0))
        return FaultModel(profile=FaultProfile.from_json_dict(spec), seed=seed)

    @staticmethod
    def build_adversary(spec: Mapping[str, Any] | None) -> AdversaryModel | None:
        """An :class:`AdversaryModel` from its wire form (like faults,
        the seed rides inside the spec: ``{"seed": N, ...profile...}``)."""
        if spec is None:
            return None
        spec = dict(spec)
        seed = int(spec.pop("seed", 0))
        return AdversaryModel(profile=AdversaryProfile.from_json_dict(spec), seed=seed)

    # -- command dispatch ----------------------------------------------

    def handle(self, payload: Mapping[str, Any]) -> dict:
        """One request in, one response out; errors become error replies."""
        try:
            if not isinstance(payload, Mapping):
                raise SessionError("a request must be a JSON object")
            cmd = _require(payload, "cmd", "request")
            handler: Callable[[Mapping[str, Any]], dict] | None = getattr(
                self, f"_cmd_{cmd}", None
            )
            if handler is None:
                raise SessionError(f"unknown command {cmd!r}")
            response = handler(payload)
            response["ok"] = True
            return response
        except ReproError as exc:
            return {
                "ok": False,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }

    def _cmd_ping(self, payload: Mapping[str, Any]) -> dict:
        return {"pong": True}

    def _cmd_open(self, payload: Mapping[str, Any]) -> dict:
        name = _require(payload, "session", "open")
        request = self.build_request(_require(payload, "request", "open"))
        faults = self.build_faults(payload.get("request", {}).get("faults"))
        adversary = self.build_adversary(payload.get("request", {}).get("adversary"))
        config = self.build_config(
            payload.get("config") or {}, faults=faults, adversary=adversary
        )
        status = self.manager.open(str(name), request, config)
        return {"session": name, "status": status.to_dict()}

    def _cmd_step(self, payload: Mapping[str, Any]) -> dict:
        name = _require(payload, "session", "step")
        budget = payload.get("budget")
        status = self.manager.step(str(name), int(budget) if budget is not None else None)
        return {"session": name, "status": status.to_dict()}

    def _cmd_status(self, payload: Mapping[str, Any]) -> dict:
        name = _require(payload, "session", "status")
        return {"session": name, "status": self.manager.status(str(name)).to_dict()}

    def _cmd_report(self, payload: Mapping[str, Any]) -> dict:
        name = _require(payload, "session", "report")
        result = self.manager.report(str(name))
        return {"session": name, "report": report_payload(result)}

    def _cmd_evict(self, payload: Mapping[str, Any]) -> dict:
        name = _require(payload, "session", "evict")
        self.manager.evict(str(name))
        return {"session": name, "status": self.manager.status(str(name)).to_dict()}

    def _cmd_close(self, payload: Mapping[str, Any]) -> dict:
        name = _require(payload, "session", "close")
        result = self.manager.close(str(name))
        return {"session": name, "report": report_payload(result)}

    def _cmd_stats(self, payload: Mapping[str, Any]) -> dict:
        return {"stats": self.manager.stats()}

    def _cmd_shutdown(self, payload: Mapping[str, Any]) -> dict:
        self.shutting_down = True
        self.manager.close_all()
        return {"bye": True}

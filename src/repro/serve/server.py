"""Transports for the serve protocol: stdio JSONL and HTTP.

Both transports are thin byte shims over
:class:`repro.serve.protocol.ProtocolHandler` — the protocol owns all
semantics, so a scripted subprocess client (stdio) and an HTTP client
exercise the same code path.

- **stdio**: one JSON request per input line, one JSON response per
  output line, in order.  This is the transport the integration suite
  scripts, and what ``lswc-sim serve`` speaks by default.
- **HTTP**: ``POST /`` with a JSON body; the response body is the JSON
  reply.  ``GET /stats`` answers the stats command for probes.  Served
  by a :class:`ThreadingHTTPServer`, so concurrent requests exercise
  the manager's per-session locking.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Any

from repro.serve.protocol import ProtocolHandler

__all__ = ["serve_stdio", "make_http_server"]


def serve_stdio(handler: ProtocolHandler, stdin: IO[str], stdout: IO[str]) -> int:
    """Answer newline-delimited JSON commands until EOF or ``shutdown``.

    Returns the number of requests served.  Malformed JSON gets an error
    reply rather than killing the server — a line-oriented client must
    always receive exactly one reply per line sent.
    """
    served = 0
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            payload: Any = json.loads(line)
        except json.JSONDecodeError as exc:
            response = {
                "ok": False,
                "error": {"type": "ProtocolError", "message": f"bad JSON: {exc}"},
            }
        else:
            response = handler.handle(payload)
        stdout.write(json.dumps(response, sort_keys=True) + "\n")
        stdout.flush()
        served += 1
        if handler.shutting_down:
            break
    return served


def make_http_server(handler: ProtocolHandler, host: str, port: int) -> ThreadingHTTPServer:
    """An HTTP server bound to ``host:port``; caller runs serve_forever."""

    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _reply(self, response: dict, status: int = 200) -> None:
            body = json.dumps(response, sort_keys=True).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length)
            try:
                payload = json.loads(raw.decode() or "{}")
            except json.JSONDecodeError as exc:
                self._reply(
                    {
                        "ok": False,
                        "error": {"type": "ProtocolError", "message": f"bad JSON: {exc}"},
                    },
                    status=400,
                )
                return
            response = handler.handle(payload)
            self._reply(response, status=200 if response.get("ok") else 400)
            if handler.shutting_down:
                # Stop accepting from a worker thread; serve_forever returns.
                import threading

                threading.Thread(target=self.server.shutdown, daemon=True).start()

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            if self.path.rstrip("/") in ("", "/stats", "/healthz"):
                self._reply(handler.handle({"cmd": "stats"}))
            else:
                self._reply(
                    {
                        "ok": False,
                        "error": {"type": "ProtocolError", "message": "POST JSON to /"},
                    },
                    status=404,
                )

        def log_message(self, format: str, *args: Any) -> None:
            pass  # keep the transport silent; stats speak for themselves

    return ThreadingHTTPServer((host, port), _Handler)

"""URL substrate: parsing, normalisation and link extraction.

The crawler, the virtual web space and the synthetic graph generator all
need to agree on what a URL *is* and when two URLs are the same page.  This
subpackage provides that shared vocabulary:

- :class:`~repro.urlkit.parse.SplitUrl` — a parsed, immutable URL value.
- :func:`~repro.urlkit.normalize.normalize_url` — canonicalisation used as
  the identity function for frontier deduplication.
- :func:`~repro.urlkit.extract.extract_links` — anchor extraction from HTML,
  used when the simulator runs with synthesized page bodies.
"""

from repro.urlkit.extract import LinkContext, extract_link_contexts, extract_links
from repro.urlkit.normalize import (
    clear_url_caches,
    intern_url,
    normalize_url,
    url_cache_sizes,
    url_host,
    url_site_key,
)
from repro.urlkit.parse import SplitUrl, parse_url

__all__ = [
    "SplitUrl",
    "parse_url",
    "clear_url_caches",
    "intern_url",
    "normalize_url",
    "url_cache_sizes",
    "url_host",
    "url_site_key",
    "LinkContext",
    "extract_link_contexts",
    "extract_links",
]

"""Anchor (``<a href=...>``) extraction from HTML.

Used when the simulator runs with synthesized page bodies: the visitor
extracts outlinks from the actual HTML bytes rather than reading them from
the crawl-log record, exercising the same code path a real crawler would.

The extractor is a small hand-rolled scanner rather than a full HTML
parser: it handles quoting, attribute order, embedded whitespace, relative
URL resolution against a base URL, and skips ``javascript:``/``mailto:``
pseudo-links.  It is deliberately forgiving — real-web HTML rarely parses
cleanly, and a crawler that raises on bad markup collects nothing.
"""

from __future__ import annotations

import re

from repro.errors import UrlError
from repro.urlkit.normalize import normalize_url
from repro.urlkit.parse import parse_url

# Matches an <a ...> opening tag; the attribute blob is picked apart below.
_ANCHOR_RE = re.compile(r"<a\s+([^>]*)>", re.IGNORECASE | re.DOTALL)

# href value: double-quoted, single-quoted or bare token.
_HREF_RE = re.compile(
    r"""href\s*=\s*(?:"([^"]*)"|'([^']*)'|([^\s>]+))""",
    re.IGNORECASE,
)

_IGNORED_SCHEMES = ("javascript:", "mailto:", "ftp:", "file:", "data:", "tel:")


def _resolve(base: str, href: str) -> str | None:
    """Resolve ``href`` against ``base`` and normalise; None if unusable."""
    href = href.strip()
    if not href or href.startswith("#"):
        return None
    lowered = href.lower()
    if any(lowered.startswith(scheme) for scheme in _IGNORED_SCHEMES):
        return None

    if "://" in href:
        absolute = href
    else:
        base_split = parse_url(base)
        if href.startswith("//"):
            absolute = f"{base_split.scheme}:{href}"
        elif href.startswith("/"):
            absolute = f"{base_split.scheme}://{base_split.site_key}{href}"
        else:
            # Relative to the base path's directory.
            directory = base_split.path.rsplit("/", 1)[0]
            absolute = f"{base_split.scheme}://{base_split.site_key}{directory}/{href}"

    try:
        return normalize_url(absolute)
    except UrlError:
        return None


def extract_links(html: str | bytes, base_url: str) -> list[str]:
    """Extract normalised absolute outlink URLs from an HTML document.

    Args:
        html: the document markup; bytes are decoded permissively as
            Latin-1, which is byte-transparent and sufficient because URLs
            in our synthesized pages are always ASCII.
        base_url: absolute URL of the document, used to resolve relative
            links.

    Returns:
        Outlinks in document order with duplicates removed (first
        occurrence wins).
    """
    if isinstance(html, bytes):
        text = html.decode("latin-1")
    else:
        text = html

    seen: set[str] = set()
    links: list[str] = []
    for anchor in _ANCHOR_RE.finditer(text):
        href_match = _HREF_RE.search(anchor.group(1))
        if href_match is None:
            continue
        href = next(group for group in href_match.groups() if group is not None)
        resolved = _resolve(base_url, href)
        if resolved is not None and resolved not in seen:
            seen.add(resolved)
            links.append(resolved)
    return links

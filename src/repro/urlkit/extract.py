"""Anchor (``<a href=...>``) extraction from HTML.

Used when the simulator runs with synthesized page bodies: the visitor
extracts outlinks from the actual HTML bytes rather than reading them from
the crawl-log record, exercising the same code path a real crawler would.

The extractor is a small hand-rolled scanner rather than a full HTML
parser: it handles quoting, attribute order, embedded whitespace, relative
URL resolution against a base URL, and skips ``javascript:``/``mailto:``
pseudo-links.  It is deliberately forgiving — real-web HTML rarely parses
cleanly, and a crawler that raises on bad markup collects nothing.

Two entry points share one anchor scan:

- :func:`extract_links` returns bare normalised URLs (the classic path).
- :func:`extract_link_contexts` additionally captures the anchor text and
  a window of surrounding text per link, for strategies that score
  candidates on textual cues.  Its URL sequence is exactly the
  :func:`extract_links` output.
"""

from __future__ import annotations

import re
from html import unescape
from typing import Iterator, NamedTuple

from repro.errors import UrlError
from repro.urlkit.normalize import normalize_url
from repro.urlkit.parse import parse_url

# Matches an <a ...> opening tag; the attribute blob is picked apart below.
_ANCHOR_RE = re.compile(r"<a\s+([^>]*)>", re.IGNORECASE | re.DOTALL)

# Matching close tag for anchor-text capture (permissive whitespace).
_ANCHOR_CLOSE_RE = re.compile(r"</a\s*>", re.IGNORECASE)

# href value: double-quoted, single-quoted or bare token.
_HREF_RE = re.compile(
    r"""href\s*=\s*(?:"([^"]*)"|'([^']*)'|([^\s>]+))""",
    re.IGNORECASE,
)

# Any markup tag, for stripping nested tags out of captured text.
_TAG_RE = re.compile(r"<[^>]*>")

_IGNORED_SCHEMES = ("javascript:", "mailto:", "ftp:", "file:", "data:", "tel:")

# Characters of raw markup captured on each side of an anchor for the
# ``around_text`` field.
_AROUND_WINDOW = 120


class LinkContext(NamedTuple):
    """One outlink with the textual context it was found in."""

    url: str
    anchor_text: str
    around_text: str


def _resolve(base: str, href: str) -> str | None:
    """Resolve ``href`` against ``base`` and normalise; None if unusable."""
    href = href.strip()
    if not href or href.startswith("#"):
        return None
    lowered = href.lower()
    if any(lowered.startswith(scheme) for scheme in _IGNORED_SCHEMES):
        return None

    if "://" in href:
        absolute = href
    else:
        base_split = parse_url(base)
        if href.startswith("//"):
            absolute = f"{base_split.scheme}:{href}"
        elif href.startswith("/"):
            absolute = f"{base_split.scheme}://{base_split.site_key}{href}"
        elif href.startswith("?"):
            # RFC 3986 §5.3: a query-only reference keeps the base path and
            # replaces the base query.  (The old code merged it against the
            # base *directory*, yielding /dir/?sid=1 for base /dir/page.html.)
            absolute = f"{base_split.scheme}://{base_split.site_key}{base_split.path}{href}"
        else:
            # Merge with the base path's directory (RFC 3986 §5.3); any
            # ``.``/``..`` segments in the merged path are collapsed by
            # normalize_url per §5.2.4.
            directory = base_split.path.rsplit("/", 1)[0]
            absolute = f"{base_split.scheme}://{base_split.site_key}{directory}/{href}"

    try:
        return normalize_url(absolute)
    except UrlError:
        return None


def _iter_anchor_hrefs(text: str) -> Iterator[tuple[str, int, int]]:
    """Yield ``(href, tag_start, tag_end)`` for each anchor carrying a href."""
    for anchor in _ANCHOR_RE.finditer(text):
        href_match = _HREF_RE.search(anchor.group(1))
        if href_match is None:
            continue
        href = next(group for group in href_match.groups() if group is not None)
        yield href, anchor.start(), anchor.end()


def _as_text(html: str | bytes) -> str:
    if isinstance(html, bytes):
        # Latin-1 is byte-transparent and sufficient because URLs in our
        # synthesized pages are always ASCII.
        return html.decode("latin-1")
    return html


def _clean_text(fragment: str) -> str:
    """Strip tags, decode entity references and collapse whitespace."""
    return " ".join(unescape(_TAG_RE.sub(" ", fragment)).split())


def extract_links(html: str | bytes, base_url: str) -> list[str]:
    """Extract normalised absolute outlink URLs from an HTML document.

    Args:
        html: the document markup; bytes are decoded permissively as
            Latin-1, which is byte-transparent and sufficient because URLs
            in our synthesized pages are always ASCII.
        base_url: absolute URL of the document, used to resolve relative
            links.

    Returns:
        Outlinks in document order with duplicates removed (first
        occurrence wins).
    """
    text = _as_text(html)
    seen: set[str] = set()
    links: list[str] = []
    for href, _start, _end in _iter_anchor_hrefs(text):
        resolved = _resolve(base_url, href)
        if resolved is not None and resolved not in seen:
            seen.add(resolved)
            links.append(resolved)
    return links


def extract_link_contexts(html: str | bytes, base_url: str) -> list[LinkContext]:
    """Extract outlinks together with anchor text and surrounding text.

    The URL sequence is identical to ``extract_links(html, base_url)``:
    same resolution, same document order, same first-occurrence dedup.
    For each kept link:

    - ``anchor_text`` is the text between ``<a ...>`` and the matching
      ``</a>``, with nested tags stripped, entity references decoded and
      whitespace collapsed.  An unclosed anchor yields ``""``.
    - ``around_text`` is a window of document text around the anchor
      (including the anchor text itself), cleaned the same way.

    Bytes input is decoded as Latin-1, like :func:`extract_links` — safe
    for URL extraction (byte-transparent) but lossy for *text* in native
    CJK/Thai encodings, whose anchor characters then score as mojibake.
    Textual-cue strategies therefore see full signal in record-replay
    mode (contexts synthesized from the crawl log) and only entity- or
    UTF-8-encoded signal when parsing raw bodies.
    """
    text = _as_text(html)
    seen: set[str] = set()
    contexts: list[LinkContext] = []
    for href, tag_start, tag_end in _iter_anchor_hrefs(text):
        resolved = _resolve(base_url, href)
        if resolved is None or resolved in seen:
            continue
        seen.add(resolved)

        close = _ANCHOR_CLOSE_RE.search(text, tag_end)
        if close is not None:
            anchor_text = _clean_text(text[tag_end : close.start()])
            after = close.end()
        else:
            anchor_text = ""
            after = tag_end
        around_text = _clean_text(
            text[max(0, tag_start - _AROUND_WINDOW) : after + _AROUND_WINDOW]
        )
        contexts.append(LinkContext(resolved, anchor_text, around_text))
    return contexts

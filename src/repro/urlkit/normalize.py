"""URL normalisation.

Two URLs denote the same page iff they normalise to the same string, so
this function defines page identity for the whole system: the frontier
deduplicates on it, the LinkDB keys on it, and the generator emits URLs
already in normal form (a property the tests verify).

The normalisations applied are the standard semantics-preserving ones:

- scheme and host are lowercased,
- a default port (80 for http, 443 for https) is dropped,
- dot-segments (``.`` and ``..``) in the path are resolved,
- duplicate slashes in the path are collapsed,
- an empty path becomes ``/``,
- the fragment is removed,
- an empty query (trailing ``?``) is dropped.

Because normalised URLs *are* page identities, they are also interned
(:func:`intern_url`): every equal URL string in the system shares one
object, so the hash-table probes that dominate the crawl loop —
``scheduled``-set membership, crawl-log and frontier dict lookups —
short-circuit on pointer equality instead of comparing characters.
:func:`normalize_url` additionally memoises its input→output mapping in
a bounded cache, since crawl graphs present the same href strings many
times.
"""

from __future__ import annotations

from sys import intern as _intern

from repro.urlkit.parse import SplitUrl, parse_url

#: Upper bound of the normalisation memo; past it the map is simply
#: reset (the working set of distinct hrefs in one simulation is far
#: smaller, so the reset is a safety valve, not a working regime).
_MEMO_MAX = 1 << 18

_memo: dict[str, str] = {}


def intern_url(url: str) -> str:
    """The canonical *object* for an already-normalised URL string.

    Plain :func:`sys.intern`, re-exported under a domain name so call
    sites say why they intern: two URLs denote the same page iff they
    normalise to the same string, and interning makes that comparison a
    pointer check.
    """
    return _intern(url)


def _resolve_dot_segments(path: str) -> str:
    """Resolve ``.`` and ``..`` segments per RFC 3986 §5.2.4."""
    output: list[str] = []
    for segment in path.split("/"):
        if segment == "." or segment == "":
            continue
        if segment == "..":
            if output:
                output.pop()
            continue
        output.append(segment)
    resolved = "/" + "/".join(output)
    # Preserve a trailing slash: /a/b/ and /a/b are different resources.
    if path.endswith(("/", "/.", "/..")) and resolved != "/":
        resolved += "/"
    return resolved


def normalize_split(split: SplitUrl) -> SplitUrl:
    """Normalise an already-parsed URL."""
    port = split.port
    if port is not None and port == split.effective_port and port in (80, 443):
        # parse_url gave us an explicit default port; drop it.
        if (split.scheme, port) in (("http", 80), ("https", 443)):
            port = None
    path = _resolve_dot_segments(split.path)
    return SplitUrl(scheme=split.scheme, host=split.host, port=port, path=path, query=split.query)


def normalize_url(url: str) -> str:
    """Return the canonical, interned form of ``url``.

    Memoised: repeated normalisation of the same href string (the common
    case when replaying a crawl graph) is one dict probe.  Only
    successful normalisations are cached — parse errors always re-raise.

    Raises:
        UrlError: if the URL cannot be parsed at all.
    """
    cached = _memo.get(url)
    if cached is not None:
        return cached
    normalized = _intern(normalize_split(parse_url(url)).unsplit())
    if len(_memo) >= _MEMO_MAX:
        _memo.clear()
    _memo[url] = normalized
    return normalized


def url_host(url: str) -> str:
    """The lowercased host of ``url`` (convenience accessor)."""
    return parse_url(url).host


#: Memo for :func:`url_site_key` — the timing model, politeness queues,
#: fault model and resilient crawl loop all ask for a URL's site on the
#: per-fetch path, and URLs are interned so probes are pointer-fast.
_site_memo: dict[str, str] = {}


def url_site_key(url: str) -> str:
    """The ``host:port`` site key of ``url`` (see :attr:`SplitUrl.site_key`)."""
    cached = _site_memo.get(url)
    if cached is not None:
        return cached
    site = _intern(parse_url(url).site_key)
    if len(_site_memo) >= _MEMO_MAX:
        _site_memo.clear()
    _site_memo[url] = site
    return site

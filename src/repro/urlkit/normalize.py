"""URL normalisation.

Two URLs denote the same page iff they normalise to the same string, so
this function defines page identity for the whole system: the frontier
deduplicates on it, the LinkDB keys on it, and the generator emits URLs
already in normal form (a property the tests verify).

The normalisations applied are the standard semantics-preserving ones:

- scheme and host are lowercased,
- a default port (80 for http, 443 for https) is dropped,
- dot-segments (``.`` and ``..``) in the path are resolved,
- duplicate slashes in the path are collapsed,
- an empty path becomes ``/``,
- the fragment is removed,
- an empty query (trailing ``?``) is dropped.

Because normalised URLs *are* page identities, they are also interned
(:func:`intern_url`): every equal URL string in the system shares one
object, so the hash-table probes that dominate the crawl loop —
``scheduled``-set membership, crawl-log and frontier dict lookups —
short-circuit on pointer equality instead of comparing characters.
:func:`normalize_url` additionally memoises its input→output mapping in
a bounded cache, since crawl graphs present the same href strings many
times.

Every table in this module is **bounded** and generation-cleared: when a
table reaches its cap it is simply reset and repopulated by subsequent
traffic.  The caps (:data:`_INTERN_MAX`, :data:`_MEMO_MAX`) are read at
call time, so a million-page out-of-core crawl holds at most a bounded
working set of URL strings regardless of web size — this is what lets
the store-backed crawls keep a flat resident footprint.  (The earlier
implementation used :func:`sys.intern`, whose table only sheds entries
when the *caller* drops every reference; a dict generation is droppable
unilaterally.)  Clearing costs only the pointer fast path and memo hits
for one warm-up; equality stays correct because interning is an
optimisation, never a semantic.
"""

from __future__ import annotations

from repro.urlkit.parse import SplitUrl, parse_url

#: Upper bound of the normalisation and site memos; past it the map is
#: simply reset (the working set of distinct hrefs in one simulation is
#: far smaller, so the reset is a safety valve, not a working regime).
_MEMO_MAX = 1 << 18

#: Upper bound of the intern table.  Sized to hold every URL of the
#: in-memory experiment scales; out-of-core crawls cycle generations.
_INTERN_MAX = 1 << 18

_memo: dict[str, str] = {}

_intern_table: dict[str, str] = {}


def intern_url(url: str) -> str:
    """The canonical *object* for an already-normalised URL string.

    Two URLs denote the same page iff they normalise to the same string,
    and interning makes that comparison a pointer check.  Backed by a
    bounded generation-cleared table — **not** :func:`sys.intern`, whose
    entries pin the only copy of every URL a crawl ever touched for as
    long as anything references it; the table here can be dropped
    wholesale between generations, so URL identity never costs more than
    a bounded working set.
    """
    canonical = _intern_table.get(url)
    if canonical is not None:
        return canonical
    if len(_intern_table) >= _INTERN_MAX:
        _intern_table.clear()
    _intern_table[url] = url
    return url


def url_cache_sizes() -> dict[str, int]:
    """Current entry counts of every URL table (observability/tests)."""
    return {
        "intern": len(_intern_table),
        "normalize": len(_memo),
        "site": len(_site_memo),
    }


def clear_url_caches() -> None:
    """Drop every URL table (tests, and between unrelated crawls)."""
    _intern_table.clear()
    _memo.clear()
    _site_memo.clear()


def _resolve_dot_segments(path: str) -> str:
    """Resolve ``.`` and ``..`` segments per RFC 3986 §5.2.4."""
    output: list[str] = []
    for segment in path.split("/"):
        if segment == "." or segment == "":
            continue
        if segment == "..":
            if output:
                output.pop()
            continue
        output.append(segment)
    resolved = "/" + "/".join(output)
    # Preserve a trailing slash: /a/b/ and /a/b are different resources.
    if path.endswith(("/", "/.", "/..")) and resolved != "/":
        resolved += "/"
    return resolved


def normalize_split(split: SplitUrl) -> SplitUrl:
    """Normalise an already-parsed URL."""
    port = split.port
    if port is not None and port == split.effective_port and port in (80, 443):
        # parse_url gave us an explicit default port; drop it.
        if (split.scheme, port) in (("http", 80), ("https", 443)):
            port = None
    path = _resolve_dot_segments(split.path)
    return SplitUrl(scheme=split.scheme, host=split.host, port=port, path=path, query=split.query)


def normalize_url(url: str) -> str:
    """Return the canonical, interned form of ``url``.

    Memoised: repeated normalisation of the same href string (the common
    case when replaying a crawl graph) is one dict probe.  Only
    successful normalisations are cached — parse errors always re-raise.

    Raises:
        UrlError: if the URL cannot be parsed at all.
    """
    cached = _memo.get(url)
    if cached is not None:
        return cached
    normalized = intern_url(normalize_split(parse_url(url)).unsplit())
    if len(_memo) >= _MEMO_MAX:
        _memo.clear()
    _memo[url] = normalized
    return normalized


def url_host(url: str) -> str:
    """The lowercased host of ``url`` (convenience accessor)."""
    return parse_url(url).host


#: Memo for :func:`url_site_key` — the timing model, politeness queues,
#: fault model and resilient crawl loop all ask for a URL's site on the
#: per-fetch path, and URLs are interned so probes are pointer-fast.
_site_memo: dict[str, str] = {}


def url_site_key(url: str) -> str:
    """The ``host:port`` site key of ``url`` (see :attr:`SplitUrl.site_key`)."""
    cached = _site_memo.get(url)
    if cached is not None:
        return cached
    site = intern_url(parse_url(url).site_key)
    if len(_site_memo) >= _MEMO_MAX:
        _site_memo.clear()
    _site_memo[url] = site
    return site

"""Lightweight URL parsing.

The standard library's :mod:`urllib.parse` is general but slow for the
millions of URL operations a crawl simulation performs, and it accepts many
inputs a web crawler should reject.  ``parse_url`` implements the subset of
RFC 3986 a crawler needs — scheme, host, port, path, query — as an immutable
value type with cheap accessors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UrlError

_SUPPORTED_SCHEMES = frozenset({"http", "https"})

_DEFAULT_PORTS = {"http": 80, "https": 443}

# Characters permitted in a registered name (host).  We accept IDNA-encoded
# hosts (all-ASCII) only; the generator never produces anything else.
_HOST_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789.-")


@dataclass(frozen=True, slots=True)
class SplitUrl:
    """An immutable parsed URL.

    Attributes mirror RFC 3986 component names.  ``port`` is ``None`` when
    the URL does not carry an explicit port; use :attr:`effective_port` for
    the scheme default.
    """

    scheme: str
    host: str
    port: int | None
    path: str
    query: str

    @property
    def effective_port(self) -> int:
        """The explicit port, or the scheme's well-known default."""
        if self.port is not None:
            return self.port
        return _DEFAULT_PORTS[self.scheme]

    @property
    def site_key(self) -> str:
        """Identity of the *server* this URL lives on (``host:port``).

        Per-server politeness queues and the host model of the graph
        generator key on this value.
        """
        return f"{self.host}:{self.effective_port}"

    def unsplit(self) -> str:
        """Reassemble the URL into its canonical string form."""
        netloc = self.host
        if self.port is not None and self.port != _DEFAULT_PORTS[self.scheme]:
            netloc = f"{self.host}:{self.port}"
        url = f"{self.scheme}://{netloc}{self.path}"
        if self.query:
            url = f"{url}?{self.query}"
        return url


def parse_url(url: str) -> SplitUrl:
    """Parse ``url`` into a :class:`SplitUrl`.

    Raises:
        UrlError: if the URL is relative, uses an unsupported scheme, or has
            a malformed authority component.
    """
    if not isinstance(url, str):
        raise UrlError(f"URL must be a string, got {type(url).__name__}")

    scheme, sep, rest = url.partition("://")
    if not sep:
        raise UrlError(f"relative or scheme-less URL: {url!r}")
    scheme = scheme.lower()
    if scheme not in _SUPPORTED_SCHEMES:
        raise UrlError(f"unsupported scheme {scheme!r} in {url!r}")

    # Strip the fragment first: it never reaches the server.
    rest, _, _fragment = rest.partition("#")

    authority, slash, path_and_query = rest.partition("/")
    path_and_query = slash + path_and_query if slash else ""
    path, qmark, query = path_and_query.partition("?")

    if not authority:
        raise UrlError(f"URL has no host: {url!r}")

    # Userinfo is deliberately rejected: crawlers must not follow
    # credential-bearing links.
    if "@" in authority:
        raise UrlError(f"userinfo not supported: {url!r}")

    host, colon, port_str = authority.partition(":")
    host = host.lower()
    if not host or not set(host) <= _HOST_CHARS:
        raise UrlError(f"malformed host {host!r} in {url!r}")
    if host.startswith(".") or host.endswith(".") or ".." in host:
        raise UrlError(f"malformed host {host!r} in {url!r}")

    port: int | None = None
    if colon:
        if not port_str.isdigit():
            raise UrlError(f"malformed port {port_str!r} in {url!r}")
        port = int(port_str)
        if not 1 <= port <= 65535:
            raise UrlError(f"port out of range in {url!r}")

    if not path:
        path = "/"

    return SplitUrl(scheme=scheme, host=host, port=port, path=path, query=query if qmark else "")

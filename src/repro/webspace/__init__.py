"""Virtual web space substrate (paper §4).

The Web Crawling Simulator is *trace-driven*: a crawl log captured from
the real Web (here: synthesized by :mod:`repro.graphgen`) defines a frozen
snapshot, and the :class:`~repro.webspace.virtualweb.VirtualWebSpace`
answers each "download" request with the recorded properties of the page
— HTTP status, charset, outlinks — exactly as the paper describes.

Components:

- :class:`~repro.webspace.page.PageRecord` — one crawl-log entry.
- :class:`~repro.webspace.crawllog.CrawlLog` — the log store, with a
  versioned JSONL(.gz) on-disk format.
- :class:`~repro.webspace.linkdb.LinkDB` — forward/backward adjacency.
- :class:`~repro.webspace.virtualweb.VirtualWebSpace` — the request
  interface the simulated crawler talks to.
- :mod:`~repro.webspace.stats` — dataset characteristics (paper Table 3).
"""

from repro.webspace.base import PageSource, WebSpace
from repro.webspace.crawllog import CrawlLog
from repro.webspace.linkdb import LinkDB
from repro.webspace.page import HTML_CONTENT_TYPE, STATUS_OK, PageRecord
from repro.webspace.store import PageStore, StoreBuilder, StoreLinkDB
from repro.webspace.query import (
    diff_logs,
    filter_log,
    host_bucket,
    host_partition,
    merge_logs,
    sample_log,
)
from repro.webspace.stats import DatasetStats, compute_stats
from repro.webspace.virtualweb import FetchResponse, VirtualWebSpace

__all__ = [
    "PageRecord",
    "STATUS_OK",
    "HTML_CONTENT_TYPE",
    "PageSource",
    "WebSpace",
    "CrawlLog",
    "PageStore",
    "StoreBuilder",
    "StoreLinkDB",
    "LinkDB",
    "VirtualWebSpace",
    "FetchResponse",
    "DatasetStats",
    "compute_stats",
    "filter_log",
    "merge_logs",
    "sample_log",
    "diff_logs",
    "host_bucket",
    "host_partition",
]

"""The web-space layer contracts: page sources and web spaces.

The out-of-core refactor splits what used to be one implicit interface
into two explicit protocols:

- :class:`PageSource` — the **storage** contract: a read-only, ordered
  mapping of normalised URL → :class:`~repro.webspace.page.PageRecord`.
  Both the in-memory :class:`~repro.webspace.crawllog.CrawlLog` and the
  columnar :class:`~repro.webspace.store.PageStore` satisfy it, which is
  what lets every consumer (virtual web, stats, LinkDB, checkpoint
  record re-attachment) run unchanged over either backend.

- :class:`WebSpace` — the **access** contract: what the crawl engines
  (:class:`~repro.core.engine.CrawlEngine`,
  :class:`~repro.core.sched.VirtualTimeEngine`) and the wrapping layers
  (:class:`~repro.faults.FaultyWebSpace`,
  :class:`~repro.adversary.AdversarialWebSpace`) actually consume: a
  ``fetch`` responder plus the introspection surface the wrappers
  delegate.  Bodies are synthesized lazily on fetch — nothing above the
  storage layer ever holds the whole web as live objects.

Both are :func:`typing.runtime_checkable` so tests can assert
conformance structurally.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.webspace.page import PageRecord
    from repro.webspace.virtualweb import FetchResponse


@runtime_checkable
class PageSource(Protocol):
    """Read-only ordered mapping of normalised URL → page record.

    Iteration order is the source's insertion order (the generator's
    emission order for universes, the capture crawl's visit order for
    datasets); determinism checks rely on it.
    """

    def __len__(self) -> int: ...

    def __contains__(self, url: str) -> bool: ...

    def __iter__(self) -> Iterator["PageRecord"]: ...

    def get(self, url: str) -> "PageRecord | None": ...

    def __getitem__(self, url: str) -> "PageRecord": ...

    def urls(self) -> Iterator[str]: ...


@runtime_checkable
class WebSpace(Protocol):
    """The fetch interface the crawl engines consume.

    ``fetch_count`` is mutable accounting (every layer increments its
    own); ``crawl_log`` exposes the underlying :class:`PageSource` so
    resume paths can re-attach records without holding live objects in
    checkpoints.
    """

    fetch_count: int

    def fetch(self, url: str) -> "FetchResponse": ...

    def __contains__(self, url: str) -> bool: ...

    @property
    def crawl_log(self) -> PageSource: ...

    @property
    def synthesizes_bodies(self) -> bool: ...

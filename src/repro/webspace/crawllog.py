"""Crawl-log storage.

A :class:`CrawlLog` is the frozen snapshot the simulator replays — the
paper's "database of crawl logs ... acquired by actually crawling the Web".
Ours are synthesized, but the store does not care where records came from.

On-disk format: one JSON object per line, with a header line carrying the
format name and version so future revisions stay detectable.  Files ending
in ``.gz`` are transparently gzip-compressed.
"""

from __future__ import annotations

import gzip
import json
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import IO

from repro.errors import CrawlLogError, UnknownPageError
from repro.webspace.page import PageRecord

_FORMAT_NAME = "repro-lswc-crawllog"
_FORMAT_VERSION = 1


class CrawlLog:
    """In-memory crawl-log store keyed by normalised URL.

    Insertion order is preserved (it is the generator's emission order,
    which tests rely on for determinism checks).  Duplicate URLs are an
    error: a crawl log is a snapshot, so each URL has exactly one record.
    """

    def __init__(self, pages: Iterable[PageRecord] = ()) -> None:
        self._pages: dict[str, PageRecord] = {}
        for page in pages:
            self.add(page)

    # -- mutation ----------------------------------------------------------

    def add(self, page: PageRecord) -> None:
        """Insert a record; raises :class:`CrawlLogError` on duplicates."""
        if page.url in self._pages:
            raise CrawlLogError(f"duplicate crawl-log record for {page.url!r}")
        self._pages[page.url] = page

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, url: str) -> bool:
        return url in self._pages

    def __iter__(self) -> Iterator[PageRecord]:
        return iter(self._pages.values())

    def get(self, url: str) -> PageRecord | None:
        """The record for ``url``, or None if the URL was never captured."""
        return self._pages.get(url)

    def __getitem__(self, url: str) -> PageRecord:
        try:
            return self._pages[url]
        except KeyError:
            raise UnknownPageError(url) from None

    def urls(self) -> Iterator[str]:
        return iter(self._pages.keys())

    # -- persistence -------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the log to ``path`` (gzip when the suffix is ``.gz``)."""
        path = Path(path)
        with _open_write(path) as handle:
            header = {"format": _FORMAT_NAME, "version": _FORMAT_VERSION, "pages": len(self)}
            handle.write(json.dumps(header) + "\n")
            for page in self:
                handle.write(json.dumps(page.to_json_dict(), separators=(",", ":")) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "CrawlLog":
        """Read a log written by :meth:`save`.

        Raises:
            CrawlLogError: on a missing/invalid header, unsupported
                version, or malformed record line.
        """
        path = Path(path)
        log = cls()
        with _open_read(path) as handle:
            header_line = handle.readline()
            if not header_line:
                raise CrawlLogError(f"{path}: empty crawl-log file")
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError as exc:
                raise CrawlLogError(f"{path}: malformed header: {exc}") from exc
            if header.get("format") != _FORMAT_NAME:
                raise CrawlLogError(f"{path}: not a crawl-log file (format={header.get('format')!r})")
            if header.get("version") != _FORMAT_VERSION:
                raise CrawlLogError(f"{path}: unsupported version {header.get('version')!r}")
            for line_number, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                try:
                    log.add(PageRecord.from_json_dict(json.loads(line)))
                except (json.JSONDecodeError, KeyError, ValueError) as exc:
                    raise CrawlLogError(f"{path}:{line_number}: malformed record: {exc}") from exc
        return log


def _open_write(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_read(path: Path) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")

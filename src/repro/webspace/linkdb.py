"""LinkDB: the link database of the simulator (paper Figure 2).

Provides forward adjacency (outlinks, straight from the crawl log) and
lazily-built backward adjacency (inlinks), plus the graph traversals the
experiment harness and tests need: reachability from a seed set and
degree statistics.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from repro.webspace.base import PageSource


class LinkDB:
    """Adjacency views over any :class:`~repro.webspace.base.PageSource`
    (in-memory :class:`~repro.webspace.crawllog.CrawlLog` or columnar
    :class:`~repro.webspace.store.PageStore`; for the latter, the
    arena-backed :class:`~repro.webspace.store.StoreLinkDB` answers the
    same queries without building string dictionaries).

    Only OK HTML pages contribute outlinks (a 404 has no body to extract
    links from), matching how the capture crawler produced the log.
    """

    def __init__(self, crawl_log: PageSource) -> None:
        self._log = crawl_log
        self._backward: dict[str, list[str]] | None = None

    # -- forward links -----------------------------------------------------

    def forward(self, url: str) -> tuple[str, ...]:
        """Outlinks of ``url``; empty for non-OK, non-HTML or unknown URLs."""
        record = self._log.get(url)
        if record is None or not record.ok or not record.is_html:
            return ()
        return record.outlinks

    def out_degree(self, url: str) -> int:
        return len(self.forward(url))

    # -- backward links ----------------------------------------------------

    def backward(self, url: str) -> tuple[str, ...]:
        """Inlinks of ``url`` (sources are OK HTML pages, by construction)."""
        if self._backward is None:
            self._build_backward()
        assert self._backward is not None
        return tuple(self._backward.get(url, ()))

    def in_degree(self, url: str) -> int:
        if self._backward is None:
            self._build_backward()
        assert self._backward is not None
        return len(self._backward.get(url, ()))

    def _build_backward(self) -> None:
        backward: dict[str, list[str]] = {}
        for record in self._log:
            if not record.ok or not record.is_html:
                continue
            for target in record.outlinks:
                backward.setdefault(target, []).append(record.url)
        self._backward = backward

    # -- traversal ---------------------------------------------------------

    def reachable_from(self, seeds: Iterable[str]) -> set[str]:
        """All URLs discoverable from ``seeds`` by following forward links.

        Includes the seeds themselves and link targets with no record
        (dangling URLs): discovery does not require fetchability.
        """
        seen: set[str] = set()
        queue: deque[str] = deque()
        for seed in seeds:
            if seed not in seen:
                seen.add(seed)
                queue.append(seed)
        while queue:
            url = queue.popleft()
            for target in self.forward(url):
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen

    def edges(self) -> Iterator[tuple[str, str]]:
        """All (source, target) link pairs in crawl-log order."""
        for record in self._log:
            if not record.ok or not record.is_html:
                continue
            for target in record.outlinks:
                yield record.url, target

    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

"""The crawl-log page record.

One :class:`PageRecord` is what the paper's virtual web space returns for
a request: HTTP status, charset, outlinks, plus bookkeeping the generator
adds (the page's *true* language, whether its declared charset is a
mislabel) that lets experiments separate classifier error from strategy
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.charset.languages import Language, language_of_charset
from repro.urlkit.normalize import intern_url

#: HTTP status of a successfully fetched page ("OK status (200)" in Table 3).
STATUS_OK = 200

#: Statuses the fault layer (:mod:`repro.faults`) injects.  They live
#: here, next to :data:`STATUS_OK`, because they are part of the page
#: vocabulary every layer shares — a visitor must be able to tell a
#: retryable server condition from a genuine 404 without importing the
#: fault subsystem.
STATUS_SERVER_ERROR = 503  #: transient 5xx: retry and the host recovers
STATUS_TIMEOUT = 408  #: the attempt hung and was abandoned
STATUS_HOST_DOWN = 521  #: the whole host is inside an outage window

#: Statuses a resilient fetch pipeline should treat as retryable.
RETRYABLE_STATUSES = frozenset({STATUS_SERVER_ERROR, STATUS_TIMEOUT, STATUS_HOST_DOWN})

#: Content type of pages that participate in link expansion.
HTML_CONTENT_TYPE = "text/html"


@dataclass(frozen=True, slots=True)
class PageRecord:
    """One entry of a crawl log.

    Attributes:
        url: normalised absolute URL; the record's identity.
        status: HTTP status the capture crawler observed (200, 3xx, 4xx, 5xx).
        content_type: MIME type; only ``text/html`` pages have outlinks.
        charset: the charset label the *server/author declared* — what a
            META tag would say.  ``None`` when the page declared nothing.
            May disagree with :attr:`true_language` (paper §3 observation 3:
            "Thai web pages are mislabeled as non-Thai web pages").
        true_language: ground-truth language of the page content, known to
            the generator.  Real crawl logs do not carry this field; it
            exists so experiments can quantify classifier error.
        outlinks: normalised URLs of the anchors on the page, in document
            order, duplicates removed.
        size: page body size in bytes (drives the optional timing model).
        link_cues: optional per-outlink textual-cue bytes (one per
            ``outlinks`` entry; encoding in
            :mod:`repro.graphgen.linkcontext`).  ``None`` on datasets
            generated without cue knobs — consumers must treat the two
            the same way they treat an absent column.
    """

    url: str
    status: int = STATUS_OK
    content_type: str = HTML_CONTENT_TYPE
    charset: str | None = None
    true_language: Language = Language.OTHER
    outlinks: tuple[str, ...] = field(default=())
    size: int = 0
    link_cues: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        # Records are where every URL in the system originates, so the
        # canonical string objects are established here: interning makes
        # the simulator's scheduled-set and crawl-log lookups compare
        # pointers, not characters (see repro.urlkit.normalize).
        object.__setattr__(self, "url", intern_url(self.url))
        object.__setattr__(
            self, "outlinks", tuple(intern_url(link) for link in self.outlinks)
        )

    @property
    def ok(self) -> bool:
        """True when the capture crawler got a 200 for this URL."""
        return self.status == STATUS_OK

    @property
    def is_html(self) -> bool:
        return self.content_type == HTML_CONTENT_TYPE

    @property
    def declared_language(self) -> Language:
        """Language implied by the declared charset (META-tag semantics)."""
        return language_of_charset(self.charset)

    @property
    def mislabeled(self) -> bool:
        """True when the declared charset disagrees with the true language."""
        return self.declared_language is not self.true_language

    def to_json_dict(self) -> dict:
        """Serialise for the crawl-log file format (compact keys)."""
        record: dict = {"u": self.url, "s": self.status}
        if self.content_type != HTML_CONTENT_TYPE:
            record["t"] = self.content_type
        if self.charset is not None:
            record["c"] = self.charset
        if self.true_language is not Language.OTHER:
            record["l"] = self.true_language.value
        if self.outlinks:
            record["o"] = list(self.outlinks)
        if self.size:
            record["z"] = self.size
        if self.link_cues is not None:
            record["lc"] = list(self.link_cues)
        return record

    @classmethod
    def from_json_dict(cls, record: dict) -> "PageRecord":
        """Inverse of :meth:`to_json_dict`."""
        return cls(
            url=record["u"],
            status=record.get("s", STATUS_OK),
            content_type=record.get("t", HTML_CONTENT_TYPE),
            charset=record.get("c"),
            true_language=Language(record.get("l", Language.OTHER.value)),
            outlinks=tuple(record.get("o", ())),
            size=record.get("z", 0),
            link_cues=tuple(record["lc"]) if "lc" in record else None,
        )

"""Crawl-log query and transform operations.

Datasets are crawl logs; working with them — slicing a national subset
out of a larger crawl, merging two capture sessions, sampling a pilot
corpus, diffing snapshots — needs set-algebra over logs.  These
functions provide it, always producing *consistent* logs: a filtered
log's outlinks may dangle (that is how real sub-crawls look and the
virtual web space answers dangling fetches with 404s), but records are
never duplicated and never mutated.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro.charset.languages import Language
from repro.errors import CrawlLogError
from repro.urlkit.normalize import url_host
from repro.webspace.crawllog import CrawlLog
from repro.webspace.page import PageRecord

#: A record predicate.
Predicate = Callable[[PageRecord], bool]


def filter_log(crawl_log: CrawlLog, predicate: Predicate) -> CrawlLog:
    """Records satisfying ``predicate``, in original order."""
    return CrawlLog(record for record in crawl_log if predicate(record))


def by_language(language: Language, declared: bool = True) -> Predicate:
    """Predicate: page is in ``language`` (declared charset or truth)."""

    def check(record: PageRecord) -> bool:
        judged = record.declared_language if declared else record.true_language
        return judged is language

    return check


def by_host_suffix(suffix: str) -> Predicate:
    """Predicate: page's host ends with ``suffix`` (e.g. ``".th"``)."""

    def check(record: PageRecord) -> bool:
        return url_host(record.url).endswith(suffix)

    return check


def ok_html() -> Predicate:
    """Predicate: successfully fetched HTML page."""
    return lambda record: record.ok and record.is_html


def merge_logs(*logs: CrawlLog, on_conflict: str = "first") -> CrawlLog:
    """Union of several crawl logs.

    Args:
        on_conflict: what to do when the same URL appears in more than
            one log with *different* records — ``"first"`` keeps the
            earliest log's record, ``"error"`` raises.  Identical
            records merge silently either way.
    """
    if on_conflict not in ("first", "error"):
        raise CrawlLogError(f"on_conflict must be 'first' or 'error', got {on_conflict!r}")
    merged = CrawlLog()
    for log in logs:
        for record in log:
            existing = merged.get(record.url)
            if existing is None:
                merged.add(record)
            elif existing != record and on_conflict == "error":
                raise CrawlLogError(f"conflicting records for {record.url!r}")
    return merged


def sample_log(crawl_log: CrawlLog, fraction: float, seed: int = 0) -> CrawlLog:
    """A deterministic uniform sample of the log's records.

    Useful for pilot runs; note that sampling breaks link closure (the
    sample's outlinks mostly dangle), which is fine for classifier and
    statistics work but not for crawl replays.
    """
    if not 0.0 < fraction <= 1.0:
        raise CrawlLogError(f"fraction must be in (0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    keep = rng.random(len(crawl_log)) < fraction
    return CrawlLog(record for record, kept in zip(crawl_log, keep) if kept)


@dataclass(frozen=True, slots=True)
class LogDiff:
    """Difference between two crawl-log snapshots."""

    only_in_first: tuple[str, ...]
    only_in_second: tuple[str, ...]
    changed: tuple[str, ...]
    unchanged_count: int

    @property
    def identical(self) -> bool:
        return not (self.only_in_first or self.only_in_second or self.changed)


def diff_logs(first: CrawlLog, second: CrawlLog) -> LogDiff:
    """Compare two snapshots URL by URL."""
    only_first: list[str] = []
    changed: list[str] = []
    unchanged = 0
    for record in first:
        other = second.get(record.url)
        if other is None:
            only_first.append(record.url)
        elif other != record:
            changed.append(record.url)
        else:
            unchanged += 1
    only_second = [record.url for record in second if record.url not in first]
    return LogDiff(
        only_in_first=tuple(only_first),
        only_in_second=tuple(only_second),
        changed=tuple(changed),
        unchanged_count=unchanged,
    )


def host_partition(crawl_log: CrawlLog, partitions: int) -> list[CrawlLog]:
    """Split a log into ``partitions`` host-disjoint sub-logs.

    Pages of one host always land in the same partition (hash of the
    host) — the standard URL-space partitioning of parallel crawlers,
    used by :mod:`repro.core.parallel`.
    """
    if partitions < 1:
        raise CrawlLogError("partitions must be >= 1")
    buckets: list[list[PageRecord]] = [[] for _ in range(partitions)]
    for record in crawl_log:
        index = host_bucket(record.url, partitions)
        buckets[index].append(record)
    return [CrawlLog(bucket) for bucket in buckets]


def host_bucket(url: str, partitions: int) -> int:
    """Stable host → partition mapping (FNV-1a over the host string).

    Process-independent by construction (unlike Python's ``hash``, which
    is salted per interpreter), so partition ownership agrees between a
    driver and its worker processes — :mod:`repro.core.parallel` and the
    :mod:`repro.exec` task specs both rely on this.
    """
    host = url_host(url)
    digest = 2166136261
    for char in host.encode("ascii", errors="replace"):
        digest = ((digest ^ char) * 16777619) & 0xFFFFFFFF
    return digest % partitions


#: Deprecated private alias; use :func:`host_bucket`.
_host_bucket = host_bucket

"""Dataset characteristics (paper Table 3).

Table 3 reports, per dataset, the number of relevant / irrelevant / total
HTML pages **with OK status (200)**.  "Relevant" is judged the same way
the crawl will judge pages — from the declared charset — which is also
how the paper obtains the explicit-recall denominator: "the number of
relevant documents can be determined beforehand by analyzing the input
crawl logs" (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.charset.languages import Language
from repro.webspace.base import PageSource


@dataclass(frozen=True, slots=True)
class DatasetStats:
    """Aggregate characteristics of one crawl-log dataset."""

    target_language: Language
    relevant_html_pages: int
    irrelevant_html_pages: int
    total_urls: int
    non_ok_pages: int

    @property
    def total_html_pages(self) -> int:
        """OK HTML pages — the 'Total HTML pages' row of Table 3."""
        return self.relevant_html_pages + self.irrelevant_html_pages

    @property
    def relevance_ratio(self) -> float:
        """Language specificity of the dataset (≈0.35 Thai, ≈0.71 Japanese)."""
        if self.total_html_pages == 0:
            return 0.0
        return self.relevant_html_pages / self.total_html_pages


def compute_stats(
    crawl_log: PageSource,
    target_language: Language,
    use_true_language: bool = False,
) -> DatasetStats:
    """Compute Table 3 statistics for a crawl log.

    Args:
        crawl_log: the dataset.
        target_language: language the crawl is specific to.
        use_true_language: judge relevance from the generator's ground
            truth instead of the declared charset.  Real crawl logs only
            support the default (charset-based) mode.
    """
    relevant = 0
    irrelevant = 0
    non_ok = 0
    for record in crawl_log:
        if not record.ok:
            non_ok += 1
            continue
        if not record.is_html:
            continue
        language = record.true_language if use_true_language else record.declared_language
        if language is target_language:
            relevant += 1
        else:
            irrelevant += 1
    return DatasetStats(
        target_language=target_language,
        relevant_html_pages=relevant,
        irrelevant_html_pages=irrelevant,
        total_urls=len(crawl_log),
        non_ok_pages=non_ok,
    )


def relevant_url_set(
    crawl_log: PageSource,
    target_language: Language,
    use_true_language: bool = False,
) -> frozenset[str]:
    """URLs of the relevant OK HTML pages — the coverage denominator."""
    judged = []
    for record in crawl_log:
        if not record.ok or not record.is_html:
            continue
        language = record.true_language if use_true_language else record.declared_language
        if language is target_language:
            judged.append(record.url)
    return frozenset(judged)

"""Columnar, memory-mapped page store: the out-of-core storage backend.

A :class:`PageStore` holds the same information as an in-memory
:class:`~repro.webspace.crawllog.CrawlLog` — URL, status, content type,
charset, true language, outlinks, size per page — but as fixed-width
numpy columns and flat arenas in one on-disk file.  Opening a store
loads only the fixed-width index columns (~50 bytes/page); the
variable-length arenas are read per request with ``os.pread``, so a
million-page web costs tens of megabytes resident, not gigabytes of
Python objects.  Records are materialised lazily and
transiently: ``store.get(url)`` builds a
:class:`~repro.webspace.page.PageRecord` on demand, byte-identical to
the one the in-memory backend would hold.

On-disk layout (single file)::

    magic "LSWCPGS1" | u64 header_len | header JSON | pad to 64
    ----------------------------------------------------------- data start
    status       int16[N]     HTTP status per page
    ctype        int16[N]     content-type table index
    charset      int16[N]     charset table index, -1 = none declared
    lang         int8[N]      true-language table index
    size         int64[N]     body size in bytes
    link_offsets int64[N+1]   CSR row offsets into link_arena
    link_arena   int64[E]     outlink url-ids, deduped, document order
    url_offsets  int64[M+1]   row offsets into url_arena
    url_arena    uint8[...]   UTF-8 URL bytes, concatenated
    url_hash     uint64[M]    sorted 64-bit URL hashes (lookup index)
    url_hash_order int64[M]   url-id of each sorted hash

Every section is 64-byte aligned.  The header JSON carries the string
tables (content types, charsets, language labels), the section table
(offsets relative to data start) and a free-form ``meta`` object the
dataset layer uses for profile/seed/capture parameters.

URL ids: the first ``N`` ids are the pages themselves, in insertion
order (so a page's url-id equals its page-id); ids ``N..M-1`` are
*dangling* link targets — URLs that appear as outlinks but have no
record, which captured datasets are full of.  The flat outlink arena
stores url-ids, which is what lets :class:`StoreLinkDB` and the
frontier's spill file reference pages by id instead of by string.

URL → id lookup is a binary search over the sorted hash column plus a
byte compare in the arena — O(log M) with no resident dict, which is
the difference between "open a store" costing kilobytes and costing a
gigabyte of string hash table at 10⁶ URLs.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from collections import deque
from collections.abc import Iterable, Iterator, Set as AbstractSet
from pathlib import Path
from typing import Any

import numpy as np

from repro.charset.languages import Language, language_of_charset
from repro.errors import CrawlLogError, UnknownPageError
from repro.webspace.page import HTML_CONTENT_TYPE, STATUS_OK, PageRecord

_MAGIC = b"LSWCPGS1"
_FORMAT_NAME = "repro-lswc-pagestore"
_FORMAT_VERSION = 1
_ALIGN = 64

#: Fixed section order; (name, dtype).  Counts come from the header.
_SECTIONS = (
    ("status", "<i2"),
    ("ctype", "<i2"),
    ("charset", "<i2"),
    ("lang", "<i1"),
    ("size", "<i8"),
    ("link_offsets", "<i8"),
    ("link_arena", "<i8"),
    ("url_offsets", "<i8"),
    ("url_arena", "|u1"),
    ("url_hash", "<u8"),
    ("url_hash_order", "<i8"),
)

#: Optional trailing section: per-link textual-cue bytes, aligned 1:1
#: with link_arena (encoding in :mod:`repro.graphgen.linkcontext`).
#: Present only in stores written from cue-enabled profiles; readers key
#: off the self-describing header, so the format version is unchanged.
_LINK_CUES_SECTION = ("link_cues", "|u1")

#: Decoded-URL cache bound: popular link targets (hubs) decode once,
#: cold pages cycle through — the cache must never grow with web size.
_URL_CACHE_MAX = 1 << 16


def hash_url(url: str) -> int:
    """Deterministic 64-bit hash of a URL (process-independent)."""
    digest = hashlib.blake2b(url.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def _align_up(value: int, align: int = _ALIGN) -> int:
    return (value + align - 1) // align * align


def write_store(
    path: str | Path,
    *,
    status: np.ndarray,
    ctype: np.ndarray,
    charset: np.ndarray,
    lang: np.ndarray,
    size: np.ndarray,
    link_offsets: np.ndarray,
    link_arena: np.ndarray,
    url_offsets: np.ndarray,
    url_arena: np.ndarray | bytes | bytearray,
    content_types: list[str],
    charsets: list[str],
    languages: list[str],
    meta: dict | None = None,
    link_cues: np.ndarray | None = None,
) -> None:
    """Write one page-store file from prepared columns.

    The low-level writer both :class:`StoreBuilder` (record streams) and
    :func:`repro.graphgen.stream.write_universe_store` (generator
    columns, no record objects) sit on.  ``url_offsets`` spans all M
    URLs (pages first, then dangling targets); the hash index is
    computed here so callers never worry about it.
    """
    path = Path(path)
    n_pages = len(status)
    n_urls = len(url_offsets) - 1
    arena = np.frombuffer(bytes(url_arena), dtype=np.uint8) if not isinstance(
        url_arena, np.ndarray
    ) else url_arena.astype(np.uint8, copy=False)
    arena_bytes = arena.tobytes()

    hashes = np.empty(n_urls, dtype=np.uint64)
    offsets = url_offsets
    for uid in range(n_urls):
        chunk = arena_bytes[int(offsets[uid]) : int(offsets[uid + 1])]
        digest = hashlib.blake2b(chunk, digest_size=8).digest()
        hashes[uid] = int.from_bytes(digest, "little")
    order = np.argsort(hashes, kind="stable").astype(np.int64)
    sorted_hashes = hashes[order]

    arrays: dict[str, np.ndarray] = {
        "status": np.asarray(status, dtype=np.int16),
        "ctype": np.asarray(ctype, dtype=np.int16),
        "charset": np.asarray(charset, dtype=np.int16),
        "lang": np.asarray(lang, dtype=np.int8),
        "size": np.asarray(size, dtype=np.int64),
        "link_offsets": np.asarray(link_offsets, dtype=np.int64),
        "link_arena": np.asarray(link_arena, dtype=np.int64),
        "url_offsets": np.asarray(url_offsets, dtype=np.int64),
        "url_arena": arena,
        "url_hash": sorted_hashes,
        "url_hash_order": order,
    }
    section_specs = list(_SECTIONS)
    if link_cues is not None:
        arrays["link_cues"] = np.asarray(link_cues, dtype=np.uint8)
        section_specs.append(_LINK_CUES_SECTION)

    sections: dict[str, dict[str, Any]] = {}
    relative = 0
    for name, dtype in section_specs:
        array = arrays[name]
        sections[name] = {"dtype": dtype, "count": int(array.shape[0]), "offset": relative}
        relative = _align_up(relative + array.nbytes)

    header = {
        "format": _FORMAT_NAME,
        "version": _FORMAT_VERSION,
        "pages": int(n_pages),
        "urls": int(n_urls),
        "links": int(arrays["link_arena"].shape[0]),
        "content_types": content_types,
        "charsets": charsets,
        "languages": languages,
        "sections": sections,
        "meta": meta or {},
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    data_start = _align_up(len(_MAGIC) + 8 + len(header_bytes))

    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<Q", len(header_bytes)))
        handle.write(header_bytes)
        handle.write(b"\x00" * (data_start - len(_MAGIC) - 8 - len(header_bytes)))
        position = 0
        for name, _dtype in section_specs:
            section_offset = sections[name]["offset"]
            if section_offset > position:
                handle.write(b"\x00" * (section_offset - position))
                position = section_offset
            payload = arrays[name].tobytes()
            handle.write(payload)
            position += len(payload)


class PageStore:
    """On-disk columnar page store (a :class:`PageSource`).

    Opened read-only.  The fixed-width index columns (status, tables,
    sizes, CSR offsets, the URL hash index) are loaded into plain numpy
    arrays — ~50 bytes per page, the part you hold — while the two
    variable-length arenas (URL bytes, outlink rows), which dominate the
    file, stay on disk and are served per request with ``os.pread``.
    Positioned reads go through the kernel page cache but are never
    mapped into the process, so resident memory stays flat no matter
    how much of the web a crawl touches.  (``mmap`` is the obvious
    alternative and was the first implementation; current kernels fault
    large folios around every touched page, which balloons a random-
    access crawl's RSS to the whole file within a few thousand fetches,
    ``MADV_RANDOM`` notwithstanding.)

    Implements the exact read API of
    :class:`~repro.webspace.crawllog.CrawlLog` (len / contains / iter /
    get / getitem / urls), which is what lets
    :class:`~repro.webspace.virtualweb.VirtualWebSpace`, the stats and
    coverage helpers, and checkpoint record re-attachment run unchanged
    over either backend.
    """

    def __init__(self, path: str | Path) -> None:
        path = Path(path)
        self.path = path
        try:
            handle = open(path, "rb")
        except OSError as exc:
            raise CrawlLogError(f"{path}: cannot open page store: {exc}") from exc
        with handle:
            magic = handle.read(len(_MAGIC))
            if magic != _MAGIC:
                raise CrawlLogError(f"{path}: not a page-store file (magic={magic!r})")
            (header_len,) = struct.unpack("<Q", handle.read(8))
            try:
                header = json.loads(handle.read(header_len))
            except json.JSONDecodeError as exc:
                raise CrawlLogError(f"{path}: malformed store header: {exc}") from exc
        if header.get("format") != _FORMAT_NAME:
            raise CrawlLogError(f"{path}: unexpected format {header.get('format')!r}")
        if header.get("version") != _FORMAT_VERSION:
            raise CrawlLogError(f"{path}: unsupported version {header.get('version')!r}")
        self.header = header
        data_start = _align_up(len(_MAGIC) + 8 + header_len)
        self._file = open(path, "rb")
        self._fd = self._file.fileno()

        def load(name: str) -> np.ndarray:
            spec = header["sections"][name]
            dtype = np.dtype(spec["dtype"])
            count = int(spec["count"])
            if count == 0:
                return np.empty(0, dtype=dtype)
            return np.fromfile(
                path, dtype=dtype, count=count, offset=data_start + int(spec["offset"])
            )

        def arena(name: str) -> tuple[int, int]:
            spec = header["sections"][name]
            return data_start + int(spec["offset"]), int(spec["count"])

        self._status = load("status")
        self._ctype = load("ctype")
        self._charset = load("charset")
        self._lang = load("lang")
        self._size = load("size")
        self._link_offsets = load("link_offsets")
        self._url_offsets = load("url_offsets")
        self._url_hash = load("url_hash")
        self._url_hash_order = load("url_hash_order")
        self._link_arena_start, self._link_arena_count = arena("link_arena")
        self._url_arena_start, self._url_arena_count = arena("url_arena")
        # Optional cue section: absent in stores written before the cue
        # knobs existed (or with them at 0) — key off the header.
        if "link_cues" in header["sections"]:
            self._link_cues_start, self._link_cues_count = arena("link_cues")
        else:
            self._link_cues_start, self._link_cues_count = -1, 0

        self._content_types: list[str] = list(header["content_types"])
        self._charsets: list[str] = list(header["charsets"])
        self._languages: list[Language] = [Language(value) for value in header["languages"]]
        self._url_cache: dict[int, str] = {}
        self._closed = False

    # -- classmethod conveniences -----------------------------------------

    @classmethod
    def open(cls, path: str | Path) -> "PageStore":
        return cls(path)

    def close(self) -> None:
        """Drop the index columns and close the file (store unusable after)."""
        for name in (
            "_status", "_ctype", "_charset", "_lang", "_size",
            "_link_offsets", "_url_offsets", "_url_hash", "_url_hash_order",
        ):
            setattr(self, name, np.empty(0, dtype=np.int8))
        self._url_cache.clear()
        if not self._closed:
            self._file.close()
        self._closed = True

    def __enter__(self) -> "PageStore":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- store geometry -----------------------------------------------------

    @property
    def page_count(self) -> int:
        return int(self.header["pages"])

    @property
    def url_count(self) -> int:
        return int(self.header["urls"])

    @property
    def link_count(self) -> int:
        return int(self.header["links"])

    @property
    def meta(self) -> dict:
        return self.header.get("meta", {})

    @property
    def seed_urls(self) -> tuple[str, ...]:
        return tuple(self.meta.get("seed_urls", ()))

    def section_sizes(self) -> dict[str, int]:
        """Bytes per on-disk section (for ``dataset inspect``)."""
        sizes: dict[str, int] = {}
        for name, spec in self.header["sections"].items():
            sizes[name] = int(spec["count"]) * np.dtype(spec["dtype"]).itemsize
        return sizes

    @property
    def nbytes(self) -> int:
        return sum(self.section_sizes().values())

    # -- id <-> url ----------------------------------------------------------

    def url_of(self, uid: int) -> str:
        """Decode url-id ``uid`` (bounded cache: hubs decode once)."""
        cached = self._url_cache.get(uid)
        if cached is not None:
            return cached
        url = self._decode_url(uid)
        if len(self._url_cache) >= _URL_CACHE_MAX:
            self._url_cache.pop(next(iter(self._url_cache)))
        self._url_cache[uid] = url
        return url

    def _check_open(self) -> None:
        if self._closed:
            raise CrawlLogError(f"{self.path}: page store is closed")

    def _decode_url(self, uid: int) -> str:
        self._check_open()
        if not 0 <= uid < self.url_count:
            raise UnknownPageError(f"url id {uid} out of range")
        low = int(self._url_offsets[uid])
        high = int(self._url_offsets[uid + 1])
        return os.pread(self._fd, high - low, self._url_arena_start + low).decode("utf-8")

    def id_of(self, url: str) -> int | None:
        """The url-id of ``url`` (page or dangling target), or None."""
        self._check_open()
        if self.url_count == 0:
            return None
        encoded = url.encode("utf-8")
        digest = hashlib.blake2b(encoded, digest_size=8).digest()
        target = np.uint64(int.from_bytes(digest, "little"))
        index = int(np.searchsorted(self._url_hash, target, side="left"))
        offsets = self._url_offsets
        while index < self.url_count and self._url_hash[index] == target:
            uid = int(self._url_hash_order[index])
            low, high = int(offsets[uid]), int(offsets[uid + 1])
            if high - low == len(encoded) and (
                os.pread(self._fd, high - low, self._url_arena_start + low) == encoded
            ):
                return uid
            index += 1
        return None

    def page_id_of(self, url: str) -> int | None:
        """The page-id of ``url``, or None for dangling/unknown URLs."""
        uid = self.id_of(url)
        if uid is None or uid >= self.page_count:
            return None
        return uid

    def outlink_ids(self, page_id: int) -> np.ndarray:
        """The raw outlink url-id row of page ``page_id`` (one arena read)."""
        self._check_open()
        low = int(self._link_offsets[page_id])
        high = int(self._link_offsets[page_id + 1])
        if high == low:
            return np.empty(0, dtype=np.int64)
        row = os.pread(self._fd, 8 * (high - low), self._link_arena_start + 8 * low)
        return np.frombuffer(row, dtype="<i8")

    def link_cue_row(self, page_id: int) -> tuple[int, ...] | None:
        """The cue bytes of page ``page_id``'s outlinks; None if the
        store carries no cue section."""
        self._check_open()
        if self._link_cues_start < 0:
            return None
        low = int(self._link_offsets[page_id])
        high = int(self._link_offsets[page_id + 1])
        if high == low:
            return ()
        return tuple(os.pread(self._fd, high - low, self._link_cues_start + low))

    # -- record materialisation ---------------------------------------------

    def record_at(self, page_id: int) -> PageRecord:
        """Materialise the record of page ``page_id`` (lazy, transient)."""
        self._check_open()
        if not 0 <= page_id < self.page_count:
            raise UnknownPageError(f"page id {page_id} out of range")
        charset_id = int(self._charset[page_id])
        status = int(self._status[page_id])
        content_type = self._content_types[int(self._ctype[page_id])]
        # Mirror the generator: only OK HTML pages carry a cue row (other
        # pages have no outlinks and record link_cues=None).
        cues: tuple[int, ...] | None = None
        if status == STATUS_OK and content_type == HTML_CONTENT_TYPE:
            cues = self.link_cue_row(page_id)
        return PageRecord(
            url=self.url_of(page_id),
            status=status,
            content_type=content_type,
            charset=None if charset_id < 0 else self._charsets[charset_id],
            true_language=self._languages[int(self._lang[page_id])],
            outlinks=tuple(self.url_of(int(uid)) for uid in self.outlink_ids(page_id)),
            size=int(self._size[page_id]),
            link_cues=cues,
        )

    # -- PageSource protocol -------------------------------------------------

    def __len__(self) -> int:
        return self.page_count

    def __contains__(self, url: str) -> bool:
        return self.page_id_of(url) is not None

    def __iter__(self) -> Iterator[PageRecord]:
        for page_id in range(self.page_count):
            yield self.record_at(page_id)

    def get(self, url: str) -> PageRecord | None:
        page_id = self.page_id_of(url)
        if page_id is None:
            return None
        return self.record_at(page_id)

    def __getitem__(self, url: str) -> PageRecord:
        page_id = self.page_id_of(url)
        if page_id is None:
            raise UnknownPageError(url)
        return self.record_at(page_id)

    def urls(self) -> Iterator[str]:
        for page_id in range(self.page_count):
            yield self._decode_url(page_id)

    # -- out-of-core hygiene --------------------------------------------------

    def release_page_cache(self) -> None:
        """Drop the store's transient caches (RSS hygiene between batches).

        Arena reads go through ``os.pread`` and never enter the process,
        so the only per-crawl growth on the store side is the bounded
        decoded-URL cache — cleared here.  (Kernel page cache is shared,
        reclaimable memory; it is deliberately left alone.)  Purely an
        RSS control: dropped entries re-read from disk on next access,
        results are unaffected.
        """
        self._check_open()
        self._url_cache.clear()

    def relevant_url_view(self, target_language: Language) -> "StoreRelevantSet":
        """Lazy coverage denominator (see :class:`StoreRelevantSet`)."""
        return StoreRelevantSet(self, target_language)


class StoreRelevantSet(AbstractSet):
    """The explicit-recall denominator, computed from columns, held as a bitmask.

    Byte-for-byte equivalent (as a set) to
    :func:`repro.webspace.stats.relevant_url_set` over the same pages:
    a page is relevant when it is an OK HTML page whose *declared*
    charset implies the target language.  Metrics only ever ask ``url in
    relevant`` and ``len(relevant)``, so holding a bool per page instead
    of a frozenset of URL strings removes the full-store record scan —
    the single biggest resident cost of opening a million-page store —
    without touching a digest.
    """

    def __init__(self, store: PageStore, target_language: Language) -> None:
        self._store = store
        # Charset-table ids whose declared language is the target; the
        # sentinel -1 (no declared charset) maps through None.
        ok_ids = [
            cid
            for cid, charset in enumerate(store._charsets)
            if language_of_charset(charset) is target_language
        ]
        html_ids = [
            cid
            for cid, ctype in enumerate(store._content_types)
            if ctype == HTML_CONTENT_TYPE
        ]
        charset = store._charset[:]
        mask = np.isin(charset, np.array(ok_ids, dtype=charset.dtype))
        if language_of_charset(None) is target_language:
            mask |= charset == -1
        mask &= store._status[:] == STATUS_OK
        mask &= np.isin(store._ctype[:], np.array(html_ids, dtype=store._ctype.dtype))
        self._mask = mask
        self._count = int(mask.sum())

    def __contains__(self, url: object) -> bool:
        if not isinstance(url, str):
            return False
        page_id = self._store.page_id_of(url)
        return page_id is not None and bool(self._mask[page_id])

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[str]:
        for page_id in np.flatnonzero(self._mask):
            yield self._store.url_of(int(page_id))


class StoreBuilder:
    """Stream page records into a columnar store file.

    Generic (record-at-a-time) builder used for captured datasets and
    tests; the graph generator bypasses it with a direct column writer
    (:func:`repro.graphgen.stream.write_universe_store`) so a universe
    build never materialises record objects at all.

    URL ids are assigned pages-first: records buffer until
    :meth:`finish`, which numbers page URLs in insertion order, then
    dangling outlink targets in first-occurrence order.
    """

    def __init__(self) -> None:
        self._records: list[PageRecord] = []
        self._seen: set[str] = set()

    def add(self, record: PageRecord) -> None:
        if record.url in self._seen:
            raise CrawlLogError(f"duplicate store record for {record.url!r}")
        self._seen.add(record.url)
        self._records.append(record)

    def add_all(self, records: Iterable[PageRecord]) -> None:
        for record in records:
            self.add(record)

    def __len__(self) -> int:
        return len(self._records)

    def finish(self, path: str | Path, meta: dict | None = None) -> None:
        """Write the buffered records to ``path``."""
        records = self._records
        n_pages = len(records)
        if n_pages == 0:
            raise CrawlLogError("cannot finish a page store with no pages")

        ids: dict[str, int] = {}
        urls: list[str] = []
        for record in records:
            ids[record.url] = len(urls)
            urls.append(record.url)
        for record in records:
            for target in record.outlinks:
                if target not in ids:
                    ids[target] = len(urls)
                    urls.append(target)

        content_types: list[str] = []
        ctype_ids: dict[str, int] = {}
        charsets: list[str] = []
        charset_ids: dict[str, int] = {}
        languages: list[str] = []
        language_ids: dict[str, int] = {}

        def table_id(table: list[str], index: dict[str, int], value: str) -> int:
            cached = index.get(value)
            if cached is None:
                cached = len(table)
                index[value] = cached
                table.append(value)
            return cached

        status = np.empty(n_pages, dtype=np.int16)
        ctype = np.empty(n_pages, dtype=np.int16)
        charset = np.empty(n_pages, dtype=np.int16)
        lang = np.empty(n_pages, dtype=np.int8)
        size = np.empty(n_pages, dtype=np.int64)
        link_offsets = np.zeros(n_pages + 1, dtype=np.int64)
        link_targets: list[int] = []
        link_cues: list[int] = []
        any_cues = any(record.link_cues is not None for record in records)
        for page_id, record in enumerate(records):
            status[page_id] = record.status
            ctype[page_id] = table_id(content_types, ctype_ids, record.content_type)
            charset[page_id] = (
                -1 if record.charset is None else table_id(charsets, charset_ids, record.charset)
            )
            lang[page_id] = table_id(languages, language_ids, record.true_language.value)
            size[page_id] = record.size
            for target in record.outlinks:
                link_targets.append(ids[target])
            if any_cues:
                # Keep the cue arena aligned with link_targets; records
                # without cues (mixed inputs) contribute zero bytes.
                cues = record.link_cues
                if cues is not None and len(cues) != len(record.outlinks):
                    raise CrawlLogError(
                        f"{record.url!r}: link_cues length {len(cues)} != "
                        f"outlink count {len(record.outlinks)}"
                    )
                link_cues.extend(cues if cues is not None else (0,) * len(record.outlinks))
            link_offsets[page_id + 1] = len(link_targets)

        url_offsets = np.zeros(len(urls) + 1, dtype=np.int64)
        chunks: list[bytes] = []
        position = 0
        for uid, url in enumerate(urls):
            encoded = url.encode("utf-8")
            chunks.append(encoded)
            position += len(encoded)
            url_offsets[uid + 1] = position
        arena = np.frombuffer(b"".join(chunks), dtype=np.uint8)

        write_store(
            path,
            status=status,
            ctype=ctype,
            charset=charset,
            lang=lang,
            size=size,
            link_offsets=link_offsets,
            link_arena=np.asarray(link_targets, dtype=np.int64),
            url_offsets=url_offsets,
            url_arena=arena,
            content_types=content_types,
            charsets=charsets,
            languages=languages,
            meta=meta,
            link_cues=np.asarray(link_cues, dtype=np.uint8) if any_cues else None,
        )


class StoreLinkDB:
    """Out-of-core adjacency views over a :class:`PageStore`.

    The same query surface as :class:`~repro.webspace.linkdb.LinkDB`
    (forward / backward / degrees / reachable_from / edges), but running
    on the store's integer arenas: the backward index is a reverse-CSR
    over url-ids built with one argsort, never a dict of strings, and
    BFS walks ids with a bitmap visited set.  Backward adjacency order
    matches LinkDB exactly — sources ascending by page insertion order.
    """

    def __init__(self, store: PageStore) -> None:
        self._store = store
        counts = np.diff(store._link_offsets) if store.page_count else np.empty(0, dtype=np.int64)
        html_id = -1
        if HTML_CONTENT_TYPE in store._content_types:
            html_id = store._content_types.index(HTML_CONTENT_TYPE)
        self._emitting = (
            (np.asarray(store._status) == STATUS_OK) & (np.asarray(store._ctype) == html_id)
            if store.page_count
            else np.empty(0, dtype=bool)
        )
        self._counts = np.where(self._emitting, counts, 0).astype(np.int64)
        self._reverse_offsets: np.ndarray | None = None
        self._reverse_sources: np.ndarray | None = None

    # -- forward -----------------------------------------------------------

    def _emitting_page(self, url: str) -> int | None:
        page_id = self._store.page_id_of(url)
        if page_id is None or not bool(self._emitting[page_id]):
            return None
        return page_id

    def forward(self, url: str) -> tuple[str, ...]:
        page_id = self._emitting_page(url)
        if page_id is None:
            return ()
        store = self._store
        return tuple(store.url_of(int(uid)) for uid in store.outlink_ids(page_id))

    def out_degree(self, url: str) -> int:
        page_id = self._emitting_page(url)
        if page_id is None:
            return 0
        return int(self._counts[page_id])

    # -- backward ----------------------------------------------------------

    def _build_reverse(self) -> tuple[np.ndarray, np.ndarray]:
        if self._reverse_offsets is None:
            store = self._store
            sources = np.repeat(
                np.arange(store.page_count, dtype=np.int64), self._counts
            )
            targets = np.concatenate(
                [store.outlink_ids(int(page)) for page in np.nonzero(self._counts)[0]]
            ) if self._counts.sum() else np.empty(0, dtype=np.int64)
            order = np.argsort(targets, kind="stable")
            self._reverse_sources = sources[order]
            tally = np.bincount(targets, minlength=store.url_count) if len(targets) else np.zeros(
                store.url_count, dtype=np.int64
            )
            self._reverse_offsets = np.concatenate(
                ([0], np.cumsum(tally))
            ).astype(np.int64)
        assert self._reverse_sources is not None
        return self._reverse_offsets, self._reverse_sources

    def backward(self, url: str) -> tuple[str, ...]:
        uid = self._store.id_of(url)
        if uid is None:
            return ()
        offsets, sources = self._build_reverse()
        store = self._store
        return tuple(
            store.url_of(int(source)) for source in sources[offsets[uid] : offsets[uid + 1]]
        )

    def in_degree(self, url: str) -> int:
        uid = self._store.id_of(url)
        if uid is None:
            return 0
        offsets, _sources = self._build_reverse()
        return int(offsets[uid + 1] - offsets[uid])

    # -- traversal ---------------------------------------------------------

    def reachable_from(self, seeds: Iterable[str]) -> set[str]:
        """All URLs discoverable from ``seeds`` (ids under the hood)."""
        store = self._store
        seen = np.zeros(store.url_count, dtype=bool)
        unknown: set[str] = set()
        queue: deque[int] = deque()
        for seed in seeds:
            uid = store.id_of(seed)
            if uid is None:
                unknown.add(seed)
            elif not seen[uid]:
                seen[uid] = True
                queue.append(uid)
        while queue:
            uid = queue.popleft()
            if uid >= store.page_count or not self._emitting[uid]:
                continue
            for target in store.outlink_ids(uid):
                target = int(target)
                if not seen[target]:
                    seen[target] = True
                    queue.append(target)
        result = {store.url_of(int(uid)) for uid in np.nonzero(seen)[0]}
        return result | unknown

    def edges(self) -> Iterator[tuple[str, str]]:
        """All (source, target) pairs in page insertion order."""
        store = self._store
        for page_id in range(store.page_count):
            if not self._emitting[page_id]:
                continue
            source = store.url_of(page_id)
            for target in store.outlink_ids(page_id):
                yield source, store.url_of(int(target))

    def edge_count(self) -> int:
        return int(self._counts.sum())

"""The virtual web space: what the simulated crawler "downloads" from.

"The virtual web space gives the properties of the requested web page,
such as page's character set and download time, as a response to each
request" (paper §1).  :class:`VirtualWebSpace` is that responder.

Unknown URLs — link targets the capture crawl never fetched — answer with
a synthetic 404, because a real crawler does not know in advance that a
URL is dead; it spends a request finding out.  This matters for metrics:
the paper's page counts include non-OK fetches.

When constructed with a ``body_synthesizer`` (see
:mod:`repro.graphgen.htmlsynth`), OK HTML responses also carry actual
HTML bytes so the classifier can run real META parsing and byte-level
charset detection instead of trusting the log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.webspace.base import PageSource
from repro.webspace.page import HTML_CONTENT_TYPE, PageRecord

#: Status reported for URLs absent from the crawl log.
STATUS_UNKNOWN_URL = 404


@dataclass(frozen=True, slots=True)
class FetchResponse:
    """What one simulated download returns.

    ``record`` is None for URLs with no crawl-log entry; ``body`` is None
    unless body synthesis is enabled and the page is an OK HTML page.
    """

    url: str
    status: int
    content_type: str
    charset: str | None
    outlinks: tuple[str, ...]
    size: int
    body: bytes | None = None
    record: PageRecord | None = None
    #: True when the fault layer truncated/garbled the body; the
    #: classifier degrades such pages to "irrelevant" instead of running
    #: (and failing) charset detection on garbage.
    truncated: bool = False
    #: Name of the injected fault ("transient"/"timeout"/"outage"/
    #: "truncate"), or None for an organic response.  Retryability is
    #: keyed on this, never on the status code, so trace-captured 5xx
    #: pages keep their paper semantics (fetched once, judged, counted).
    fault: str | None = None
    #: Location the adversary layer is redirecting this fetch to, or
    #: None.  Only the adversary mints these; trace-captured 3xx records
    #: keep redirect_to None (the capture crawl already resolved them),
    #: so the engine's follow-redirect policy is dormant on clean runs.
    redirect_to: str | None = None
    #: Name of the adversary scenario that shaped this response
    #: ("trap"/"redirect"/"soft404"/"alias"/"mislabel"), or None for an
    #: unmodified response.  Observability only — never consulted by
    #: engine policy, which must work from content like a real crawler.
    adversary: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == 200

    @property
    def is_html(self) -> bool:
        return self.content_type == HTML_CONTENT_TYPE


class BodySynthesizer(Protocol):
    """Renders the HTML bytes of a page record on demand."""

    def __call__(self, record: PageRecord) -> bytes: ...


class VirtualWebSpace:
    """Trace-driven responder over any :class:`~repro.webspace.base.PageSource`.

    The access layer of the generation/storage/access split: it does not
    care whether the page source is the in-memory
    :class:`~repro.webspace.crawllog.CrawlLog` or the memory-mapped
    :class:`~repro.webspace.store.PageStore` — records are looked up per
    fetch and bodies synthesized lazily, so the resident footprint is
    the source's, not the web's.
    """

    def __init__(
        self,
        crawl_log: PageSource,
        body_synthesizer: BodySynthesizer | None = None,
    ) -> None:
        self._log = crawl_log
        self._synthesize = body_synthesizer
        self.fetch_count = 0

    @property
    def crawl_log(self) -> PageSource:
        return self._log

    @property
    def synthesizes_bodies(self) -> bool:
        """Whether OK HTML responses carry rendered byte bodies.

        Wrapping layers (faults, adversary) consult this so the synthetic
        pages they mint match the realism level of the organic ones.
        """
        return self._synthesize is not None

    def __contains__(self, url: str) -> bool:
        return url in self._log

    def fetch(self, url: str) -> FetchResponse:
        """Simulate downloading ``url``.

        Never raises for unknown URLs — those come back as a 404 response
        with no links, mirroring what a live crawler would observe.
        """
        self.fetch_count += 1
        record = self._log.get(url)
        if record is None:
            return FetchResponse(
                url=url,
                status=STATUS_UNKNOWN_URL,
                content_type=HTML_CONTENT_TYPE,
                charset=None,
                outlinks=(),
                size=0,
            )
        body: bytes | None = None
        if self._synthesize is not None and record.ok and record.is_html:
            body = self._synthesize(record)
        return FetchResponse(
            url=record.url,
            status=record.status,
            content_type=record.content_type,
            charset=record.charset,
            outlinks=record.outlinks if record.ok and record.is_html else (),
            size=record.size,
            body=body,
            record=record,
        )


def make_cached_synthesizer(
    synthesizer: BodySynthesizer, max_entries: int = 4096
) -> BodySynthesizer:
    """Wrap a body synthesizer with a bounded FIFO cache.

    Re-rendering is deterministic, so caching is purely a speed
    optimisation for workloads that re-fetch (the simulator itself never
    fetches a URL twice, but examples and tests do).
    """
    cache: dict[str, bytes] = {}

    def cached(record: PageRecord) -> bytes:
        body = cache.get(record.url)
        if body is None:
            body = synthesizer(record)
            if len(cache) >= max_entries:
                cache.pop(next(iter(cache)))
            cache[record.url] = body
        return body

    return cached


# Convenience alias used by type annotations elsewhere.
Fetcher = Callable[[str], FetchResponse]
